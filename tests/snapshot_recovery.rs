//! Fault-injection suite for crash-safe warm restarts
//! (`ivmf_core::snapshot`): a pipeline session killed and restarted
//! mid-stream must resume from its snapshot with cache *hits* and
//! bitwise-identical outputs, and **every** corruption scenario —
//! truncation, bit rot, mangled checksum, version bump, stale matrix,
//! torn rename — must degrade to recomputation, never to a panic and
//! never to silently wrong results.
//!
//! One test drives the `IVMF_SNAPSHOT_DIR` auto save/load knob, so every
//! test in this binary serializes on a shared lock (the knob is
//! process-global).

use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

use ivmf_core::pipeline::{Pipeline, StageId};
use ivmf_core::snapshot::snapshot_path;
use ivmf_core::{IsvdAlgorithm, IsvdConfig, IsvdResult, RestoreReport};
use ivmf_data::fault::{FaultSchedule, FaultyWriter};
use ivmf_interval::{IntervalMatrix, RowShardedIntervalMatrix};
use ivmf_linalg::random::uniform_matrix;
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Serializes the whole binary: the auto-snapshot test owns the
/// process-global `IVMF_SNAPSHOT_DIR`, and the others must not construct
/// or drop pipelines while it is set.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Mirrors `ivmf_core::test_support::random_interval_matrix` (which is
/// `cfg(test)`-gated and invisible to integration tests); keep in sync.
fn random_interval_matrix(seed: u64, n: usize, m: usize, span: f64) -> IntervalMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lo = uniform_matrix(&mut rng, n, m, 0.5, 4.0);
    let spans = Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..span));
    let hi = lo.add(&spans).unwrap();
    IntervalMatrix::from_bounds(lo, hi).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ivmf_snaprec_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_results_bitwise(a: &[IsvdResult; 5], b: &[IsvdResult; 5], context: &str) {
    for ((ra, rb), alg) in a.iter().zip(b.iter()).zip(IsvdAlgorithm::all()) {
        assert_eq!(ra.factors.u, rb.factors.u, "{context}: {alg} U differs");
        assert_eq!(ra.factors.v, rb.factors.v, "{context}: {alg} V differs");
        assert_eq!(
            ra.factors.sigma, rb.factors.sigma,
            "{context}: {alg} core differs"
        );
    }
}

fn snapshot_bytes(p: &Pipeline<'_>) -> Vec<u8> {
    let mut buf = Vec::new();
    p.write_snapshot(&mut buf).unwrap();
    buf
}

/// The flagship scenario: a streaming session is killed between row
/// batches. The restarted process restores the snapshot, appends the
/// rows the dead process never saw, and must produce bitwise-identical
/// results to a session that never died — with the Gram re-armed as an
/// incremental refresh (a cache hit, not a cold re-fold).
#[test]
fn killed_mid_stream_session_resumes_warm_and_bitwise_identical() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let base = random_interval_matrix(800, 18, 9, 1.0);
    let batch1 = random_interval_matrix(801, 5, 9, 1.0);
    let batch2 = random_interval_matrix(802, 4, 9, 1.0);
    let config = IsvdConfig::new(4);
    let dir = temp_dir("kill_restart");

    // The uninterrupted reference: one process sees every batch.
    let mut reference = {
        let sharded = RowShardedIntervalMatrix::from_dense(&base, 6).unwrap();
        let mut p = Pipeline::from_shards(sharded, config).unwrap();
        p.run_all().unwrap();
        p.append_rows(batch1.clone()).unwrap();
        p.run_all().unwrap();
        p.append_rows(batch2.clone()).unwrap();
        p
    };
    let reference_results = reference.run_all().unwrap();

    // Process 1: runs, absorbs batch 1, checkpoints... and is "killed"
    // (dropped) before batch 2 arrives.
    let path = {
        let sharded = RowShardedIntervalMatrix::from_dense(&base, 6).unwrap();
        let mut p = Pipeline::from_shards(sharded, config).unwrap();
        p.run_all().unwrap();
        p.append_rows(batch1.clone()).unwrap();
        p.run_all().unwrap();
        let path = snapshot_path(&dir, p.content_id());
        p.snapshot_to(&path).unwrap();
        path
    };

    // Process 2: fresh address space, restores, resumes the stream.
    let mut extended = RowShardedIntervalMatrix::from_dense(&base, 6).unwrap();
    extended.append_rows(batch1).unwrap();
    let mut p = Pipeline::from_shards(extended, config).unwrap();
    let report = p.restore_from(&path).unwrap();
    assert!(report.checksum_ok, "clean snapshot must verify");
    assert!(report.gram_restored, "accumulator must survive the restart");
    assert_eq!(report.dropped, 0);
    assert!(report.restored >= 5, "warm stages must survive the restart");

    // Every restored stage is served as a hit before the next append...
    let warm = p.run_all().unwrap();
    for r in &warm {
        assert_eq!(r.timings.cache_misses, 0, "restored run must only hit");
    }
    // ...and the resumed stream stays incremental: the post-append Gram
    // is seeded by the restored accumulator, not re-folded.
    p.append_rows(batch2).unwrap();
    let resumed = p.run_all().unwrap();
    let gram_event = resumed[2]
        .stages
        .iter()
        .find(|e| e.stage == StageId::IntervalGram)
        .unwrap();
    assert!(
        gram_event.cache_hit,
        "append after restore must refresh the restored accumulator"
    );
    assert_results_bitwise(&resumed, &reference_results, "kill/restart");
}

/// A checkpoint torn by the process dying mid-write (simulating a
/// non-atomic writer): the intact prefix restores, the tail recomputes,
/// and results stay bitwise correct at every truncation point.
#[test]
fn truncated_snapshot_recovers_to_bitwise_correct_results() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(810, 14, 8, 1.0);
    let config = IsvdConfig::new(4);
    let mut warm = Pipeline::new(&m, config).unwrap();
    let reference = warm.run_all().unwrap();
    let bytes = snapshot_bytes(&warm);
    let dir = temp_dir("truncate");
    let path = dir.join("torn.snap");

    for fraction in [0.0, 0.1, 0.35, 0.6, 0.9, 0.999] {
        let cut = ((bytes.len() as f64) * fraction) as u64;
        // The writer claims success but drops every byte past `cut` —
        // exactly what a kill between write() and fsync can leave behind.
        let mut w = FaultyWriter::new(
            std::fs::File::create(&path).unwrap(),
            FaultSchedule::truncate_at(cut),
        );
        w.write_all(&bytes).unwrap();
        w.flush().unwrap();

        let mut p = Pipeline::new(&m, config).unwrap();
        let report = p.restore_from(&path).unwrap();
        assert!(
            !report.checksum_ok,
            "cut at {fraction} must fail the checksum"
        );
        let rerun = p.run_all().unwrap();
        assert_results_bitwise(&rerun, &reference, &format!("cut at {fraction}"));
    }
}

/// A single flipped bit anywhere in a stored payload invalidates exactly
/// that record: the rest restore as hits and the output stays bitwise
/// identical.
#[test]
fn single_bit_corruption_drops_one_record_and_stays_bitwise_correct() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(811, 13, 7, 1.0);
    let config = IsvdConfig::new(4);
    let mut warm = Pipeline::new(&m, config).unwrap();
    let reference = warm.run_all().unwrap();
    let bytes = snapshot_bytes(&warm);
    let dir = temp_dir("bitflip");
    let path = dir.join("flipped.snap");

    // Land the flip inside the first entry's payload bytes.
    let header_at = bytes
        .windows(7)
        .position(|w| w == b"\nentry ")
        .expect("snapshot has entries") as u64;
    let payload_at = header_at
        + 1
        + bytes[(header_at as usize + 1)..]
            .iter()
            .position(|&b| b == b'\n')
            .unwrap() as u64
        + 1;
    for bit in [0u8, 3, 7] {
        let mut w = FaultyWriter::new(
            std::fs::File::create(&path).unwrap(),
            FaultSchedule::flip_bit(payload_at + 5, bit),
        );
        w.write_all(&bytes).unwrap();
        w.flush().unwrap();

        let mut p = Pipeline::new(&m, config).unwrap();
        let report = p.restore_from(&path).unwrap();
        assert!(!report.checksum_ok, "bit {bit}: file hash must notice");
        assert_eq!(report.dropped, 1, "bit {bit}: exactly the hit record");
        assert!(report.restored > 0, "bit {bit}: the rest must salvage");
        let rerun = p.run_all().unwrap();
        assert_results_bitwise(&rerun, &reference, &format!("bit {bit}"));
    }
}

/// A mangled trailing checksum line switches the loader to per-record
/// salvage: everything with an intact payload hash still restores.
#[test]
fn corrupted_checksum_still_salvages_every_intact_record() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(812, 12, 7, 1.0);
    let config = IsvdConfig::new(3);
    let mut warm = Pipeline::new(&m, config).unwrap();
    let reference = warm.run_all().unwrap();
    let mut bytes = snapshot_bytes(&warm);
    let n = bytes.len();
    bytes[n - 2] = if bytes[n - 2] == b'f' { b'0' } else { b'f' };
    let dir = temp_dir("checksum");
    let path = dir.join("badsum.snap");
    std::fs::write(&path, &bytes).unwrap();

    let mut p = Pipeline::new(&m, config).unwrap();
    let report = p.restore_from(&path).unwrap();
    assert!(!report.checksum_ok);
    assert_eq!(report.dropped, 0, "payload hashes all verify");
    assert!(report.restored > 0 && report.gram_restored);
    let rerun = p.run_all().unwrap();
    for r in &rerun {
        assert_eq!(r.timings.cache_misses, 0, "salvaged entries must hit");
    }
    assert_results_bitwise(&rerun, &reference, "mangled checksum");
}

/// A snapshot from a future format version restores nothing — and a
/// snapshot of a *different matrix* (stale file under a recycled name)
/// restores nothing either. Both recompute cold, correctly.
#[test]
fn version_bump_and_stale_matrix_are_rejected_wholesale() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(813, 11, 7, 1.0);
    let other = random_interval_matrix(814, 11, 7, 1.0);
    let config = IsvdConfig::new(3);
    let mut warm = Pipeline::new(&m, config).unwrap();
    let reference = warm.run_all().unwrap();
    let bytes = snapshot_bytes(&warm);
    let dir = temp_dir("reject");

    // Future version: the first line reads "ivmf snapshot v3".
    let mut bumped = bytes.clone();
    let v_at = bumped.iter().position(|&b| b == b'\n').unwrap() - 1;
    bumped[v_at] = b'3';
    let path = dir.join("future.snap");
    std::fs::write(&path, &bumped).unwrap();
    let mut p = Pipeline::new(&m, config).unwrap();
    let report = p.restore_from(&path).unwrap();
    assert_eq!(report.restored, 0, "future formats must not be guessed at");
    assert!(!report.gram_restored);

    // Stale matrix: intact file, wrong data set.
    let path = dir.join("stale.snap");
    std::fs::write(&path, &bytes).unwrap();
    let mut q = Pipeline::new(&other, config).unwrap();
    let report = q.restore_from(&path).unwrap();
    assert!(report.checksum_ok, "the file itself is intact");
    assert_eq!(report.restored, 0, "stale entries must not leak in");
    assert!(!report.gram_restored);
    let r = q.run(IsvdAlgorithm::Isvd4).unwrap();
    assert_eq!(r.timings.cache_hits, 0);

    // And the unharmed original still restores fully after both rejections.
    let mut p = Pipeline::new(&m, config).unwrap();
    let report = p.read_snapshot(&mut &bytes[..]);
    assert!(report.checksum_ok && report.dropped == 0);
    let rerun = p.run_all().unwrap();
    assert_results_bitwise(&rerun, &reference, "clean restore after rejections");
}

/// A process killed between writing the temp file and the atomic rename
/// leaves a stray `.tmp` sibling next to the last *committed* snapshot.
/// The restart must load the committed file and never the stray.
#[test]
fn kill_between_write_and_rename_leaves_the_committed_snapshot_in_charge() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(815, 12, 7, 1.0);
    let config = IsvdConfig::new(3);
    let dir = temp_dir("torn_rename");

    // Session 1 commits a good checkpoint.
    let mut warm = Pipeline::new(&m, config).unwrap();
    let reference = warm.run_all().unwrap();
    let path = snapshot_path(&dir, warm.content_id());
    warm.snapshot_to(&path).unwrap();

    // A later checkpoint attempt dies mid-write: a half-written temp
    // sibling survives, the rename never happened.
    let committed = std::fs::read(&path).unwrap();
    let stray = dir.join(format!(
        ".{}.tmp.99999.0",
        path.file_name().unwrap().to_string_lossy()
    ));
    std::fs::write(&stray, &committed[..committed.len() / 2]).unwrap();

    // The restart sees exactly the committed bytes.
    let mut p = Pipeline::new(&m, config).unwrap();
    let report = p.restore_from(&path).unwrap();
    assert!(
        report.checksum_ok,
        "committed snapshot untouched by the tear"
    );
    assert_eq!(report.dropped, 0);
    let rerun = p.run_all().unwrap();
    for r in &rerun {
        assert_eq!(r.timings.cache_misses, 0);
    }
    assert_results_bitwise(&rerun, &reference, "restore beside a stray temp");
    assert!(stray.exists(), "the stray is inert, not silently adopted");
}

/// The `IVMF_SNAPSHOT_DIR` knob end-to-end: save-on-drop in one
/// "process", load-on-construct in the next, pure hits, identical bits.
#[test]
fn snapshot_dir_knob_gives_automatic_warm_restarts() {
    let _guard = lock();
    let dir = temp_dir("auto");
    std::env::set_var(ivmf_env::SNAPSHOT_DIR, &dir);
    let m = random_interval_matrix(816, 13, 8, 1.0);
    let config = IsvdConfig::new(4);

    // Session 1: plain run, no snapshot calls anywhere — the save
    // happens on drop.
    let reference = {
        let mut p = Pipeline::new(&m, config).unwrap();
        p.run_all().unwrap()
    };
    let expected = snapshot_path(&dir, {
        let p = Pipeline::new(&m, config).unwrap();
        p.content_id()
    });
    assert!(expected.exists(), "drop must have checkpointed the session");

    // Session 2: constructing the pipeline is all it takes.
    let mut p = Pipeline::new(&m, config).unwrap();
    let warm = p.run_all().unwrap();
    for r in &warm {
        assert_eq!(r.timings.cache_misses, 0, "auto-restore must serve hits");
    }
    assert_results_bitwise(&warm, &reference, "auto warm restart");

    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
}

/// Restoring from a directory that was never written to is a silent cold
/// start — including through the auto knob.
#[test]
fn missing_snapshot_is_a_cold_start_not_an_error() {
    let _guard = lock();
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(817, 10, 6, 1.0);
    let mut p = Pipeline::new(&m, IsvdConfig::new(3)).unwrap();
    let report = p
        .restore_from(temp_dir("empty").join("never_written.snap"))
        .unwrap();
    assert_eq!(report, RestoreReport::default());
    let r = p.run(IsvdAlgorithm::Isvd4).unwrap();
    assert_eq!(r.timings.cache_hits, 0);
}
