//! Cross-crate integration tests: synthetic data generation → ISVD
//! decomposition → reconstruction accuracy, checking the paper's headline
//! qualitative findings end to end.

use ivmf_core::accuracy::reconstruction_accuracy;
use ivmf_core::isvd::isvd;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::anonymize::{generate_anonymized, PrivacyProfile};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_interval::IntervalMatrix;
use ivmf_lp::lp_isvd_with_target;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hmean(m: &IntervalMatrix, alg: IsvdAlgorithm, target: DecompositionTarget, rank: usize) -> f64 {
    let config = IsvdConfig::new(rank)
        .with_algorithm(alg)
        .with_target(target);
    let out = isvd(m, &config).expect("decomposition");
    reconstruction_accuracy(m, &out.factors.reconstruct().expect("reconstruction"))
        .expect("accuracy")
        .harmonic_mean
}

/// Averages a metric over a few seeded replicates of the default synthetic
/// configuration (scaled down for test speed).
fn average_over_replicates(
    config: &SyntheticConfig,
    replicates: usize,
    mut f: impl FnMut(&IntervalMatrix) -> f64,
) -> f64 {
    let mut total = 0.0;
    for rep in 0..replicates {
        let mut rng = SmallRng::seed_from_u64(900 + rep as u64);
        let m = generate_uniform(config, &mut rng);
        total += f(&m);
    }
    total / replicates as f64
}

#[test]
fn isvd4_option_b_beats_isvd0_on_wide_interval_data() {
    // Table 2(b), 100% intensity row: the alignment-based methods beat the
    // naive average baseline when intervals are wide.
    let config = SyntheticConfig::paper_default().with_shape(30, 80);
    let rank = 20;
    let a0 = average_over_replicates(&config, 3, |m| {
        hmean(m, IsvdAlgorithm::Isvd0, DecompositionTarget::Scalar, rank)
    });
    let a4 = average_over_replicates(&config, 3, |m| {
        hmean(
            m,
            IsvdAlgorithm::Isvd4,
            DecompositionTarget::IntervalCore,
            rank,
        )
    });
    assert!(
        a4 > a0,
        "ISVD4-b ({a4:.3}) should beat ISVD0 ({a0:.3}) at 100% interval intensity"
    );
}

#[test]
fn option_b_is_at_least_as_good_as_option_c_for_isvd4() {
    // Figure 6a: the option-b targets give the best accuracies overall.
    let config = SyntheticConfig::paper_default().with_shape(30, 60);
    let rank = 15;
    let b = average_over_replicates(&config, 3, |m| {
        hmean(
            m,
            IsvdAlgorithm::Isvd4,
            DecompositionTarget::IntervalCore,
            rank,
        )
    });
    let c = average_over_replicates(&config, 3, |m| {
        hmean(m, IsvdAlgorithm::Isvd4, DecompositionTarget::Scalar, rank)
    });
    assert!(
        b >= c - 0.02,
        "option-b ({b:.3}) fell behind option-c ({c:.3})"
    );
}

#[test]
fn accuracy_improves_with_rank_for_every_algorithm() {
    // Table 2(e): higher target rank means better reconstruction.
    let config = SyntheticConfig::paper_default().with_shape(30, 60);
    let mut rng = SmallRng::seed_from_u64(42);
    let m = generate_uniform(&config, &mut rng);
    for alg in [
        IsvdAlgorithm::Isvd1,
        IsvdAlgorithm::Isvd3,
        IsvdAlgorithm::Isvd4,
    ] {
        let low = hmean(&m, alg, DecompositionTarget::IntervalCore, 5);
        let high = hmean(&m, alg, DecompositionTarget::IntervalCore, 25);
        assert!(
            high > low,
            "{alg:?}: rank 25 accuracy {high:.3} not above rank 5 accuracy {low:.3}"
        );
    }
}

#[test]
fn narrower_intervals_are_easier_to_reconstruct() {
    // Table 2(b): accuracy decreases as interval intensity grows.
    let rank = 20;
    let narrow = average_over_replicates(
        &SyntheticConfig::paper_default()
            .with_shape(30, 80)
            .with_interval_intensity(0.1),
        3,
        |m| {
            hmean(
                m,
                IsvdAlgorithm::Isvd4,
                DecompositionTarget::IntervalCore,
                rank,
            )
        },
    );
    let wide = average_over_replicates(
        &SyntheticConfig::paper_default()
            .with_shape(30, 80)
            .with_interval_intensity(1.0),
        3,
        |m| {
            hmean(
                m,
                IsvdAlgorithm::Isvd4,
                DecompositionTarget::IntervalCore,
                rank,
            )
        },
    );
    assert!(
        narrow > wide,
        "narrow {narrow:.3} should beat wide {wide:.3}"
    );
}

#[test]
fn anonymized_data_higher_privacy_is_harder() {
    // Figure 7: stronger anonymization (wider generalization intervals)
    // lowers reconstruction accuracy at a fixed rank.
    let rank = 10;
    let accuracy_for = |profile: PrivacyProfile| {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = generate_anonymized(30, 80, profile, &mut rng);
        hmean(
            &m,
            IsvdAlgorithm::Isvd4,
            DecompositionTarget::IntervalCore,
            rank,
        )
    };
    let low = accuracy_for(PrivacyProfile::Low);
    let high = accuracy_for(PrivacyProfile::High);
    assert!(
        low >= high - 0.02,
        "low-privacy accuracy ({low:.3}) should not be below high-privacy ({high:.3})"
    );
}

#[test]
fn lp_competitor_is_dominated_by_isvd_on_paper_style_data() {
    // Figures 6/7/9: the LP class is not competitive on interval data of
    // realistic width.
    let config = SyntheticConfig::paper_default().with_shape(30, 60);
    let rank = 15;
    let mut rng = SmallRng::seed_from_u64(3);
    let m = generate_uniform(&config, &mut rng);
    let lp =
        lp_isvd_with_target(&m, rank, DecompositionTarget::IntervalAll).expect("LP decomposition");
    let lp_acc = reconstruction_accuracy(&m, &lp.reconstruct().expect("reconstruction"))
        .expect("accuracy")
        .harmonic_mean;
    let isvd_acc = hmean(
        &m,
        IsvdAlgorithm::Isvd4,
        DecompositionTarget::IntervalAll,
        rank,
    );
    assert!(
        isvd_acc > lp_acc,
        "ISVD4-a ({isvd_acc:.3}) should dominate LP-a ({lp_acc:.3})"
    );
}

#[test]
fn all_algorithms_and_targets_run_on_sparse_interval_data() {
    // Matrix density sweep of Table 2(c): everything still runs (and stays
    // finite) when 90% of the entries are zero.
    let config = SyntheticConfig::paper_default()
        .with_shape(30, 50)
        .with_zero_fraction(0.9);
    let mut rng = SmallRng::seed_from_u64(11);
    let m = generate_uniform(&config, &mut rng);
    for alg in IsvdAlgorithm::all() {
        for target in DecompositionTarget::all() {
            let config = IsvdConfig::new(10).with_algorithm(alg).with_target(target);
            let out = isvd(&m, &config).expect("decomposition on sparse data");
            let rec = out.factors.reconstruct().expect("reconstruction");
            assert!(
                !rec.has_non_finite(),
                "{alg:?}/{target:?} produced non-finite values"
            );
        }
    }
}
