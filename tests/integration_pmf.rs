//! End-to-end collaborative-filtering tests (the Figure 10 code path):
//! rating generation → interval construction → PMF / I-PMF / AI-PMF →
//! held-out RMSE.

use ivmf_core::pmf::{aipmf, ipmf, pmf, PmfConfig};
use ivmf_data::ratings::{
    cf_interval_matrix, cf_scalar_matrix, movielens_like, user_genre_interval_matrix,
    MovieLensConfig, RatingDataset,
};
use ivmf_data::split::random_split;
use ivmf_eval::regression::rmse;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct CfSetup {
    train: RatingDataset,
    test: Vec<ivmf_data::ratings::Rating>,
}

fn setup(seed: u64) -> CfSetup {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Denser than MovieLens-100K so that a bias-free PMF can beat the
    // global-mean baseline on held-out data at this tiny scale (the real
    // data set has ~100 ratings per user; `small()` would leave only ~11).
    let config = MovieLensConfig {
        n_users: 80,
        n_items: 120,
        n_genres: 19,
        n_ratings: 4_000,
        noise: 0.3,
    };
    let dataset = movielens_like(&config, &mut rng);
    let split = random_split(dataset.len(), 0.8, &mut rng);
    let train = RatingDataset {
        n_users: dataset.n_users,
        n_items: dataset.n_items,
        n_genres: dataset.n_genres,
        ratings: split.train.iter().map(|&i| dataset.ratings[i]).collect(),
        item_genres: dataset.item_genres.clone(),
    };
    let test = split.test.iter().map(|&i| dataset.ratings[i]).collect();
    CfSetup { train, test }
}

#[test]
fn all_three_models_beat_the_global_mean_baseline() {
    let cf = setup(1);
    let targets: Vec<f64> = cf.test.iter().map(|r| r.value).collect();
    let global_mean = cf.train.ratings.iter().map(|r| r.value).sum::<f64>() / cf.train.len() as f64;
    let baseline = rmse(&vec![global_mean; targets.len()], &targets).unwrap();

    let (scalar, scalar_obs) = cf_scalar_matrix(&cf.train);
    let (interval, interval_obs) = cf_interval_matrix(&cf.train, 0.5);
    let config = PmfConfig::new(10).with_epochs(40).with_learning_rate(0.01);

    let models: Vec<(&str, Vec<f64>)> = vec![
        ("PMF", {
            let m = pmf(&scalar, &scalar_obs, &config).unwrap();
            cf.test.iter().map(|r| m.predict(r.user, r.item)).collect()
        }),
        ("I-PMF", {
            let m = ipmf(&interval, &interval_obs, &config).unwrap();
            cf.test.iter().map(|r| m.predict(r.user, r.item)).collect()
        }),
        ("AI-PMF", {
            let m = aipmf(&interval, &interval_obs, &config).unwrap();
            cf.test.iter().map(|r| m.predict(r.user, r.item)).collect()
        }),
    ];
    for (name, predictions) in models {
        let err = rmse(&predictions, &targets).unwrap();
        assert!(
            err < baseline,
            "{name} RMSE {err:.3} should beat the global-mean baseline {baseline:.3}"
        );
    }
}

#[test]
fn aipmf_is_competitive_with_ipmf_on_held_out_data() {
    // Figure 10's qualitative claim: the aligned variant is at least as good
    // as plain I-PMF (strictly better at higher ranks in the paper). Allow a
    // small tolerance for SGD noise at this reduced scale.
    let cf = setup(2);
    let targets: Vec<f64> = cf.test.iter().map(|r| r.value).collect();
    let (interval, interval_obs) = cf_interval_matrix(&cf.train, 0.5);
    let config = PmfConfig::new(20).with_epochs(50).with_learning_rate(0.01);

    let ipmf_model = ipmf(&interval, &interval_obs, &config).unwrap();
    let aipmf_model = aipmf(&interval, &interval_obs, &config).unwrap();
    let ipmf_rmse = rmse(
        &cf.test
            .iter()
            .map(|r| ipmf_model.predict(r.user, r.item))
            .collect::<Vec<_>>(),
        &targets,
    )
    .unwrap();
    let aipmf_rmse = rmse(
        &cf.test
            .iter()
            .map(|r| aipmf_model.predict(r.user, r.item))
            .collect::<Vec<_>>(),
        &targets,
    )
    .unwrap();
    assert!(
        aipmf_rmse <= ipmf_rmse + 0.05,
        "AI-PMF RMSE {aipmf_rmse:.3} fell behind I-PMF {ipmf_rmse:.3}"
    );
}

#[test]
fn training_loss_decreases_monotonically_enough() {
    let cf = setup(3);
    let (interval, interval_obs) = cf_interval_matrix(&cf.train, 0.5);
    let config = PmfConfig::new(10).with_epochs(30).with_learning_rate(0.01);
    let model = aipmf(&interval, &interval_obs, &config).unwrap();
    let first = model.loss_history.first().copied().unwrap();
    let last = model.loss_history.last().copied().unwrap();
    assert!(
        last < 0.8 * first,
        "loss did not decrease enough: {first:.1} -> {last:.1}"
    );
}

#[test]
fn user_genre_matrix_feeds_the_isvd_pipeline() {
    // The Figure 9 MovieLens path: user x genre interval ranges can be
    // decomposed and reconstructed with good accuracy at full rank.
    let mut rng = SmallRng::seed_from_u64(4);
    let dataset = movielens_like(&MovieLensConfig::small(), &mut rng);
    let m = user_genre_interval_matrix(&dataset);
    let config = ivmf_core::IsvdConfig::new(dataset.n_genres)
        .with_algorithm(ivmf_core::IsvdAlgorithm::Isvd3);
    let out = ivmf_core::isvd::isvd(&m, &config).expect("ISVD3 on user-genre data");
    let acc = ivmf_core::accuracy::reconstruction_accuracy(
        &m,
        &out.factors.reconstruct().expect("reconstruction"),
    )
    .expect("accuracy");
    assert!(
        acc.harmonic_mean > 0.6,
        "full-rank accuracy {:.3}",
        acc.harmonic_mean
    );
}
