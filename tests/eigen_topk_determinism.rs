//! Determinism acceptance suite for the certified top-k eigensolver:
//!
//! * `sym_eigen_topk_with` is bitwise identical across `IVMF_THREADS`
//!   ∈ {1, 4},
//! * the solver is invariant to `IVMF_SHARD_ROWS` when reached through
//!   the row-sharded and sparse CSR Gram routes (the streamed Grams are
//!   bitwise equal, and so are their top-k eigendecompositions),
//! * the full pipeline (all five algorithms × every decomposition
//!   target) produces equivalent factor bounds under
//!   `IVMF_TOPK_EIGEN=forced` and `=full`, within the solver's
//!   certified tolerance,
//! * the env-dispatching `sym_eigen_topk` entry point routes exactly to
//!   the explicit-options paths (`forced` ↔ `with_force(true)`, `full`
//!   ↔ dense truncation), bitwise.
//!
//! Tests that mutate process environment variables serialize on a
//! file-local mutex; everything else drives the solver through explicit
//! [`TopkOptions`] and is immune to the CI environment passes.

use std::sync::Mutex;

use ivmf_core::pipeline::run_all;
use ivmf_core::{run_all_sharded, DecompositionTarget, IsvdAlgorithm, IsvdConfig, IsvdResult};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_interval::{IntervalMatrix, RowShardedIntervalMatrix};
use ivmf_linalg::eigen_sym::SymEigen;
use ivmf_linalg::random::{symmetric_matrix, uniform_matrix};
use ivmf_linalg::{sym_eigen_topk, sym_eigen_topk_report, sym_eigen_topk_with, TopkOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Serializes every test in this file that writes process environment
/// variables (`IVMF_THREADS`, `IVMF_TOPK_EIGEN`). Concurrent tests only
/// ever *read* the environment through `TopkOptions`-driven calls.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn synthetic(seed: u64, rows: usize, cols: usize) -> IntervalMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    generate_uniform(
        &SyntheticConfig::paper_default().with_shape(rows, cols),
        &mut rng,
    )
}

fn forced() -> TopkOptions {
    TopkOptions::default().with_force(true)
}

fn assert_eig_bitwise(a: &SymEigen, b: &SymEigen, context: &str) {
    assert_eq!(
        a.eigenvalues, b.eigenvalues,
        "{context}: eigenvalues differ"
    );
    assert_eq!(
        a.eigenvectors, b.eigenvectors,
        "{context}: eigenvectors differ"
    );
}

/// Env save/set helper so a panicking assertion cannot leak state into
/// other suites: restores on drop.
struct EnvGuard {
    key: &'static str,
    prev: Option<String>,
}

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> Self {
        let prev = std::env::var(key).ok();
        std::env::set_var(key, value);
        EnvGuard { key, prev }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.prev.take() {
            Some(v) => std::env::set_var(self.key, v),
            None => std::env::remove_var(self.key),
        }
    }
}

#[test]
fn topk_is_bitwise_invariant_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    // A rank-deficient Wishart-style matrix large enough that the forced
    // path genuinely iterates (it is profitable at n = 200, k = 12).
    let mut rng = SmallRng::seed_from_u64(7001);
    let a = uniform_matrix(&mut rng, 60, 200, -1.0, 1.0).gram();

    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        let env = EnvGuard::set(ivmf_par::THREADS_ENV, threads);
        let (eig, report) = sym_eigen_topk_report(&a, 12, &forced()).unwrap();
        drop(env);
        assert!(
            !report.used_dense,
            "threads={threads}: forced path fell back to the dense solver"
        );
        runs.push(eig);
    }
    assert_eig_bitwise(&runs[0], &runs[1], "IVMF_THREADS 1 vs 4");
}

#[test]
fn topk_is_invariant_to_shard_layout_through_the_gram_route() {
    // Whatever IVMF_SHARD_ROWS says, the streamed interval Gram is
    // bitwise equal to the dense one — so the top-k eigensolver applied
    // to its bound matrices is bitwise equal too. No env mutation: the
    // layouts the CI shard pass would induce are enumerated directly.
    let m = synthetic(7010, 40, 30);
    let reference = m.interval_gram_streamed().unwrap();
    let eig_lo = sym_eigen_topk_with(reference.lo(), 6, &forced()).unwrap();
    let eig_hi = sym_eigen_topk_with(reference.hi(), 6, &forced()).unwrap();

    for shard_rows in [1usize, 7, 40] {
        let sharded = RowShardedIntervalMatrix::from_dense(&m, shard_rows).unwrap();
        let gram = sharded.interval_gram_streamed().unwrap();
        assert_eq!(gram, reference, "shard_rows={shard_rows}: Gram diverged");
        assert_eig_bitwise(
            &sym_eigen_topk_with(gram.lo(), 6, &forced()).unwrap(),
            &eig_lo,
            &format!("shard_rows={shard_rows} lo-bound"),
        );
        assert_eig_bitwise(
            &sym_eigen_topk_with(gram.hi(), 6, &forced()).unwrap(),
            &eig_hi,
            &format!("shard_rows={shard_rows} hi-bound"),
        );
    }
}

#[test]
fn forced_sharded_pipeline_matches_dense_pipeline_bitwise() {
    // End to end: with the top-k kernel forced on, the sharded route
    // still equals the dense route bit for bit — the kernel sees the
    // identical Gram either way.
    let _guard = ENV_LOCK.lock().unwrap();
    let env = EnvGuard::set(ivmf_env::TOPK_EIGEN, "forced");
    let m = synthetic(7020, 34, 12);
    let config = IsvdConfig::new(5);
    let dense = run_all(&m, &config).unwrap();
    for shard_rows in [1usize, 7, 34] {
        let sharded = RowShardedIntervalMatrix::from_dense(&m, shard_rows).unwrap();
        let results = run_all_sharded(&sharded, &config).unwrap();
        for ((r, d), alg) in results.iter().zip(&dense).zip(IsvdAlgorithm::all()) {
            let context = format!("shard_rows={shard_rows}: {alg}");
            assert_eq!(r.factors.u, d.factors.u, "{context} U differs");
            assert_eq!(r.factors.v, d.factors.v, "{context} V differs");
            assert_eq!(r.factors.sigma, d.factors.sigma, "{context} core differs");
        }
    }
    drop(env);
}

/// Largest elementwise gap between the bounds of two interval factor
/// sets, normalized by the larger magnitude in play.
fn max_relative_gap(a: &IsvdResult, b: &IsvdResult) -> f64 {
    let mut scale: f64 = 1.0;
    let mut gap: f64 = 0.0;
    let pairs = [
        (a.factors.u.lo(), b.factors.u.lo()),
        (a.factors.u.hi(), b.factors.u.hi()),
        (a.factors.v.lo(), b.factors.v.lo()),
        (a.factors.v.hi(), b.factors.v.hi()),
    ];
    for (x, y) in pairs {
        assert_eq!((x.rows(), x.cols()), (y.rows(), y.cols()));
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                gap = gap.max((x[(i, j)] - y[(i, j)]).abs());
                scale = scale.max(x[(i, j)].abs()).max(y[(i, j)].abs());
            }
        }
    }
    assert_eq!(a.factors.sigma.len(), b.factors.sigma.len());
    for (s, t) in a.factors.sigma.iter().zip(&b.factors.sigma) {
        gap = gap
            .max((s.lo() - t.lo()).abs())
            .max((s.hi() - t.hi()).abs());
        scale = scale.max(s.lo().abs()).max(t.hi().abs());
    }
    gap / scale
}

#[test]
fn forced_and_full_pipelines_agree_for_every_algorithm_and_target() {
    // All five algorithms × every decomposition target, once under
    // IVMF_TOPK_EIGEN=forced and once under =full. Both kernels certify
    // their answers against the same residual bound and canonicalize
    // eigenvector signs identically, so the assembled interval factors
    // must agree to far better than the certified tolerance.
    let _guard = ENV_LOCK.lock().unwrap();
    let m = synthetic(7030, 26, 10);
    for target in DecompositionTarget::all() {
        let config = IsvdConfig::new(4).with_target(target);
        let forced_run = {
            let _env = EnvGuard::set(ivmf_env::TOPK_EIGEN, "forced");
            run_all(&m, &config).unwrap()
        };
        let full_run = {
            let _env = EnvGuard::set(ivmf_env::TOPK_EIGEN, "full");
            run_all(&m, &config).unwrap()
        };
        for ((f, d), alg) in forced_run.iter().zip(&full_run).zip(IsvdAlgorithm::all()) {
            let gap = max_relative_gap(f, d);
            assert!(
                gap <= 1e-7,
                "target {target}, {alg}: forced-vs-full relative gap {gap:e}"
            );
        }
    }
}

#[test]
fn env_dispatch_routes_to_the_explicit_option_paths_bitwise() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut rng = SmallRng::seed_from_u64(7040);
    let a = symmetric_matrix(&mut rng, 40, -2.0, 2.0);
    let k = 6;

    // forced ↔ with_force(true).
    let via_env = {
        let _env = EnvGuard::set(ivmf_env::TOPK_EIGEN, "forced");
        sym_eigen_topk(&a, k).unwrap()
    };
    let via_opts = sym_eigen_topk_with(&a, k, &forced()).unwrap();
    assert_eig_bitwise(&via_env, &via_opts, "forced dispatch");

    // full ↔ the dense truncation an unprofitable auto call performs
    // (n = 40 is below the profitability floor, so default options take
    // the dense path too).
    let via_env = {
        let _env = EnvGuard::set(ivmf_env::TOPK_EIGEN, "full");
        sym_eigen_topk(&a, k).unwrap()
    };
    let via_opts = sym_eigen_topk_with(&a, k, &TopkOptions::default()).unwrap();
    assert_eig_bitwise(&via_env, &via_opts, "full dispatch");

    // An explicit auto matches default options as well.
    let via_env = {
        let _env = EnvGuard::set(ivmf_env::TOPK_EIGEN, "auto");
        sym_eigen_topk(&a, k).unwrap()
    };
    assert_eig_bitwise(&via_env, &via_opts, "auto dispatch");
}
