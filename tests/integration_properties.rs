//! Cross-crate property-based tests: invariants that must hold for *every*
//! ISVD algorithm, target and randomly generated interval matrix.

use ivmf_core::accuracy::reconstruction_accuracy;
use ivmf_core::isvd::isvd;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_config() -> impl Strategy<Value = (SyntheticConfig, usize, u64)> {
    // Shapes stay small so the whole property suite runs in seconds.
    (
        4usize..14,
        4usize..14,
        0.0f64..0.6,
        0.0f64..1.0,
        0.05f64..1.0,
        1u64..500,
    )
        .prop_map(|(rows, cols, zeros, density, intensity, seed)| {
            let config = SyntheticConfig::paper_default()
                .with_shape(rows, cols)
                .with_zero_fraction(zeros)
                .with_interval_density(density)
                .with_interval_intensity(intensity);
            let rank = rows.min(cols).clamp(1, 4);
            (config, rank, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm/target combination produces finite factors of the
    /// right shape, a proper interval core, and a finite reconstruction
    /// whose accuracy lies in [0, 1].
    #[test]
    fn decompositions_are_well_formed((config, rank, seed) in arb_config()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = generate_uniform(&config, &mut rng);
        for alg in IsvdAlgorithm::all() {
            for target in DecompositionTarget::all() {
                let isvd_config = IsvdConfig::new(rank).with_algorithm(alg).with_target(target);
                let out = isvd(&m, &isvd_config).expect("decomposition");
                let f = &out.factors;
                prop_assert_eq!(f.u.shape(), (m.rows(), rank));
                prop_assert_eq!(f.v.shape(), (m.cols(), rank));
                prop_assert_eq!(f.sigma.len(), rank);
                prop_assert!(!f.u.has_non_finite());
                prop_assert!(!f.v.has_non_finite());
                prop_assert!(f.u.is_proper());
                prop_assert!(f.v.is_proper());
                prop_assert!(f.sigma.iter().all(|s| s.lo() <= s.hi() && s.lo().is_finite()));
                // Scalar-factor guarantees per target.
                if target != DecompositionTarget::IntervalAll {
                    prop_assert!(f.u.is_scalar() && f.v.is_scalar());
                }
                if target == DecompositionTarget::Scalar || alg == IsvdAlgorithm::Isvd0 {
                    prop_assert!(f.sigma.iter().all(|s| s.is_scalar()));
                }
                let rec = f.reconstruct().expect("reconstruction");
                prop_assert!(!rec.has_non_finite());
                prop_assert!(rec.is_proper());
                let acc = reconstruction_accuracy(&m, &rec).expect("accuracy");
                prop_assert!((0.0..=1.0 + 1e-9).contains(&acc.harmonic_mean));
            }
        }
    }

    /// Full-rank decomposition of *scalar* (zero-width) data reconstructs
    /// the input almost exactly for every algorithm under option c.
    #[test]
    fn scalar_data_full_rank_is_exact(
        rows in 3usize..10,
        cols in 3usize..10,
        seed in 1u64..200,
    ) {
        let config = SyntheticConfig::paper_default()
            .with_shape(rows, cols)
            .with_interval_density(0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = generate_uniform(&config, &mut rng);
        let rank = rows.min(cols);
        for alg in IsvdAlgorithm::all() {
            let isvd_config = IsvdConfig::new(rank)
                .with_algorithm(alg)
                .with_target(DecompositionTarget::Scalar);
            let out = isvd(&m, &isvd_config).expect("decomposition");
            let acc = reconstruction_accuracy(&m, &out.factors.reconstruct().unwrap()).unwrap();
            prop_assert!(
                acc.harmonic_mean > 0.97,
                "{} full-rank scalar accuracy {}", alg.name(), acc.harmonic_mean
            );
        }
    }

    /// The option-b and option-c factor matrices always have unit-norm
    /// columns (up to degenerate zero columns).
    #[test]
    fn renormalized_targets_have_unit_columns((config, rank, seed) in arb_config()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = generate_uniform(&config, &mut rng);
        let isvd_config = IsvdConfig::new(rank)
            .with_algorithm(IsvdAlgorithm::Isvd4)
            .with_target(DecompositionTarget::IntervalCore);
        let out = isvd(&m, &isvd_config).expect("decomposition");
        let u = out.factors.u_scalar().expect("option b has scalar U");
        for j in 0..u.cols() {
            let norm = u.col_norm(j);
            prop_assert!(norm < 1e-9 || (norm - 1.0).abs() < 1e-6, "column {j} norm {norm}");
        }
    }
}
