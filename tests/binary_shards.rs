//! Acceptance suite for the binary shard containers and the pooled /
//! prefetched ingest pipeline:
//!
//! * **text ↔ binary equivalence** (property-tested): any interval
//!   matrix / CSR interval shard — including empty and degenerate shapes
//!   — written as a text container and as a binary container reads back
//!   bit-for-bit identically from both, at every shard granularity;
//! * **fault injection**: a binary record stream corrupted at an
//!   arbitrary byte (truncation, bit flip, hard I/O error via
//!   `ivmf_data::fault`) always surfaces a typed `io::Error` or a clean
//!   end-of-stream — never a panic and never silently wrong data;
//! * **prefetch / pool bitwise identity**: all five ISVD algorithms over
//!   a disk-streamed session (`Pipeline::new_streaming_send` /
//!   `new_streaming_csr_send`) produce bitwise-identical factors at
//!   every `IVMF_PREFETCH` depth (0, 1, 2), in both container formats,
//!   and on a re-run that reuses the dirty buffer pool.

use std::io::Read;
use std::path::PathBuf;
use std::sync::Mutex;

use ivmf_core::pipeline::{run_all, Pipeline};
use ivmf_core::{IsvdAlgorithm, IsvdConfig, IsvdResult};
use ivmf_data::fault::{FaultSchedule, FaultyReader};
use ivmf_data::stream::{CsrShardReader, CsrShardWriter, ShardReader, ShardWriter};
use ivmf_data::{binfmt, synthetic};
use ivmf_env::ShardFormat;
use ivmf_interval::{CsrIntervalShard, IntervalMatrix};
use ivmf_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Serializes the tests that mutate the process-wide `IVMF_PREFETCH`
/// variable (the results are depth-invariant by contract, but the *set*
/// itself must not race another setter mid-assertion).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tmp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ivmf_binary_shards_{}_{tag}_{n}.ivs",
        std::process::id()
    ))
}

fn write_dense(path: &PathBuf, m: &IntervalMatrix, format: ShardFormat, split: usize) {
    let mut w = ShardWriter::create_with_format(path, m.rows(), m.cols(), format).unwrap();
    let mut start = 0;
    while start < m.rows() {
        let end = (start + split.max(1)).min(m.rows());
        let cols = m.cols();
        let lo = Matrix::from_vec(
            end - start,
            cols,
            m.lo().as_slice()[start * cols..end * cols].to_vec(),
        )
        .unwrap();
        let hi = Matrix::from_vec(
            end - start,
            cols,
            m.hi().as_slice()[start * cols..end * cols].to_vec(),
        )
        .unwrap();
        w.push_shard(&IntervalMatrix::from_bounds(lo, hi).unwrap())
            .unwrap();
        start = end;
    }
    w.finish().unwrap();
}

fn read_dense(path: &PathBuf, shard_rows: usize) -> (Vec<f64>, Vec<f64>) {
    let mut r = ShardReader::open(path, shard_rows).unwrap();
    let (mut lo, mut hi) = (Vec::new(), Vec::new());
    while let Some(shard) = r.read_shard().unwrap() {
        lo.extend_from_slice(shard.lo().as_slice());
        hi.extend_from_slice(shard.hi().as_slice());
    }
    (lo, hi)
}

fn write_csr(path: &PathBuf, s: &CsrIntervalShard, format: ShardFormat, split: usize) {
    let mut w = CsrShardWriter::create_with_format(path, s.rows(), s.cols(), format).unwrap();
    let mut start = 0;
    while start < s.rows() {
        let end = (start + split.max(1)).min(s.rows());
        w.push_shard(&s.row_slice(start, end).unwrap()).unwrap();
        start = end;
    }
    w.finish().unwrap();
}

/// Flattens every shard the reader yields into one comparable tuple
/// (rebased row extents, columns, lo values, hi values).
fn read_csr(path: &PathBuf, shard_rows: usize) -> (Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>) {
    let mut r = CsrShardReader::open(path, shard_rows).unwrap();
    let (mut lens, mut cols, mut lo, mut hi) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    while let Some(shard) = r.read_shard().unwrap() {
        let pat = shard.lo_shard();
        for w in pat.row_ptr().windows(2) {
            lens.push(w[1] - w[0]);
        }
        cols.extend_from_slice(pat.col_idx());
        lo.extend_from_slice(pat.values());
        hi.extend_from_slice(shard.hi_values());
    }
    (lens, cols, lo, hi)
}

fn arb_dense() -> impl Strategy<Value = (usize, usize, u64, usize, usize)> {
    // Shapes include empty (0 rows) and single-column degenerates; the
    // split / read granularities run from 1-row shards to one block.
    (0usize..40, 1usize..10, 1u64..1000, 1usize..45, 1usize..45)
}

fn dense_matrix(rows: usize, cols: usize, seed: u64) -> IntervalMatrix {
    if rows == 0 {
        let empty = Matrix::from_vec(0, cols, Vec::new()).unwrap();
        return IntervalMatrix::from_bounds(empty.clone(), empty).unwrap();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    synthetic::generate_uniform(
        &synthetic::SyntheticConfig::paper_default().with_shape(rows, cols),
        &mut rng,
    )
}

fn csr_shard(rows: usize, cols: usize, seed: u64) -> CsrIntervalShard {
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s
    };
    let mut entries = Vec::new();
    for i in 0..rows {
        // 0–3 entries per row, so some rows are empty (degenerate rows).
        for _ in 0..(next() % 4) {
            let c = (next() as usize) % cols;
            let lo = ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            if !entries.iter().any(|&(r, cc, _, _)| r == i && cc == c) {
                entries.push((i, c, lo, lo + 0.25));
            }
        }
    }
    CsrIntervalShard::from_triplets(rows, cols, &entries).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Text and binary dense containers round-trip the same matrix
    /// bit-for-bit at every write split and read granularity.
    #[test]
    fn dense_text_and_binary_containers_agree_bitwise(
        (rows, cols, seed, split, shard_rows) in arb_dense()
    ) {
        let m = dense_matrix(rows, cols, seed);
        let (pt, pb) = (tmp_path("pd_text"), tmp_path("pd_bin"));
        write_dense(&pt, &m, ShardFormat::Text, split);
        write_dense(&pb, &m, ShardFormat::Binary, split);
        let text = read_dense(&pt, shard_rows);
        let binary = read_dense(&pb, shard_rows);
        prop_assert_eq!(&text.0, &binary.0);
        prop_assert_eq!(&text.1, &binary.1);
        prop_assert_eq!(text.0, m.lo().as_slice().to_vec());
        prop_assert_eq!(text.1, m.hi().as_slice().to_vec());
        std::fs::remove_file(&pt).ok();
        std::fs::remove_file(&pb).ok();
    }

    /// The CSR twin: identical structure and values from both container
    /// formats, including empty matrices and all-empty rows.
    #[test]
    fn csr_text_and_binary_containers_agree_bitwise(
        (rows, cols, seed, split, shard_rows) in arb_dense()
    ) {
        let s = csr_shard(rows, cols, seed);
        let (pt, pb) = (tmp_path("pc_text"), tmp_path("pc_bin"));
        write_csr(&pt, &s, ShardFormat::Text, split);
        write_csr(&pb, &s, ShardFormat::Binary, split);
        let text = read_csr(&pt, shard_rows);
        let binary = read_csr(&pb, shard_rows);
        prop_assert_eq!(&text, &binary);
        prop_assert_eq!(text.0.len(), s.rows());
        prop_assert_eq!(text.2.len(), s.nnz());
        std::fs::remove_file(&pt).ok();
        std::fs::remove_file(&pb).ok();
    }

    /// A binary record stream corrupted at any byte — truncated, a bit
    /// flipped, or a hard I/O error — yields a typed `io::Error` or a
    /// clean end-of-stream, never a panic and never altered payloads.
    #[test]
    fn corrupted_binary_records_never_panic(
        at in 0u64..200,
        bit in 0u8..8,
        kind in 0usize..3,
    ) {
        let mut buf = Vec::new();
        binfmt::write_record(&mut buf, binfmt::REC_DENSE_HEADER, b"dense 3 4\n").unwrap();
        let payload = binfmt::encode_dense_rows(
            2,
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            &[1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5],
        ).unwrap();
        binfmt::write_record(&mut buf, binfmt::REC_DENSE_BLOCK, &payload).unwrap();
        binfmt::write_record(&mut buf, binfmt::REC_END, b"").unwrap();

        let schedule = match kind {
            0 => FaultSchedule::truncate_at(at),
            1 => FaultSchedule::flip_bit(at, bit),
            _ => FaultSchedule::fail_at(at),
        };
        let mut r = FaultyReader::new(&buf[..], schedule);
        let mut seen = Vec::new();
        let _outcome: std::io::Result<()> = (|| {
            while let Some((k, p)) = binfmt::read_record(&mut r)? {
                seen.push((k, p));
            }
            Ok(())
        })();
        // Reaching here at all is the core assertion: no corruption
        // pattern may panic the decoder. Truncation and hard failure
        // never alter bytes, so every record decoded before the fault
        // must additionally be intact. (A bit flip can land on a record's
        // *kind* byte, which the payload checksum deliberately does not
        // cover — the caller validates kinds — so flips only get the
        // no-panic guarantee.)
        if kind != 1 {
            let originals: [(u8, &[u8]); 3] = [
                (binfmt::REC_DENSE_HEADER, b"dense 3 4\n"),
                (binfmt::REC_DENSE_BLOCK, &payload),
                (binfmt::REC_END, b""),
            ];
            prop_assert!(seen.len() <= originals.len());
            for ((k, p), (ok, op)) in seen.iter().zip(originals.iter()) {
                prop_assert_eq!(k, ok);
                prop_assert_eq!(&p[..], *op);
            }
        }
    }
}

/// Reads a whole file through `FaultyReader` just to prove the fixture
/// composes with buffered record decoding (truncation at EOF is clean).
#[test]
fn clean_faulty_reader_passes_records_through() {
    let mut buf = Vec::new();
    binfmt::write_record(&mut buf, binfmt::REC_END, b"payload").unwrap();
    let mut r = FaultyReader::new(&buf[..], FaultSchedule::truncate_at(buf.len() as u64));
    let mut raw = Vec::new();
    r.read_to_end(&mut raw).unwrap();
    let (kind, payload) = binfmt::read_record(&mut &raw[..]).unwrap().unwrap();
    assert_eq!(kind, binfmt::REC_END);
    assert_eq!(payload, b"payload");
}

fn assert_results_bitwise(a: &[IsvdResult; 5], b: &[IsvdResult; 5], context: &str) {
    for ((ra, rb), alg) in a.iter().zip(b.iter()).zip(IsvdAlgorithm::all()) {
        assert_eq!(ra.factors.u, rb.factors.u, "{context}: {alg} U differs");
        assert_eq!(ra.factors.v, rb.factors.v, "{context}: {alg} V differs");
        assert_eq!(
            ra.factors.sigma, rb.factors.sigma,
            "{context}: {alg} core differs"
        );
    }
}

/// All five algorithms, streamed from disk with prefetch depths 0 / 1 / 2
/// and from both container formats, match the in-memory dense session
/// bitwise; a second pass over dirty pooled buffers matches too.
#[test]
fn streamed_sessions_are_prefetch_pool_and_format_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = SmallRng::seed_from_u64(77);
    let m = synthetic::generate_uniform(
        &synthetic::SyntheticConfig::paper_default().with_shape(150, 18),
        &mut rng,
    );
    let config = IsvdConfig::new(4);
    let reference = run_all(&m, &config).unwrap();

    let (pt, pb) = (tmp_path("sess_text"), tmp_path("sess_bin"));
    write_dense(&pt, &m, ShardFormat::Text, 37);
    write_dense(&pb, &m, ShardFormat::Binary, 37);
    for path in [&pt, &pb] {
        for depth in ["0", "1", "2"] {
            std::env::set_var(ivmf_env::PREFETCH, depth);
            // Two passes: the second reuses buffers the first recycled
            // into the pool, proving dirty-buffer reuse changes nothing.
            for pass in 0..2 {
                let reader = ShardReader::open(path, 29).unwrap();
                let mut session = Pipeline::new_streaming_send(Box::new(reader), config).unwrap();
                let streamed = session.run_all().unwrap();
                assert_results_bitwise(
                    &reference,
                    &streamed,
                    &format!("dense {path:?} depth {depth} pass {pass}"),
                );
            }
        }
    }
    std::env::remove_var(ivmf_env::PREFETCH);
    std::fs::remove_file(&pt).ok();
    std::fs::remove_file(&pb).ok();
}

/// The sparse twin of the invariance test: CSR containers through
/// `new_streaming_csr_send` at every depth and format, against the dense
/// in-memory reference over the same logical matrix.
#[test]
fn streamed_csr_sessions_are_prefetch_pool_and_format_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let s = csr_shard(140, 22, 9);
    let dense = s.to_dense();
    let config = IsvdConfig::new(4);
    let reference = run_all(&dense, &config).unwrap();

    let (pt, pb) = (tmp_path("csess_text"), tmp_path("csess_bin"));
    write_csr(&pt, &s, ShardFormat::Text, 31);
    write_csr(&pb, &s, ShardFormat::Binary, 31);
    for path in [&pt, &pb] {
        for depth in ["0", "1", "2"] {
            std::env::set_var(ivmf_env::PREFETCH, depth);
            for pass in 0..2 {
                let reader = CsrShardReader::open(path, 29).unwrap();
                let mut session =
                    Pipeline::new_streaming_csr_send(Box::new(reader), config).unwrap();
                let streamed = session.run_all().unwrap();
                assert_results_bitwise(
                    &reference,
                    &streamed,
                    &format!("csr {path:?} depth {depth} pass {pass}"),
                );
            }
        }
    }
    std::env::remove_var(ivmf_env::PREFETCH);
    std::fs::remove_file(&pt).ok();
    std::fs::remove_file(&pb).ok();
}
