//! Acceptance suite for the distributed Gram fan-out at the pipeline
//! level: with `IVMF_WORKERS` > 1 the interval-Gram stage streams its
//! shards through the `ivmf-distrib` coordinator, and all five ISVD
//! algorithms must come out **bitwise identical** to the single-process
//! run — across dense and sparse routes and adversarial shard layouts.
//!
//! Everything lives in one `#[test]` because it mutates the process-wide
//! `IVMF_WORKERS` variable: the harness runs test functions concurrently
//! in one process, so the mutation must not straddle functions.

use ivmf_core::pipeline::run_all;
use ivmf_core::{run_all_sharded, run_all_sparse, IsvdAlgorithm, IsvdConfig, IsvdResult};
use ivmf_data::synthetic::{generate_power_law, generate_uniform, PowerLawConfig, SyntheticConfig};
use ivmf_interval::{CsrShardedIntervalMatrix, IntervalMatrix, RowShardedIntervalMatrix};
use ivmf_linalg::streaming::GROUP_ROWS;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn assert_results_bitwise(a: &[IsvdResult; 5], b: &[IsvdResult; 5], context: &str) {
    for ((ra, rb), alg) in a.iter().zip(b.iter()).zip(IsvdAlgorithm::all()) {
        assert!(
            !ra.factors.u.has_non_finite() && !ra.factors.v.has_non_finite(),
            "{context}: {alg} produced non-finite factors"
        );
        assert_eq!(ra.factors.u, rb.factors.u, "{context}: {alg} U differs");
        assert_eq!(ra.factors.v, rb.factors.v, "{context}: {alg} V differs");
        assert_eq!(
            ra.factors.sigma, rb.factors.sigma,
            "{context}: {alg} core differs"
        );
    }
}

#[test]
fn n_workers_match_one_process_bitwise_for_all_algorithms_and_routes() {
    // Tall enough that the coordinator cuts more than one work unit
    // (distribution gates on rows > GROUP_ROWS), small enough in columns
    // that ISVD0/1's dense stages stay fast.
    let rows = GROUP_ROWS + 700;
    let config = IsvdConfig::new(4);

    let mut rng = SmallRng::seed_from_u64(2024);
    let dense: IntervalMatrix = generate_uniform(
        &SyntheticConfig::paper_default().with_shape(rows, 10),
        &mut rng,
    );
    let mut rng = SmallRng::seed_from_u64(2025);
    let csr = generate_power_law(
        &PowerLawConfig::ratings_like(rows, 12).with_nnz_per_row(4),
        &mut rng,
    );

    // Honour a pre-existing value (the CI env passes export
    // IVMF_WORKERS=3 for the whole suite) and restore it afterwards.
    let prev = std::env::var(ivmf_env::WORKERS).ok();

    // Baselines: explicitly single-process.
    std::env::set_var(ivmf_env::WORKERS, "1");
    let dense_baseline = run_all(&dense, &config).unwrap();
    let sparse_baseline = {
        let sharded = CsrShardedIntervalMatrix::from_csr(&csr, rows).unwrap();
        run_all_sparse(&sharded, &config).unwrap()
    };

    for workers in ["2", "3"] {
        std::env::set_var(ivmf_env::WORKERS, workers);

        // Dense route, shard layouts chosen to straddle chunk and
        // merge-group boundaries inside the coordinator's unit cutter.
        let distributed = run_all(&dense, &config).unwrap();
        assert_results_bitwise(
            &distributed,
            &dense_baseline,
            &format!("{workers} workers dense"),
        );
        for shard_rows in [997, GROUP_ROWS - 1, GROUP_ROWS + 127] {
            let sharded = RowShardedIntervalMatrix::from_dense(&dense, shard_rows).unwrap();
            let results = run_all_sharded(&sharded, &config).unwrap();
            assert_results_bitwise(
                &results,
                &dense_baseline,
                &format!("{workers} workers dense shard_rows={shard_rows}"),
            );
        }

        // Sparse CSR route, same adversarial layouts.
        for shard_rows in [997, GROUP_ROWS + 127, rows] {
            let sharded = CsrShardedIntervalMatrix::from_csr(&csr, shard_rows).unwrap();
            let results = run_all_sparse(&sharded, &config).unwrap();
            assert_results_bitwise(
                &results,
                &sparse_baseline,
                &format!("{workers} workers sparse shard_rows={shard_rows}"),
            );
        }
    }

    match prev {
        Some(v) => std::env::set_var(ivmf_env::WORKERS, v),
        None => std::env::remove_var(ivmf_env::WORKERS),
    }
}
