//! End-to-end face-analysis pipeline tests (the Figure 8 / Table 3 code
//! paths): corpus generation → interval construction → decomposition →
//! classification and clustering.

use ivmf_core::isvd::isvd;
use ivmf_core::nmf::{interval_nmf, nmf, NmfConfig};
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::faces::{generate_faces, interval_faces, FaceCorpusConfig};
use ivmf_data::split::stratified_split;
use ivmf_eval::classification::{accuracy, knn1_interval, knn1_scalar};
use ivmf_eval::kmeans::{kmeans_interval, KMeansConfig};
use ivmf_eval::nmi::nmi;
use ivmf_eval::regression::matrix_rmse;
use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn corpus() -> (ivmf_data::faces::FaceDataset, IntervalMatrix) {
    let mut rng = SmallRng::seed_from_u64(1);
    let config = FaceCorpusConfig::small();
    let dataset = generate_faces(&config, &mut rng);
    let faces = interval_faces(&dataset, 1, 1.0);
    (dataset, faces)
}

fn gather(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (oi, &si) in rows.iter().enumerate() {
        out.row_mut(oi).copy_from_slice(m.row(si));
    }
    out
}

fn gather_interval(m: &IntervalMatrix, rows: &[usize]) -> IntervalMatrix {
    IntervalMatrix::from_bounds(gather(m.lo(), rows), gather(m.hi(), rows)).unwrap()
}

#[test]
fn isvd_projection_classifies_individuals_better_than_chance() {
    let (dataset, faces) = corpus();
    let config = IsvdConfig::new(10)
        .with_algorithm(IsvdAlgorithm::Isvd2)
        .with_target(DecompositionTarget::IntervalCore);
    let result = isvd(&faces, &config).expect("ISVD2-b");
    let projection = result.factors.row_projection().expect("projection");

    let mut rng = SmallRng::seed_from_u64(2);
    let split = stratified_split(&dataset.labels, 0.5, &mut rng);
    let train_labels: Vec<usize> = split.train.iter().map(|&i| dataset.labels[i]).collect();
    let test_labels: Vec<usize> = split.test.iter().map(|&i| dataset.labels[i]).collect();
    let predictions = knn1_interval(
        &gather_interval(&projection, &split.train),
        &train_labels,
        &gather_interval(&projection, &split.test),
    )
    .expect("1-NN");
    let acc = accuracy(&predictions, &test_labels).expect("accuracy");
    let chance = 1.0 / dataset.num_classes() as f64;
    assert!(
        acc > 3.0 * chance,
        "projection classification accuracy {acc:.3} vs chance {chance:.3}"
    );
}

#[test]
fn low_rank_projection_is_competitive_with_raw_pixels_for_classification() {
    let (dataset, faces) = corpus();
    let mut rng = SmallRng::seed_from_u64(3);
    let split = stratified_split(&dataset.labels, 0.5, &mut rng);
    let train_labels: Vec<usize> = split.train.iter().map(|&i| dataset.labels[i]).collect();
    let test_labels: Vec<usize> = split.test.iter().map(|&i| dataset.labels[i]).collect();

    // Raw-pixel baseline.
    let raw_pred = knn1_scalar(
        &gather(&dataset.data, &split.train),
        &train_labels,
        &gather(&dataset.data, &split.test),
    )
    .expect("raw 1-NN");
    let raw_acc = accuracy(&raw_pred, &test_labels).unwrap();

    // Rank-10 interval projection.
    let result = isvd(
        &faces,
        &IsvdConfig::new(10).with_algorithm(IsvdAlgorithm::Isvd1),
    )
    .expect("ISVD1-b");
    let projection = result.factors.row_projection().expect("projection");
    let proj_pred = knn1_interval(
        &gather_interval(&projection, &split.train),
        &train_labels,
        &gather_interval(&projection, &split.test),
    )
    .expect("projected 1-NN");
    let proj_acc = accuracy(&proj_pred, &test_labels).unwrap();

    assert!(
        proj_acc >= raw_acc - 0.25,
        "rank-10 projection accuracy {proj_acc:.3} collapsed relative to raw pixels {raw_acc:.3}"
    );
}

#[test]
fn clustering_on_projection_recovers_identity_structure() {
    let (dataset, faces) = corpus();
    let result = isvd(
        &faces,
        &IsvdConfig::new(8).with_algorithm(IsvdAlgorithm::Isvd2),
    )
    .expect("ISVD2-b");
    let projection = result.factors.row_projection().expect("projection");
    let clusters = kmeans_interval(
        &projection,
        &KMeansConfig::new(dataset.num_classes()).with_restarts(5),
    )
    .expect("k-means");
    let quality = nmi(&clusters.assignments, &dataset.labels).expect("NMI");
    assert!(quality > 0.5, "clustering NMI {quality:.3} too low");
}

#[test]
fn reconstruction_error_decreases_with_rank_and_isvd_beats_nmf_at_equal_rank() {
    let (dataset, faces) = corpus();
    let rmse_at = |rank: usize| {
        let result = isvd(
            &faces,
            &IsvdConfig::new(rank)
                .with_algorithm(IsvdAlgorithm::Isvd4)
                .with_target(DecompositionTarget::Scalar),
        )
        .expect("ISVD4-c");
        matrix_rmse(
            &dataset.data,
            &result.factors.reconstruct().expect("reconstruction").mid(),
        )
        .expect("rmse")
    };
    let low = rmse_at(4);
    let high = rmse_at(16);
    assert!(
        high < low,
        "rank 16 RMSE {high:.4} should be below rank 4 RMSE {low:.4}"
    );

    // SVD-based reconstruction is optimal in Frobenius norm, so at equal
    // rank it should not lose to the NMF baselines (Figure 8a shape).
    let nmf_model = nmf(&faces.mid(), &NmfConfig::new(8).with_max_iters(150)).expect("NMF");
    let nmf_rmse = matrix_rmse(&dataset.data, &nmf_model.reconstruct().unwrap()).unwrap();
    let inmf_model = interval_nmf(&faces, &NmfConfig::new(8).with_max_iters(150)).expect("I-NMF");
    let inmf_rmse = matrix_rmse(&dataset.data, &inmf_model.reconstruct().unwrap().mid()).unwrap();
    let isvd_rmse = rmse_at(8);
    assert!(
        isvd_rmse <= nmf_rmse + 1e-6 && isvd_rmse <= inmf_rmse + 1e-6,
        "ISVD RMSE {isvd_rmse:.4} vs NMF {nmf_rmse:.4} / I-NMF {inmf_rmse:.4}"
    );
}

#[test]
fn interval_pixels_contain_the_scalar_image_and_feed_non_negative_baselines() {
    let (dataset, faces) = corpus();
    assert!(faces.contains_matrix(&dataset.data, 1e-9));
    // Both NMF baselines accept the interval face data (non-negative).
    assert!(interval_nmf(&faces, &NmfConfig::new(4).with_max_iters(30)).is_ok());
}
