//! Oracle-equivalence and degenerate-spectrum acceptance suite for the
//! certified top-k eigensolver (`ivmf_linalg::sym_eigen_topk`):
//!
//! * property tests over random symmetric and Gram matrices across sizes
//!   and `k` values assert the top-k eigenvalues match the full
//!   `sym_eigen` spectrum within tolerance, the eigenvectors are
//!   orthonormal, and every returned pair meets the certified residual
//!   bound `‖A v − λ v‖ ≤ tol·‖A‖_F`,
//! * degenerate spectra — repeated and clustered eigenvalues, the zero
//!   matrix, rank-deficient Grams with `k` past the rank, `k = n`,
//!   `k = 1` — are exercised explicitly,
//! * the fallback-to-full path demonstrably triggers on a starved basis,
//!   and with fallback disabled the typed `NoConvergence` error stays
//!   reachable.
//!
//! Everything here drives the solver through explicit [`TopkOptions`]
//! (never the `IVMF_TOPK_EIGEN` environment knob), so the suite asserts
//! the same behaviour under every CI environment pass.

use ivmf_linalg::eigen_sym::{sym_eigen, SymEigen};
use ivmf_linalg::random::{symmetric_matrix, uniform_matrix};
use ivmf_linalg::{
    sym_eigen_topk_report, sym_eigen_topk_with, LinalgError, Matrix, TopkOptions, DEFAULT_TOPK_TOL,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn forced() -> TopkOptions {
    TopkOptions::default().with_force(true)
}

/// Per-pair residual certification, recomputed from scratch — the bound
/// the solver claims for every answer, whichever path produced it.
fn assert_certified(a: &Matrix, eig: &SymEigen, context: &str) {
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    for i in 0..eig.eigenvalues.len() {
        let v = eig.eigenvectors.col(i);
        let av = a.matvec(&v).unwrap();
        let r: f64 = av
            .iter()
            .zip(v.iter())
            .map(|(&x, &y)| (x - eig.eigenvalues[i] * y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            r <= DEFAULT_TOPK_TOL * scale,
            "{context}: pair {i} residual {r} exceeds {DEFAULT_TOPK_TOL}·‖A‖_F"
        );
    }
}

fn assert_orthonormal(q: &Matrix, tol: f64, context: &str) {
    let qtq = q.gram();
    assert!(
        qtq.approx_eq(&Matrix::identity(q.cols()), tol),
        "{context}: eigenvector columns are not orthonormal"
    );
}

fn assert_matches_oracle(a: &Matrix, eig: &SymEigen, k: usize, context: &str) {
    let full = sym_eigen(a).unwrap();
    let scale = a.frobenius_norm().max(1.0);
    for i in 0..k {
        let diff = (eig.eigenvalues[i] - full.eigenvalues[i]).abs();
        assert!(
            diff <= 1e-6 * scale,
            "{context}: eigenvalue {i} off by {diff} ({} vs oracle {})",
            eig.eigenvalues[i],
            full.eigenvalues[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn topk_matches_full_spectrum_on_random_symmetric(
        seed in 0u64..10_000,
        n in 4usize..40,
        k_raw in 1usize..40,
    ) {
        let k = k_raw.min(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = symmetric_matrix(&mut rng, n, -2.0, 2.0);
        let (eig, report) = sym_eigen_topk_report(&a, k, &forced()).unwrap();
        prop_assert_eq!(eig.eigenvalues.len(), k);
        assert_matches_oracle(&a, &eig, k, "symmetric");
        assert_orthonormal(&eig.eigenvectors, 1e-8, "symmetric");
        assert_certified(&a, &eig, "symmetric");
        if !report.used_dense {
            // The reported residuals are the certificate the solver
            // actually checked: present for every pair and within bound.
            prop_assert_eq!(report.residuals.len(), k);
            let scale = a.frobenius_norm();
            prop_assert!(report
                .residuals
                .iter()
                .all(|&r| r <= DEFAULT_TOPK_TOL * scale));
        }
    }

    #[test]
    fn topk_matches_full_spectrum_on_random_grams(
        seed in 0u64..10_000,
        rows in 2usize..24,
        n in 4usize..36,
        k_raw in 1usize..36,
    ) {
        // Gram matrices of (often wide, hence rank-deficient) factors:
        // positive semi-definite with trailing zero eigenvalues.
        let k = k_raw.min(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = uniform_matrix(&mut rng, rows, n, -1.0, 1.0).gram();
        let (eig, _) = sym_eigen_topk_report(&g, k, &forced()).unwrap();
        assert_matches_oracle(&g, &eig, k, "gram");
        assert_orthonormal(&eig.eigenvectors, 1e-8, "gram");
        assert_certified(&g, &eig, "gram");
        // PSD input: clamped eigenvalues stay essentially non-negative.
        let scale = g.frobenius_norm().max(1.0);
        prop_assert!(eig.eigenvalues.iter().all(|&l| l >= -1e-7 * scale));
    }
}

#[test]
fn zero_matrix_yields_certified_null_spectrum() {
    let (eig, report) = sym_eigen_topk_report(&Matrix::zeros(12, 12), 5, &forced()).unwrap();
    assert_eq!(eig.eigenvalues, vec![0.0; 5]);
    assert!(report.residuals.iter().all(|&r| r == 0.0));
    assert_orthonormal(&eig.eigenvectors, 1e-14, "zero matrix");
}

#[test]
fn repeated_eigenvalues_are_recovered_copy_by_copy() {
    // c·I: one distinct eigenvalue, so the Krylov space breaks down after
    // a single step and every further copy comes from a deterministic
    // restart. All five returned eigenvalues must equal c.
    let a = Matrix::identity(50).scale(3.0);
    let (eig, report) = sym_eigen_topk_report(&a, 5, &forced()).unwrap();
    assert!(!report.used_dense, "forced path must iterate");
    for &l in &eig.eigenvalues {
        assert!((l - 3.0).abs() < 1e-10, "expected 3.0, got {l}");
    }
    assert_orthonormal(&eig.eigenvectors, 1e-10, "repeated");
    assert_certified(&a, &eig, "repeated");
}

#[test]
fn multiplicity_inside_a_small_distinct_spectrum_is_resolved() {
    // diag(5, 5, 5, 2, …, 2, 1): three distinct eigenvalues, so breakdown
    // and restart recover the multiplicities; top-4 must be [5, 5, 5, 2].
    let n = 100;
    let a = Matrix::from_diag(
        &(0..n)
            .map(|i| {
                if i < 3 {
                    5.0
                } else if i < n - 1 {
                    2.0
                } else {
                    1.0
                }
            })
            .collect::<Vec<_>>(),
    );
    let (eig, report) = sym_eigen_topk_report(&a, 4, &forced()).unwrap();
    assert!(!report.used_dense);
    assert_matches_oracle(&a, &eig, 4, "multiplicity");
    assert_certified(&a, &eig, "multiplicity");
}

#[test]
fn clustered_eigenvalues_converge_within_tolerance() {
    // A tight (1e-3-wide) cluster at the top of the spectrum.
    let n = 100;
    let a = Matrix::from_diag(
        &(0..n)
            .map(|i| match i {
                0 => 5.0,
                1 => 5.0 - 1e-3,
                2 => 5.0 - 2e-3,
                _ => 1.0 / (i as f64),
            })
            .collect::<Vec<_>>(),
    );
    let (eig, _) = sym_eigen_topk_report(&a, 3, &forced()).unwrap();
    assert_matches_oracle(&a, &eig, 3, "clustered");
    assert_orthonormal(&eig.eigenvectors, 1e-8, "clustered");
    assert_certified(&a, &eig, "clustered");
}

#[test]
fn rank_deficient_gram_with_k_past_rank_pads_with_null_pairs() {
    let mut rng = SmallRng::seed_from_u64(41);
    // 130-dim Gram of rank <= 4.
    let g = uniform_matrix(&mut rng, 4, 130, -1.0, 1.0).gram();
    let (eig, report) = sym_eigen_topk_report(&g, 10, &forced()).unwrap();
    assert!(!report.used_dense);
    assert_matches_oracle(&g, &eig, 10, "rank-deficient");
    assert_certified(&g, &eig, "rank-deficient");
    let scale = g.frobenius_norm();
    for i in 4..10 {
        assert!(
            eig.eigenvalues[i].abs() <= 1e-7 * scale,
            "pair {i} should be numerically null, got {}",
            eig.eigenvalues[i]
        );
    }
}

#[test]
fn k_equal_n_returns_the_full_oracle_spectrum() {
    let mut rng = SmallRng::seed_from_u64(42);
    let a = symmetric_matrix(&mut rng, 17, -2.0, 2.0);
    let (eig, report) = sym_eigen_topk_report(&a, 17, &forced()).unwrap();
    assert!(report.used_dense, "k == n has nothing to truncate");
    assert!(!report.used_fallback);
    assert_eq!(eig.eigenvalues, sym_eigen(&a).unwrap().eigenvalues);
}

#[test]
fn k_equal_one_finds_the_dominant_pair() {
    let mut rng = SmallRng::seed_from_u64(43);
    // A planted spike separates the dominant eigenvalue from the bulk, so
    // the k=1 iteration converges well inside its (small, 4k+32) basis
    // cap; without separation the call would still be correct but through
    // the fallback path, which is covered elsewhere.
    let mut a = symmetric_matrix(&mut rng, 120, -2.0, 2.0);
    a[(0, 0)] += 80.0;
    let (eig, report) = sym_eigen_topk_report(&a, 1, &forced()).unwrap();
    assert!(!report.used_dense);
    assert_eq!(eig.eigenvalues.len(), 1);
    assert_matches_oracle(&a, &eig, 1, "k=1");
    assert_certified(&a, &eig, "k=1");
}

#[test]
fn starved_basis_triggers_fallback_to_the_full_solver() {
    let mut rng = SmallRng::seed_from_u64(44);
    let a = symmetric_matrix(&mut rng, 48, -2.0, 2.0);
    // A basis cap equal to k cannot certify a random spectrum.
    let opts = forced().with_max_basis(12);
    let (eig, report) = sym_eigen_topk_report(&a, 12, &opts).unwrap();
    assert!(report.used_fallback, "fallback must trigger");
    assert!(report.used_dense);
    assert!(report.residuals.is_empty());
    // The fallback runs the very same dense solve, so its eigenvalues are
    // bitwise equal to the truncated oracle's.
    assert_eq!(eig.eigenvalues, sym_eigen(&a).unwrap().eigenvalues[..12]);
    assert_certified(&a, &eig, "fallback");
}

#[test]
fn no_convergence_stays_reachable_and_typed_without_fallback() {
    let mut rng = SmallRng::seed_from_u64(44);
    let a = symmetric_matrix(&mut rng, 48, -2.0, 2.0);
    let opts = forced().with_max_basis(12).with_fallback(false);
    match sym_eigen_topk_with(&a, 12, &opts) {
        Err(LinalgError::NoConvergence {
            algorithm,
            iterations,
        }) => {
            assert_eq!(algorithm, "lanczos_topk");
            assert!(iterations > 0);
        }
        other => panic!("expected typed NoConvergence, got {other:?}"),
    }
}

#[test]
fn invalid_requests_are_rejected_with_typed_errors() {
    assert!(matches!(
        sym_eigen_topk_with(&Matrix::zeros(0, 0), 1, &TopkOptions::default()),
        Err(LinalgError::Empty)
    ));
    assert!(matches!(
        sym_eigen_topk_with(&Matrix::zeros(3, 4), 1, &TopkOptions::default()),
        Err(LinalgError::NotSquare { .. })
    ));
    assert!(matches!(
        sym_eigen_topk_with(&Matrix::identity(4), 0, &TopkOptions::default()),
        Err(LinalgError::InvalidArgument(_))
    ));
}
