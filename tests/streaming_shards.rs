//! Acceptance suite for row-sharded storage, streaming Gram accumulation
//! and incremental row-append:
//!
//! * a matrix streamed in ≥ 4 shards decomposes via `run_all_batch_sharded`
//!   **bitwise identical** to the dense `run_all_batch` path for all five
//!   algorithms (and every decomposition target),
//! * shard layout and `IVMF_THREADS` never change a single bit of the
//!   streamed interval Gram (property-tested across random shard sizes,
//!   including 1-row shards and shard == n),
//! * `Pipeline::append_rows` equals a cold recompute bitwise while the
//!   cache accounting shows the Gram was *reused* (only the appended
//!   shards' contributions computed),
//! * a matrix loaded lazily from disk through the chunked `ivmf-data`
//!   readers decomposes end to end, identical to the in-memory path.
//!
//! Sizes deliberately straddle `ivmf_linalg::STREAM_CHUNK_ROWS` so the
//! chunk re-alignment machinery (not just the single-chunk fast case) is
//! exercised.

use ivmf_core::pipeline::{run_all, run_all_batch, run_all_batch_sharded, Pipeline, StageId};
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig, IsvdResult};
use ivmf_data::stream::{stream_interval_gram, write_interval_matrix, ShardReader};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_interval::{IntervalMatrix, RowShardedIntervalMatrix};
use ivmf_linalg::STREAM_CHUNK_ROWS;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn synthetic(seed: u64, rows: usize, cols: usize) -> IntervalMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    generate_uniform(
        &SyntheticConfig::paper_default().with_shape(rows, cols),
        &mut rng,
    )
}

fn assert_results_bitwise(a: &[IsvdResult; 5], b: &[IsvdResult; 5], context: &str) {
    for ((ra, rb), alg) in a.iter().zip(b.iter()).zip(IsvdAlgorithm::all()) {
        assert!(
            !ra.factors.u.has_non_finite() && !ra.factors.v.has_non_finite(),
            "{context}: {alg} produced non-finite factors"
        );
        assert_eq!(ra.factors.u, rb.factors.u, "{context}: {alg} U differs");
        assert_eq!(ra.factors.v, rb.factors.v, "{context}: {alg} V differs");
        assert_eq!(
            ra.factors.sigma, rb.factors.sigma,
            "{context}: {alg} core differs"
        );
    }
}

#[test]
fn sharded_batch_matches_dense_batch_bitwise_for_all_algorithms() {
    // Two matrices, one taller than a streaming chunk; each split into
    // >= 4 shards. The batched sharded driver must agree with the batched
    // dense driver bit for bit across all five algorithms.
    let dense: Vec<IntervalMatrix> = vec![
        synthetic(900, STREAM_CHUNK_ROWS + 22, 12),
        synthetic(901, 30, 9),
    ];
    let sharded: Vec<RowShardedIntervalMatrix> = dense
        .iter()
        .map(|m| {
            let s = RowShardedIntervalMatrix::from_dense(m, m.rows().div_ceil(5)).unwrap();
            assert!(
                s.num_shards() >= 4,
                "want >= 4 shards, got {}",
                s.num_shards()
            );
            s
        })
        .collect();
    let config = IsvdConfig::new(5);
    let dense_results = run_all_batch(&dense, &config).unwrap();
    let sharded_results = run_all_batch_sharded(&sharded, &config).unwrap();
    for (i, (d, s)) in dense_results.iter().zip(&sharded_results).enumerate() {
        assert_results_bitwise(s, d, &format!("matrix {i}"));
    }
}

#[test]
fn sharded_run_matches_dense_for_every_target() {
    let m = synthetic(902, 26, 10);
    let sharded = RowShardedIntervalMatrix::from_dense(&m, 6).unwrap();
    for target in DecompositionTarget::all() {
        let config = IsvdConfig::new(4).with_target(target);
        let dense = run_all(&m, &config).unwrap();
        let results = ivmf_core::run_all_sharded(&sharded, &config).unwrap();
        assert_results_bitwise(&results, &dense, &format!("target {target}"));
    }
}

#[test]
fn streamed_gram_is_bitwise_invariant_across_shard_sizes_and_thread_counts() {
    // Property test over random shard sizes (always including the 1-row
    // and whole-matrix edge cases) and two thread counts. Env mutation is
    // contained in this one test; concurrent tests only *read* the
    // variable through kernels that are bitwise thread-count-invariant.
    let mut rng = SmallRng::seed_from_u64(903);
    let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
    for case in 0..8 {
        let n = rng.gen_range(1usize..(STREAM_CHUNK_ROWS * 2));
        let cols = rng.gen_range(1usize..24);
        let m = synthetic(1000 + case, n, cols);
        let reference = m.interval_gram_streamed().unwrap();
        let mut shard_sizes = vec![1usize, n];
        shard_sizes.push(rng.gen_range(1..=n));
        for shard_rows in shard_sizes {
            let sharded = RowShardedIntervalMatrix::from_dense(&m, shard_rows).unwrap();
            for threads in ["1", "4"] {
                std::env::set_var(ivmf_par::THREADS_ENV, threads);
                let streamed = sharded.interval_gram_streamed().unwrap();
                assert_eq!(
                    streamed, reference,
                    "gram diverged: n={n} cols={cols} shard_rows={shard_rows} threads={threads}"
                );
            }
        }
    }
    match prev {
        Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
        None => std::env::remove_var(ivmf_par::THREADS_ENV),
    }
}

#[test]
fn forced_shard_size_env_controls_default_sharding() {
    // The CI forced-shard pass exports IVMF_SHARD_ROWS=7 for the whole
    // suite; honour a pre-existing value and restore it afterwards.
    let prev = std::env::var(ivmf_env::SHARD_ROWS).ok();
    std::env::set_var(ivmf_env::SHARD_ROWS, "7");
    let m = synthetic(904, 23, 8);
    let sharded = RowShardedIntervalMatrix::from_dense_env(&m).unwrap();
    assert_eq!(sharded.num_shards(), 4); // ceil(23 / 7)
    match prev {
        Some(v) => std::env::set_var(ivmf_env::SHARD_ROWS, v),
        None => std::env::remove_var(ivmf_env::SHARD_ROWS),
    }
    // Whatever the shard size, results equal the dense path.
    let config = IsvdConfig::new(4);
    let dense = run_all(&m, &config).unwrap();
    let results = ivmf_core::run_all_sharded(&sharded, &config).unwrap();
    assert_results_bitwise(&results, &dense, "env-sharded");
}

#[test]
fn append_rows_across_chunk_boundaries_matches_cold_and_reuses_gram() {
    // Base taller than one chunk so appends land in a non-trivial
    // accumulator state; three successive appends.
    let base = synthetic(905, STREAM_CHUNK_ROWS + 10, 14);
    let config = IsvdConfig::new(5);
    let mut session = Pipeline::from_shards(
        RowShardedIntervalMatrix::from_dense(&base, 40).unwrap(),
        config,
    )
    .unwrap();
    session.run_all().unwrap();

    let mut combined = RowShardedIntervalMatrix::from_dense(&base, 40).unwrap();
    for step in 0..3 {
        let delta = synthetic(906 + step, 9, 14);
        session.append_rows(delta.clone()).unwrap();
        combined.append_rows(delta).unwrap();

        let incremental = session.run_all().unwrap();
        let cold = ivmf_core::run_all_sharded(&combined, &config).unwrap();
        assert_results_bitwise(&incremental, &cold, &format!("append step {step}"));

        // The Gram must be served from the seeded cache entry — the
        // accounting proof that only the appended contribution was folded.
        let gram_event = incremental[2]
            .stages
            .iter()
            .find(|e| e.stage == StageId::IntervalGram)
            .unwrap();
        assert!(gram_event.cache_hit, "step {step}: Gram was recomputed");
        // Downstream eigen stages were invalidated (computed fresh by the
        // first algorithm that needs them in this run_all).
        let eigen_event = incremental[2]
            .stages
            .iter()
            .find(|e| e.stage == StageId::BoundEigenLo)
            .unwrap();
        assert!(
            !eigen_event.cache_hit,
            "step {step}: stale eigen survived the append"
        );
    }
}

#[test]
fn lazy_disk_loader_decomposes_end_to_end_identically_to_memory() {
    let m = synthetic(910, STREAM_CHUNK_ROWS + 5, 11);
    let path =
        std::env::temp_dir().join(format!("ivmf_streaming_shards_{}.txt", std::process::id()));
    write_interval_matrix(&path, &m).unwrap();

    let config = IsvdConfig::new(4);
    let dense = run_all(&m, &config).unwrap();
    let reader = ShardReader::open(&path, 13).unwrap();
    let mut session = Pipeline::new_streaming(Box::new(reader), config).unwrap();
    let streamed = session.run_all().unwrap();
    assert_results_bitwise(&streamed, &dense, "disk loader");

    // The one-pass out-of-core Gram agrees with the session's Gram stage.
    let gram = stream_interval_gram(&path, 13).unwrap();
    assert_eq!(gram, *session.interval_gram().unwrap());
    std::fs::remove_file(&path).ok();
}
