//! Error-path coverage across the crate stack: constructors and
//! configuration validation must fail with the *specific* error variant the
//! API documents, not just "some error".

use ivmf_core::isvd::isvd;
use ivmf_core::{IsvdConfig, IvmfError};
use ivmf_interval::{Interval, IntervalError, IntervalMatrix};
use ivmf_linalg::Matrix;

fn small_interval_matrix(rows: usize, cols: usize) -> IntervalMatrix {
    let lo = Matrix::from_fn(rows, cols, |i, j| (i + j) as f64 + 1.0);
    let hi = Matrix::from_fn(rows, cols, |i, j| (i + j) as f64 + 2.0);
    IntervalMatrix::from_bounds(lo, hi).unwrap()
}

#[test]
fn interval_new_rejects_misordered_bounds() {
    let err = Interval::new(2.0, 1.0).unwrap_err();
    assert_eq!(err, IntervalError::InvalidBounds { lo: 2.0, hi: 1.0 });
}

#[test]
fn interval_new_rejects_nan_bounds() {
    assert_eq!(
        Interval::new(f64::NAN, 1.0).unwrap_err(),
        IntervalError::NotANumber
    );
    assert_eq!(
        Interval::new(0.0, f64::NAN).unwrap_err(),
        IntervalError::NotANumber
    );
}

#[test]
fn from_bounds_rejects_shape_mismatch() {
    let lo = Matrix::zeros(2, 3);
    let hi = Matrix::zeros(3, 2);
    match IntervalMatrix::from_bounds(lo, hi).unwrap_err() {
        IntervalError::DimensionMismatch { lhs, rhs, .. } => {
            assert_eq!(lhs, (2, 3));
            assert_eq!(rhs, (3, 2));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
}

#[test]
fn from_bounds_defers_misordered_entries_to_repair() {
    // Entry-wise lo > hi is *not* a constructor error: the ISVD algorithms
    // routinely build mis-ordered intermediate factors and the paper defers
    // the fix to the average-replacement repair (supplementary Algorithm 3).
    let m = IntervalMatrix::from_bounds(
        Matrix::from_rows(&[vec![3.0]]),
        Matrix::from_rows(&[vec![1.0]]),
    )
    .unwrap();
    assert!(!m.is_proper());
    assert!(m.average_replacement().is_proper());
}

#[test]
fn isvd_config_rejects_rank_zero() {
    let m = small_interval_matrix(4, 5);
    match isvd(&m, &IsvdConfig::new(0)).unwrap_err() {
        IvmfError::InvalidConfig(msg) => assert!(msg.contains("rank"), "message: {msg}"),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn isvd_config_rejects_rank_above_min_dimension() {
    let m = small_interval_matrix(4, 5);
    match isvd(&m, &IsvdConfig::new(5)).unwrap_err() {
        IvmfError::InvalidConfig(msg) => {
            assert!(msg.contains("exceeds min(n, m)"), "message: {msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // rank == min(n, m) is the largest legal value.
    assert!(isvd(&m, &IsvdConfig::new(4)).is_ok());
}

#[test]
fn isvd_rejects_empty_input() {
    let m = IntervalMatrix::from_bounds(Matrix::zeros(0, 3), Matrix::zeros(0, 3)).unwrap();
    match isvd(&m, &IsvdConfig::new(1)).unwrap_err() {
        IvmfError::InvalidInput(msg) => assert!(msg.contains("non-empty"), "message: {msg}"),
        other => panic!("expected InvalidInput, got {other:?}"),
    }
}
