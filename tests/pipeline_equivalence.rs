//! Bitwise-equivalence and cache-accounting suite for the staged
//! decomposition pipeline: a batched `run_all` (shared-stage cache on) must
//! produce *exactly* the same factorizations as five standalone `isvd`
//! calls — the cache changes when a stage runs, never its arithmetic — and
//! the per-run accounting must report the sharing truthfully.

use ivmf_core::isvd::isvd;
use ivmf_core::pipeline::{run_all, run_all_batch, DecompPlan, Pipeline, StageId};
use ivmf_core::{DecompositionTarget, IntervalSvd, IsvdAlgorithm, IsvdConfig};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_interval::IntervalMatrix;
use ivmf_linalg::random::uniform_matrix;
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mirrors `ivmf_core::test_support::random_interval_matrix` (which is
/// `cfg(test)`-gated and invisible to integration tests); keep the two in
/// sync.
fn random_interval_matrix(seed: u64, n: usize, m: usize, span: f64) -> IntervalMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lo = uniform_matrix(&mut rng, n, m, 0.5, 4.0);
    let spans = Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..span));
    let hi = lo.add(&spans).unwrap();
    IntervalMatrix::from_bounds(lo, hi).unwrap()
}

/// Asserts two factorizations are bitwise identical (not approximately —
/// every f64 bit pattern must match).
fn assert_bitwise_equal(a: &IntervalSvd, b: &IntervalSvd, context: &str) {
    assert_eq!(a.target, b.target, "{context}: target differs");
    assert!(
        !a.u.has_non_finite() && !a.v.has_non_finite(),
        "{context}: non-finite factors"
    );
    assert_eq!(a.u, b.u, "{context}: U factor differs");
    assert_eq!(a.v, b.v, "{context}: V factor differs");
    assert_eq!(a.sigma, b.sigma, "{context}: core differs");
}

#[test]
fn run_all_matches_standalone_isvd_bitwise_for_every_algorithm_and_target() {
    let inputs = [
        random_interval_matrix(501, 14, 9, 1.5),
        random_interval_matrix(502, 9, 14, 0.5),
    ];
    for (mi, m) in inputs.iter().enumerate() {
        for target in DecompositionTarget::all() {
            let config = IsvdConfig::new(5).with_target(target);
            let batched = run_all(m, &config).expect("batched run");
            for (result, alg) in batched.iter().zip(IsvdAlgorithm::all()) {
                let standalone = isvd(m, &config.with_algorithm(alg)).expect("standalone run");
                assert_bitwise_equal(
                    &result.factors,
                    &standalone.factors,
                    &format!("matrix {mi}, {alg}, {target}"),
                );
            }
        }
    }
}

#[test]
fn run_all_matches_standalone_on_paper_shaped_synthetic_data() {
    // A paper-shaped (wide) synthetic matrix large enough to take the
    // midpoint–radius fast path in the Gram stage — the cache must be
    // transparent there too.
    let mut rng = SmallRng::seed_from_u64(7);
    let m = generate_uniform(
        &SyntheticConfig::paper_default().with_shape(30, 80),
        &mut rng,
    );
    let config = IsvdConfig::new(12);
    let batched = run_all(&m, &config).expect("batched run");
    for (result, alg) in batched.iter().zip(IsvdAlgorithm::all()) {
        let standalone = isvd(&m, &config.with_algorithm(alg)).expect("standalone run");
        assert_bitwise_equal(&result.factors, &standalone.factors, alg.name());
    }
}

#[test]
fn run_all_batch_matches_standalone_across_matrices() {
    let matrices: Vec<IntervalMatrix> = (0..3)
        .map(|i| random_interval_matrix(600 + i, 10, 7, 1.0))
        .collect();
    let config = IsvdConfig::new(4);
    let batch = run_all_batch(&matrices, &config).expect("batch run");
    assert_eq!(batch.len(), matrices.len());
    for (per_matrix, m) in batch.iter().zip(&matrices) {
        for (result, alg) in per_matrix.iter().zip(IsvdAlgorithm::all()) {
            let standalone = isvd(m, &config.with_algorithm(alg)).expect("standalone");
            assert_bitwise_equal(&result.factors, &standalone.factors, alg.name());
        }
    }
}

#[test]
fn batched_run_computes_gram_and_bound_eigens_at_most_once() {
    // Exact hit/miss accounting: keep the auto-snapshot knob out.
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(700, 12, 8, 1.0);
    let results = run_all(&m, &IsvdConfig::new(4)).expect("batched run");
    for stage in [
        StageId::IntervalGram,
        StageId::BoundEigenLo,
        StageId::BoundEigenHi,
        StageId::GramAlign,
        StageId::AlignedSolve,
    ] {
        let computes = results
            .iter()
            .flat_map(|r| r.stages.iter())
            .filter(|e| e.stage == stage && !e.cache_hit)
            .count();
        assert_eq!(computes, 1, "stage {stage} computed more than once");
    }
}

#[test]
fn second_algorithm_sharing_the_gram_reports_a_hit() {
    // Exact hit/miss accounting: keep the auto-snapshot knob out.
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(701, 10, 6, 1.0);
    let mut pipeline = Pipeline::new(&m, IsvdConfig::new(4)).expect("pipeline");

    // ISVD2 computes the Gram — all misses, no hits.
    let r2 = pipeline.run(IsvdAlgorithm::Isvd2).expect("ISVD2");
    assert_eq!(r2.timings.cache_hits, 0);
    assert_eq!(
        r2.timings.cache_misses as usize,
        DecompPlan::for_algorithm(IsvdAlgorithm::Isvd2).stages.len()
    );

    // ISVD3 shares Gram + both eigens + the ILSA alignment: 4 hits, and
    // the only computed stage is its aligned solve.
    let r3 = pipeline.run(IsvdAlgorithm::Isvd3).expect("ISVD3");
    assert_eq!(r3.timings.cache_hits, 4);
    assert_eq!(r3.timings.cache_misses, 1);
    let gram_event = r3
        .stages
        .iter()
        .find(|e| e.stage == StageId::IntervalGram)
        .expect("gram event");
    assert!(gram_event.cache_hit, "ISVD3 must reuse ISVD2's Gram");
}

#[test]
fn changed_config_fingerprint_reports_a_miss() {
    // Exact hit/miss accounting: keep the auto-snapshot knob out.
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    let m = random_interval_matrix(702, 10, 6, 1.0);
    let mut pipeline = Pipeline::new(&m, IsvdConfig::new(4)).expect("pipeline");
    pipeline.run(IsvdAlgorithm::Isvd2).expect("warm the cache");
    let cache = pipeline.into_cache();
    let warm_misses = cache.misses();

    // Same matrix, different rank → different per-stage fingerprint for
    // every rank-dependent stage, which all miss and recompute; only the
    // rank-independent interval Gram is allowed to survive the change.
    let mut changed =
        Pipeline::with_cache(&m, IsvdConfig::new(3), cache).expect("changed-config pipeline");
    let r = changed.run(IsvdAlgorithm::Isvd2).expect("ISVD2 at rank 3");
    assert_eq!(
        r.timings.cache_hits, 1,
        "only the rank-independent Gram may leak across configs"
    );
    assert_eq!(r.timings.cache_misses, 4);
    for event in &r.stages {
        assert_eq!(
            event.cache_hit,
            event.stage == StageId::IntervalGram,
            "unexpected cache behaviour for {}",
            event.stage
        );
    }
    assert_eq!(
        changed.cache().misses(),
        warm_misses + u64::from(r.timings.cache_misses)
    );

    // A changed matcher misses the ILSA stage while the matcher-free
    // stages survive.
    let cache = changed.into_cache();
    let greedy = IsvdConfig::new(3).with_matcher(ivmf_align::Matcher::Greedy);
    let mut rematched = Pipeline::with_cache(&m, greedy, cache).expect("matcher pipeline");
    let r = rematched.run(IsvdAlgorithm::Isvd2).expect("greedy ISVD2");
    assert_eq!(r.timings.cache_misses, 1, "only GramAlign recomputes");
}

#[test]
fn mixed_targets_share_stages_within_one_session() {
    // Exact hit/miss accounting: keep the auto-snapshot knob out.
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    // Stage outputs are target-independent: running the same algorithm
    // under a different target must be a full cache hit, and the produced
    // factors must still match the standalone path bitwise.
    let m = random_interval_matrix(703, 11, 7, 1.0);
    let config = IsvdConfig::new(4);
    let mut pipeline = Pipeline::new(&m, config).expect("pipeline");
    pipeline.run(IsvdAlgorithm::Isvd4).expect("warm");
    for target in DecompositionTarget::all() {
        let r = pipeline
            .run_with_target(IsvdAlgorithm::Isvd4, target)
            .expect("ISVD4 under target");
        assert_eq!(r.timings.cache_misses, 0, "{target} recomputed a stage");
        let standalone = isvd(
            &m,
            &config
                .with_algorithm(IsvdAlgorithm::Isvd4)
                .with_target(target),
        )
        .expect("standalone");
        assert_bitwise_equal(&r.factors, &standalone.factors, &format!("ISVD4 {target}"));
    }
}
