//! Acceptance suite for the end-to-end sparse CSR route: every Gram-route
//! layer must treat the CSR representation as a pure storage choice —
//! **bitwise identical** to the dense path, never approximately equal.
//!
//! * property-tested sparse-vs-dense equality of the streamed interval
//!   Gram and the streamed scalar matmuls across random power-law
//!   matrices, shard layouts (always including 1-row shards and
//!   shard == n) and both matmul sides,
//! * full ISVD0–4 through `run_all_sparse` equals the dense `run_all`
//!   bitwise for every decomposition target and ≥ 4 shard layouts,
//! * `IVMF_THREADS` (1 vs 4) never changes a bit of the sparse route,
//! * degenerate shapes: rows with no stored entries, an entirely empty
//!   shard, a single-nonzero matrix, and an all-zero matrix.

use ivmf_core::pipeline::run_all;
use ivmf_core::{run_all_sparse, DecompositionTarget, IsvdAlgorithm, IsvdConfig, IsvdResult};
use ivmf_data::synthetic::{generate_power_law, PowerLawConfig};
use ivmf_interval::{
    CsrIntervalShard, CsrShardedIntervalMatrix, IntervalMatrix, SparseStreamingIntervalGram,
};
use ivmf_linalg::{
    matmul_left_streamed, matmul_left_streamed_csr, matmul_streamed, matmul_streamed_csr, Matrix,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn power_law(seed: u64, rows: usize, cols: usize, nnz_per_row: usize) -> CsrIntervalShard {
    let mut rng = SmallRng::seed_from_u64(seed);
    generate_power_law(
        &PowerLawConfig::ratings_like(rows, cols).with_nnz_per_row(nnz_per_row),
        &mut rng,
    )
}

fn assert_results_bitwise(a: &[IsvdResult; 5], b: &[IsvdResult; 5], context: &str) {
    for ((ra, rb), alg) in a.iter().zip(b.iter()).zip(IsvdAlgorithm::all()) {
        assert!(
            !ra.factors.u.has_non_finite() && !ra.factors.v.has_non_finite(),
            "{context}: {alg} produced non-finite factors"
        );
        assert_eq!(ra.factors.u, rb.factors.u, "{context}: {alg} U differs");
        assert_eq!(ra.factors.v, rb.factors.v, "{context}: {alg} V differs");
        assert_eq!(
            ra.factors.sigma, rb.factors.sigma,
            "{context}: {alg} core differs"
        );
    }
}

fn sparse_gram(m: &CsrShardedIntervalMatrix) -> IntervalMatrix {
    let mut acc = SparseStreamingIntervalGram::new(m.rows(), m.cols());
    for shard in m.shards() {
        acc.push_shard(shard).unwrap();
    }
    acc.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sparse streamed interval Gram and both streamed scalar matmuls
    /// agree with their dense counterparts bit for bit, whatever the
    /// shard layout.
    #[test]
    fn sparse_kernels_match_dense_bitwise(
        rows in 1usize..40,
        cols in 1usize..16,
        nnz_per_row in 1usize..6,
        seed in 1u64..1000,
        shard_seed in 1u64..1000,
    ) {
        let csr = power_law(seed, rows, cols, nnz_per_row);
        let dense = csr.to_dense();

        let mut rng = SmallRng::seed_from_u64(shard_seed);
        let mut layouts = vec![1usize, rows];
        layouts.push(rng.gen_range(1..=rows));
        for shard_rows in layouts {
            let sharded = CsrShardedIntervalMatrix::from_csr(&csr, shard_rows).unwrap();
            let ctx = format!("rows={rows} cols={cols} shard_rows={shard_rows}");

            // Interval Gram.
            prop_assert_eq!(
                &sparse_gram(&sharded),
                &dense.interval_gram_streamed().unwrap(),
                "gram diverged: {}", &ctx
            );

            // Streamed matmuls of the lower bound, both sides.
            let rhs = Matrix::from_fn(cols, 3, |i, j| ((i * 3 + j) as f64).sin());
            let lhs = Matrix::from_fn(3, rows, |i, j| ((i * 7 + j) as f64).cos());
            prop_assert_eq!(
                &matmul_streamed_csr(csr.lo_shard(), &rhs).unwrap(),
                &matmul_streamed(dense.lo(), &rhs).unwrap(),
                "right matmul diverged: {}", &ctx
            );
            prop_assert_eq!(
                &matmul_left_streamed_csr(&lhs, csr.lo_shard()).unwrap(),
                &matmul_left_streamed(&lhs, dense.lo()).unwrap(),
                "left matmul diverged: {}", &ctx
            );
        }
    }
}

#[test]
fn sparse_run_all_matches_dense_for_every_target_and_layout() {
    let csr = power_law(42, 34, 12, 4);
    let dense = csr.to_dense();
    for target in DecompositionTarget::all() {
        let config = IsvdConfig::new(4).with_target(target);
        let reference = run_all(&dense, &config).unwrap();
        for shard_rows in [1usize, 5, 13, 34] {
            let sharded = CsrShardedIntervalMatrix::from_csr(&csr, shard_rows).unwrap();
            let results = run_all_sparse(&sharded, &config).unwrap();
            assert_results_bitwise(
                &results,
                &reference,
                &format!("target {target} shard_rows {shard_rows}"),
            );
        }
    }
}

#[test]
fn sparse_route_is_bitwise_invariant_across_thread_counts() {
    // Env mutation is contained in this one test; concurrent tests only
    // *read* the variable through kernels that are bitwise
    // thread-count-invariant.
    let csr = power_law(43, 29, 10, 5);
    let sharded = CsrShardedIntervalMatrix::from_csr(&csr, 6).unwrap();
    let config = IsvdConfig::new(4);
    let reference = run_all(&csr.to_dense(), &config).unwrap();
    let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
    for threads in ["1", "4"] {
        std::env::set_var(ivmf_par::THREADS_ENV, threads);
        let results = run_all_sparse(&sharded, &config).unwrap();
        assert_results_bitwise(&results, &reference, &format!("threads {threads}"));
    }
    match prev {
        Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
        None => std::env::remove_var(ivmf_par::THREADS_ENV),
    }
}

#[test]
fn degenerate_sparse_shapes_match_dense() {
    let config = IsvdConfig::new(2);

    // Rows with no stored entries interleaved with populated rows, cut so
    // one shard is entirely empty.
    let triplets = [
        (0usize, 1usize, 1.0, 2.0),
        (0, 3, 0.5, 0.75),
        (5, 0, 2.0, 3.0),
        (5, 4, 1.0, 1.0),
    ];
    let csr = CsrIntervalShard::from_triplets(6, 5, &triplets).unwrap();
    let dense = csr.to_dense();
    for shard_rows in [1usize, 2, 3, 6] {
        let sharded = CsrShardedIntervalMatrix::from_csr(&csr, shard_rows).unwrap();
        assert_results_bitwise(
            &run_all_sparse(&sharded, &config).unwrap(),
            &run_all(&dense, &config).unwrap(),
            &format!("empty-row matrix, shard_rows {shard_rows}"),
        );
    }

    // A single stored entry in the whole matrix.
    let single = CsrIntervalShard::from_triplets(7, 4, &[(3, 2, 1.5, 2.5)]).unwrap();
    let sharded = CsrShardedIntervalMatrix::from_csr(&single, 2).unwrap();
    assert_results_bitwise(
        &run_all_sparse(&sharded, &config).unwrap(),
        &run_all(&single.to_dense(), &config).unwrap(),
        "single-nonzero matrix",
    );

    // An all-zero matrix: no stored entries anywhere.
    let empty = CsrIntervalShard::from_triplets(5, 4, &[]).unwrap();
    assert_eq!(empty.nnz(), 0);
    let sharded = CsrShardedIntervalMatrix::from_csr(&empty, 2).unwrap();
    let sparse = run_all_sparse(&sharded, &config);
    let dense = run_all(&empty.to_dense(), &config);
    match (sparse, dense) {
        (Ok(s), Ok(d)) => assert_results_bitwise(&s, &d, "all-zero matrix"),
        (Err(_), Err(_)) => {} // both routes must agree even on rejection
        (s, d) => panic!(
            "sparse and dense disagree on the all-zero matrix: sparse ok={} dense ok={}",
            s.is_ok(),
            d.is_ok()
        ),
    }
}
