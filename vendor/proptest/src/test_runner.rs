//! Test-runner configuration and per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derives a deterministic RNG for one case of one named property, so a
/// failure report ("case N of test T") can be replayed exactly.
pub fn rng_for_case(test_name: &str, case: u32) -> SmallRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Announces the failing case when a property panics, so it can be replayed
/// via [`rng_for_case`] with the reported name and index.
pub struct CaseGuard {
    test_name: &'static str,
    case: u32,
}

impl CaseGuard {
    /// Arms the guard for one case of one named property.
    pub fn new(test_name: &'static str, case: u32) -> Self {
        CaseGuard { test_name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stub: property `{}` failed on case {}; replay its inputs with \
                 proptest::test_runner::rng_for_case({:?}, {})",
                self.test_name, self.case, self.test_name, self.case
            );
        }
    }
}
