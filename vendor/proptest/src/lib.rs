//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! It keeps the same test-authoring surface the workspace uses — the
//! [`proptest!`] macro with `#![proptest_config(...)]`, `pat in strategy`
//! parameters, range and tuple strategies, [`Strategy::prop_map`],
//! [`prop_assert!`] / [`prop_assert_eq!`] — but replaces proptest's
//! shrinking machinery with straightforward deterministic random sampling:
//! each test runs `cases` times with a per-case seeded RNG, and a failing
//! case reports its test name and case index on stderr so it can be
//! replayed through `test_runner::rng_for_case`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds; panics (failing the current case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that draws its inputs from the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let _guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                    let mut prop_rng = $crate::test_runner::rng_for_case(stringify!($name), case);
                    $( let $pat = $crate::Strategy::generate(&$strat, &mut prop_rng); )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($pat in $strat),+ ) $body
            )*
        }
    };
}
