//! Value-generation strategies: ranges, tuples and `prop_map`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values with `f`, mirroring proptest's
    /// `prop_map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields the same value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let strat = (1usize..5, 0.0f64..1.0, 10u64..=20);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert!((10..=20).contains(&c));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = SmallRng::seed_from_u64(4);
        let strat = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
