//! Exercises the `proptest!` macro surface end-to-end: case counts,
//! multi-parameter strategies, `prop_map`, and per-case determinism.

use std::sync::atomic::{AtomicU32, Ordering};

use proptest::prelude::*;

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

// No `#[test]` on this property: it is invoked directly below so the case
// count can be asserted without racing the parallel test harness.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn counting_property(_x in 0usize..10) {
        CASES_RUN.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn runs_exactly_the_configured_number_of_cases() {
    let before = CASES_RUN.load(Ordering::SeqCst);
    counting_property();
    assert_eq!(CASES_RUN.load(Ordering::SeqCst) - before, 24);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn multi_parameter_strategies_stay_in_bounds(
        a in 1usize..5,
        b in 0.0f64..1.0,
        (c, d) in (2u64..9, -3i32..=3).prop_map(|(c, d)| (c * 2, d)),
    ) {
        prop_assert!((1..5).contains(&a));
        prop_assert!((0.0..1.0).contains(&b));
        prop_assert!(c % 2 == 0 && (4..18).contains(&c));
        prop_assert!((-3..=3).contains(&d));
    }
}

#[test]
fn per_case_rngs_are_deterministic() {
    let mut a = proptest::test_runner::rng_for_case("some_test", 3);
    let mut b = proptest::test_runner::rng_for_case("some_test", 3);
    let s = (0usize..1000).generate(&mut a);
    assert_eq!(s, (0usize..1000).generate(&mut b));
}
