//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result
//! types so that downstream users can wire up real serialization, but no
//! code in the repository serializes anything yet and the build environment
//! cannot fetch the real crate. This stub keeps the derive sites compiling
//! by providing the two trait names as empty marker traits together with
//! stub derive macros (see `vendor/serde_derive`).
//!
//! Swapping in the real serde later is a one-line change in the workspace
//! `Cargo.toml`; no source file needs to change.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
