//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The real derive macros generate full (de)serialization code; this
//! workspace only uses the derives as declarations (no serialization
//! back-end is wired up offline), so the stand-in emits empty impls of the
//! marker traits defined by the vendored `serde` stub.
//!
//! Only plain, non-generic `struct`s and `enum`s are supported; anything
//! else fails the build loudly so a silent no-op can never mask a real
//! serialization need.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the deriving type, rejecting generic types.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "serde stub derive: generic type `{name}` is not supported; \
                                     write the impls by hand or extend vendor/serde_derive"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("serde stub derive: expected type name, found {other:?}"),
                }
            }
        }
    }
    panic!("serde stub derive: input is not a struct or enum")
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
