//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *small* slice of the rand
//! 0.8 API that the ivmf crates actually use:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::SmallRng`] (implemented as xoshiro256++ seeded via SplitMix64),
//! * `gen`, `gen_bool` and `gen_range` over half-open and inclusive ranges
//!   of the primitive float and integer types.
//!
//! The generator is deterministic for a given seed, which is all the
//! experiment harness requires; it makes no attempt to match the exact
//! stream of the real crate.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f64, f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (floats in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`; panics if the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let k: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn float_samples_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
