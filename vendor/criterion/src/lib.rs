//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! It mirrors the subset of the criterion 0.5 API used by the workspace's
//! benches (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`, `black_box`) and measures plain
//! wall-clock medians instead of criterion's full statistical machinery:
//! each benchmark is warmed up briefly, then timed over a fixed number of
//! samples and reported to stdout as `name ... median time/iter`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Registry of `(name, median)` pairs recorded by every benchmark run in
/// this process, in execution order. The real criterion persists results
/// under `target/criterion/`; this stand-in exposes them programmatically
/// instead so custom bench `main`s (e.g. the workspace's `linalg_kernels`
/// JSON emitter) can post-process measurements.
static MEASUREMENTS: Mutex<Vec<(String, Duration)>> = Mutex::new(Vec::new());

/// Returns a snapshot of every `(benchmark name, median time per
/// iteration)` recorded so far in this process.
pub fn recorded_measurements() -> Vec<(String, Duration)> {
    MEASUREMENTS.lock().expect("measurement registry").clone()
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly and records the median sample time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~20ms have elapsed to settle caches/branch
        // predictors, and estimate how many iterations fit in one sample.
        let warmup = Instant::now();
        let mut warm_iters: u32 = 0;
        while warmup.elapsed() < Duration::from_millis(20) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warmup.elapsed() / warm_iters.max(1);
        let iters_per_sample = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 10_000) as u32;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            times.push(start.elapsed() / iters_per_sample);
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        median: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "{name:<50} {:>12.3?}/iter (median of {samples})",
        bencher.median
    );
    MEASUREMENTS
        .lock()
        .expect("measurement registry")
        .push((name.to_string(), bencher.median));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with a shared input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_benchmark(&name, self.samples, |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.samples, f);
        self
    }

    /// Ends the group (reports are printed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a plain closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.to_string(), 10, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
