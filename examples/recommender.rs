//! Collaborative filtering with interval-valued ratings: compare PMF,
//! I-PMF and the paper's aligned AI-PMF on a MovieLens-like data set —
//! the Figure 10 pipeline in miniature.
//!
//! Run with: `cargo run --release -p ivmf-core --example recommender`

use ivmf_core::pmf::{aipmf, ipmf, pmf, PmfConfig};
use ivmf_data::ratings::{
    cf_interval_matrix, cf_scalar_matrix, movielens_like, MovieLensConfig, RatingDataset,
};
use ivmf_data::split::random_split;
use ivmf_eval::regression::rmse;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let config = MovieLensConfig::small();
    let dataset = movielens_like(&config, &mut rng);
    println!(
        "data: {} users x {} items, {} ratings (density {:.3})",
        dataset.n_users,
        dataset.n_items,
        dataset.len(),
        dataset.density()
    );

    // 80/20 train/test split over the observed ratings.
    let split = random_split(dataset.len(), 0.8, &mut rng);
    let train = RatingDataset {
        n_users: dataset.n_users,
        n_items: dataset.n_items,
        n_genres: dataset.n_genres,
        ratings: split.train.iter().map(|&i| dataset.ratings[i]).collect(),
        item_genres: dataset.item_genres.clone(),
    };
    let test: Vec<_> = split.test.iter().map(|&i| dataset.ratings[i]).collect();
    let targets: Vec<f64> = test.iter().map(|r| r.value).collect();
    println!(
        "train: {} ratings, test: {} ratings\n",
        train.len(),
        test.len()
    );

    let (scalar, scalar_obs) = cf_scalar_matrix(&train);
    let (interval, interval_obs) = cf_interval_matrix(&train, 0.5);

    let rank = 20;
    let pmf_config = PmfConfig::new(rank)
        .with_epochs(40)
        .with_learning_rate(0.01);

    let pmf_model = pmf(&scalar, &scalar_obs, &pmf_config).expect("PMF");
    let ipmf_model = ipmf(&interval, &interval_obs, &pmf_config).expect("I-PMF");
    let aipmf_model = aipmf(&interval, &interval_obs, &pmf_config).expect("AI-PMF");

    let eval = |name: &str, predictions: Vec<f64>| {
        let err = rmse(&predictions, &targets).expect("rmse");
        println!("{name:<8} test RMSE = {err:.4}");
    };
    eval(
        "PMF",
        test.iter()
            .map(|r| pmf_model.predict(r.user, r.item))
            .collect(),
    );
    eval(
        "I-PMF",
        test.iter()
            .map(|r| ipmf_model.predict(r.user, r.item))
            .collect(),
    );
    eval(
        "AI-PMF",
        test.iter()
            .map(|r| aipmf_model.predict(r.user, r.item))
            .collect(),
    );

    // Show a few interval predictions from the aligned model.
    println!("\nsample AI-PMF interval predictions (true rating in brackets):");
    for r in test.iter().take(5) {
        let (lo, hi) = aipmf_model.predict_interval(r.user, r.item);
        println!(
            "  user {:>4} item {:>4}: [{:.2}, {:.2}]  ({})",
            r.user, r.item, lo, hi, r.value
        );
    }
}
