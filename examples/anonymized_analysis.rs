//! Analyzing anonymized (generalized) data: shows that the interval-aware
//! ISVD4 retains more of the structure of privacy-generalized data than the
//! naive "average the intervals" baseline, across privacy levels.
//!
//! Run with: `cargo run --release -p ivmf-core --example anonymized_analysis`

use ivmf_core::accuracy::reconstruction_accuracy;
use ivmf_core::isvd::isvd;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::anonymize::{anonymize_matrix, PrivacyProfile};
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);
    // The "true" data a curator holds: 60 records x 40 attributes.
    let original = Matrix::from_fn(60, 40, |_, _| rng.gen_range(0.0..10.0));

    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "privacy", "ISVD0", "ISVD4-b", "mean span"
    );
    for profile in PrivacyProfile::paper_profiles() {
        // What an analyst receives: every value generalized to a bin.
        let published = anonymize_matrix(&original, 0.0, 10.0, profile, &mut rng);

        let rank = 20;
        let naive = isvd(
            &published,
            &IsvdConfig::new(rank).with_algorithm(IsvdAlgorithm::Isvd0),
        )
        .expect("ISVD0");
        let interval_aware = isvd(
            &published,
            &IsvdConfig::new(rank)
                .with_algorithm(IsvdAlgorithm::Isvd4)
                .with_target(DecompositionTarget::IntervalCore),
        )
        .expect("ISVD4");

        let naive_acc = reconstruction_accuracy(
            &published,
            &naive.factors.reconstruct().expect("reconstruction"),
        )
        .expect("accuracy")
        .harmonic_mean;
        let aware_acc = reconstruction_accuracy(
            &published,
            &interval_aware
                .factors
                .reconstruct()
                .expect("reconstruction"),
        )
        .expect("accuracy")
        .harmonic_mean;

        println!(
            "{:<16} {:>10.4} {:>10.4} {:>12.3}",
            profile.label(),
            naive_acc,
            aware_acc,
            published.mean_span()
        );
    }
    println!("\nHigher H-mean = the decomposition preserves more of the published interval data.");
    println!("ISVD4-b keeps its advantage as the generalization (interval width) grows.");
}
