//! Quickstart: decompose a small interval-valued matrix with every ISVD
//! strategy and compare reconstruction accuracies.
//!
//! Run with: `cargo run --release -p ivmf-core --example quickstart`

use ivmf_core::accuracy::reconstruction_accuracy;
use ivmf_core::isvd::isvd;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_interval::{Interval, IntervalMatrix};
use ivmf_linalg::Matrix;

fn main() {
    // An interval-valued matrix: each entry is a [lo, hi] range. Think of it
    // as sensor readings with per-cell uncertainty.
    let lo = Matrix::from_rows(&[
        vec![4.0, 1.0, 0.0, 2.0],
        vec![1.0, 3.0, 1.0, 0.5],
        vec![0.0, 1.0, 2.0, 1.0],
        vec![2.0, 0.5, 1.0, 3.0],
        vec![1.5, 2.0, 0.0, 1.0],
    ]);
    let spans = Matrix::from_fn(5, 4, |i, j| 0.2 + 0.1 * ((i + j) % 3) as f64);
    let hi = lo.add(&spans).expect("same shape");
    let m = IntervalMatrix::from_bounds(lo, hi).expect("valid bounds");

    println!(
        "input: {}x{} interval matrix, mean span {:.3}",
        m.rows(),
        m.cols(),
        m.mean_span()
    );
    println!(
        "entry (0,0) = {}",
        Interval::new(m.get_raw(0, 0).0, m.get_raw(0, 0).1).unwrap()
    );
    println!();

    // Decompose with every strategy at rank 3, option b (scalar factors +
    // interval core), and report the paper's harmonic-mean accuracy.
    println!("{:<10} {:>10} {:>12}", "method", "H-mean", "time (us)");
    for algorithm in IsvdAlgorithm::all() {
        let config = IsvdConfig::new(3)
            .with_algorithm(algorithm)
            .with_target(DecompositionTarget::IntervalCore);
        let result = isvd(&m, &config).expect("decomposition succeeds");
        let reconstruction = result
            .factors
            .reconstruct()
            .expect("reconstruction succeeds");
        let accuracy = reconstruction_accuracy(&m, &reconstruction).expect("same shape");
        println!(
            "{:<10} {:>10.4} {:>12.1}",
            algorithm.name(),
            accuracy.harmonic_mean,
            result.timings.total().as_secs_f64() * 1e6
        );
    }

    // Inspect the interval core of the best method.
    let config = IsvdConfig::new(3).with_algorithm(IsvdAlgorithm::Isvd4);
    let result = isvd(&m, &config).expect("ISVD4");
    println!("\nISVD4-b interval core (singular value ranges):");
    for (i, s) in result.factors.sigma.iter().enumerate() {
        println!("  sigma[{i}] = {s}");
    }
}
