//! Out-of-core sparse decomposition: a rating-matrix-shaped power-law
//! interval matrix is generated block by block, written to disk in the
//! sparse CSR **binary container** (`ivmf shards v1`: checksummed
//! length-prefixed records, bit-exact and a fraction of the text
//! format's parse cost), and decomposed with the Gram-route algorithms
//! (ISVD2–4) **without ever holding the matrix in memory** — at no point
//! does anything larger than one row block plus the `m × m` Gram
//! accumulators exist. The session wraps the reader in the env-driven
//! prefetcher (`IVMF_PREFETCH`, default double buffering), so the next
//! shard decodes on a background I/O thread while the current one folds
//! into the Gram — same bits, less wall-clock.
//!
//! Run with: `cargo run --release -p ivmf-bench --example sparse_out_of_core`
//!
//! Defaults stay small enough to finish in seconds. For the paper's
//! million-user scale, pass the shape on the command line (the working set
//! stays bounded; only disk and wall-clock grow):
//!
//! ```text
//! cargo run --release -p ivmf-bench --example sparse_out_of_core -- 1000000 10000 100
//! ```

use std::time::Instant;

use ivmf_core::{IsvdAlgorithm, IsvdConfig, Pipeline};
use ivmf_data::stream::{CsrShardReader, CsrShardWriter};
use ivmf_data::synthetic::{generate_power_law, PowerLawConfig};
use ivmf_env::ShardFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let cols: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let nnz_per_row: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let rank = 5;

    let path = std::env::temp_dir().join(format!("ivmf_out_of_core_{}.csr", std::process::id()));

    // Phase 1: stream the matrix onto disk, one row block at a time. Each
    // block is an independent power-law (Zipf column popularity) sample —
    // the shape of real rating data, where a few items collect most of the
    // ratings.
    let block_rows = 10_000.min(rows.max(1));
    let block_config = PowerLawConfig::ratings_like(block_rows, cols).with_nnz_per_row(nnz_per_row);
    let mut rng = SmallRng::seed_from_u64(7);
    let start = Instant::now();
    let mut writer = CsrShardWriter::create_with_format(&path, rows, cols, ShardFormat::Binary)
        .expect("create CSR file");
    let mut written = 0usize;
    let mut nnz = 0usize;
    while written < rows {
        let take = block_rows.min(rows - written);
        let config = if take == block_rows {
            block_config
        } else {
            PowerLawConfig::ratings_like(take, cols).with_nnz_per_row(nnz_per_row)
        };
        let block = generate_power_law(&config, &mut rng);
        nnz += block.nnz();
        writer.push_shard(&block).expect("append block");
        written += take;
    }
    writer.finish().expect("row accounting");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "generated {rows} x {cols} interval matrix: {nnz} stored entries \
         (density {:.4}%), {:.1} MiB on disk, {:.2?}",
        100.0 * nnz as f64 / (rows as f64 * cols as f64),
        bytes as f64 / (1024.0 * 1024.0),
        start.elapsed()
    );

    // Phase 2: decompose straight off the file. The reader hands the
    // pipeline one CSR shard at a time; the Gram-route algorithms fold each
    // shard into the sparse streaming accumulators and drop it.
    let config = IsvdConfig::new(rank);
    let reader = CsrShardReader::open(&path, 4096).expect("open CSR file");
    let mut session = Pipeline::new_streaming_csr_send(Box::new(reader), config).expect("session");
    println!("\n{:<8} {:>12} {:>14}", "method", "time", "sigma_1");
    for algorithm in [
        IsvdAlgorithm::Isvd2,
        IsvdAlgorithm::Isvd3,
        IsvdAlgorithm::Isvd4,
    ] {
        let start = Instant::now();
        let result = session.run(algorithm).expect("decomposition");
        let sigma = &result.factors.sigma[0];
        println!(
            "{:<8} {:>12.2?} [{:.3}, {:.3}]",
            format!("{algorithm}"),
            start.elapsed(),
            sigma.lo(),
            sigma.hi()
        );
    }
    println!(
        "\n(ISVD3/4 reuse ISVD2's interval Gram via the stage cache — only \
         the first algorithm pays the disk pass.)"
    );
    std::fs::remove_file(&path).ok();
}
