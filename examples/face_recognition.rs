//! Face recognition on interval-valued images: build an ORL-like corpus,
//! turn each image into interval pixels (neighbourhood uncertainty),
//! decompose with ISVD2-b and classify individuals with 1-NN over the
//! latent projection — the Figure 8b pipeline in miniature.
//!
//! Run with: `cargo run --release -p ivmf-core --example face_recognition`

use ivmf_core::isvd::isvd;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::faces::{generate_faces, interval_faces, FaceCorpusConfig};
use ivmf_data::split::stratified_split;
use ivmf_eval::classification::{knn1_interval, macro_f1};
use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn gather(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (oi, &si) in rows.iter().enumerate() {
        out.row_mut(oi).copy_from_slice(m.row(si));
    }
    out
}

fn gather_interval(m: &IntervalMatrix, rows: &[usize]) -> IntervalMatrix {
    IntervalMatrix::from_bounds(gather(m.lo(), rows), gather(m.hi(), rows)).expect("same shape")
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let config = FaceCorpusConfig::orl_like()
        .with_individuals(12)
        .with_resolution(16);
    println!(
        "corpus: {} individuals x {} images at {}x{} pixels",
        config.individuals, config.images_per_individual, config.resolution, config.resolution
    );

    let dataset = generate_faces(&config, &mut rng);
    let faces = interval_faces(&dataset, 1, 1.0);
    println!("interval pixels: mean span {:.4}\n", faces.mean_span());

    println!("{:>6} {:>10}", "rank", "1-NN F1");
    for rank in [5usize, 10, 20, 30] {
        // Decompose all images, project rows onto the latent space (U x Sigma).
        let isvd_config = IsvdConfig::new(rank)
            .with_algorithm(IsvdAlgorithm::Isvd2)
            .with_target(DecompositionTarget::IntervalCore);
        let result = isvd(&faces, &isvd_config).expect("ISVD2-b");
        let projection = result.factors.row_projection().expect("projection");

        // 50/50 split per individual, then interval 1-NN on the projection.
        let split = stratified_split(&dataset.labels, 0.5, &mut rng);
        let train_labels: Vec<usize> = split.train.iter().map(|&i| dataset.labels[i]).collect();
        let test_labels: Vec<usize> = split.test.iter().map(|&i| dataset.labels[i]).collect();
        let predictions = knn1_interval(
            &gather_interval(&projection, &split.train),
            &train_labels,
            &gather_interval(&projection, &split.test),
        )
        .expect("classification");
        let f1 = macro_f1(&predictions, &test_labels).expect("F1");
        println!("{rank:>6} {f1:>10.4}");
    }
    println!(
        "\nLow-rank interval projections retain enough identity information to recognize people."
    );
}
