//! Distributed interval Gram: the same tall sparse rating matrix folded
//! once by the 1-process streamed accumulator and once through the
//! `ivmf-distrib` coordinator fanning merge-group-aligned work units out
//! to N workers over loopback TCP. The merged result is **bitwise
//! identical** to the single-process fold — the demo asserts it entry by
//! entry — so the only thing the worker count changes is wall-clock.
//!
//! Run with: `cargo run --release -p ivmf-bench --example distributed_gram`
//!
//! Defaults stay small enough to finish in seconds. Pass the shape (and
//! worker count) on the command line to reproduce the benchmark scale:
//!
//! ```text
//! cargo run --release -p ivmf-bench --example distributed_gram -- 160000 1024 100 4
//! ```
//!
//! The same fan-out engages inside the full pipeline by exporting
//! `IVMF_WORKERS=4` (add `IVMF_WORKER_SPAWN=1` to use child processes
//! instead of in-process worker threads) — no code changes needed.

use std::time::Instant;

use ivmf_data::synthetic::{generate_power_law, PowerLawConfig};
use ivmf_distrib::{GramCoordinator, GramSpec, WorkerMode};
use ivmf_interval::{use_mr_gram, CsrShardedIntervalMatrix, SparseStreamingIntervalGram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let cols: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(512);
    let nnz_per_row: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let mut rng = SmallRng::seed_from_u64(42);
    let csr = generate_power_law(
        &PowerLawConfig::ratings_like(rows, cols).with_nnz_per_row(nnz_per_row),
        &mut rng,
    );
    let sharded = CsrShardedIntervalMatrix::from_csr(&csr, 4096).expect("shard");
    println!(
        "{rows} x {cols} interval matrix, {} stored entries (density {:.4}%)",
        csr.nnz(),
        100.0 * csr.nnz() as f64 / (rows as f64 * cols as f64)
    );

    // 1 process: the plain streamed sparse fold.
    let start = Instant::now();
    let mut acc = SparseStreamingIntervalGram::new(rows, cols);
    for shard in sharded.shards() {
        acc.push_shard(shard).expect("fold shard");
    }
    let local = acc.finish().expect("finish local");
    let local_time = start.elapsed();
    println!("1 process      : {local_time:.2?}");

    // N workers: the coordinator cuts the same shard stream into
    // merge-group-aligned units, ships them over the wire, and merges the
    // partial accumulators back in unit order. The kernel flavour is
    // decided here, once, from the *global* shape — workers cannot derive
    // it from the rows they happen to receive.
    let spec = GramSpec {
        cols,
        mid_rad: use_mr_gram(rows, cols),
        sparse: true,
    };
    let start = Instant::now();
    let mut coord = GramCoordinator::new(spec, workers, WorkerMode::Threads).expect("coordinator");
    for shard in sharded.shards() {
        coord.push_csr(shard).expect("dispatch shard");
    }
    let merged = coord.finish().expect("merge").finish().expect("finish");
    let distributed_time = start.elapsed();
    println!(
        "{workers} workers      : {distributed_time:.2?}  ({:.2}x)",
        local_time.as_secs_f64() / distributed_time.as_secs_f64().max(1e-9)
    );

    // The headline guarantee: not "close", *identical*. Every f64 of the
    // merged Gram carries the same bits as the single-process fold.
    assert_eq!(local.rows(), merged.rows());
    assert_eq!(local.cols(), merged.cols());
    let same_bits = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    assert!(
        same_bits(local.lo().as_slice(), merged.lo().as_slice()),
        "lower-bound bits differ from the 1-process fold"
    );
    assert!(
        same_bits(local.hi().as_slice(), merged.hi().as_slice()),
        "upper-bound bits differ from the 1-process fold"
    );
    println!("merged Gram is bitwise identical to the 1-process fold");
}
