//! Table 3: clustering-based classification accuracy (NMI) and execution
//! time using (i) the original scalar pixel vectors, (ii) the interval
//! pixel vectors, and (iii) the low-rank ISVD2-b (r = 20) projection — at
//! two image resolutions.

use std::time::Instant;

use ivmf_bench::table::fmt3;
use ivmf_bench::{ExperimentOptions, Table};
use ivmf_core::pipeline::Pipeline;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::faces::{generate_faces, interval_faces, FaceCorpusConfig};
use ivmf_eval::kmeans::{kmeans_interval, kmeans_scalar, KMeansConfig};
use ivmf_eval::nmi::nmi;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let opts = ExperimentOptions::from_env(0.35);
    let individuals = ((40.0 * opts.scale).round() as usize).clamp(6, 40);
    // Paper resolutions are 32x32 and 64x64; the scaled default uses 16/32.
    let resolutions: [usize; 2] = if opts.scale >= 0.99 {
        [32, 64]
    } else {
        [16, 32]
    };
    let rank = 20;
    println!("== Table 3: clustering accuracy and execution time ==");
    println!(
        "corpus: {individuals} individuals x 10 images; resolutions {resolutions:?}; rank {rank}\n"
    );

    let mut acc_table = Table::new(vec![
        "res.",
        "scalar vectors",
        "interval vectors",
        "ISVD2-b (r=20)",
    ]);
    let mut time_table = Table::new(vec![
        "res.",
        "scalar vectors (s)",
        "interval vectors (s)",
        "ISVD2-b decomp+k-means (s)",
    ]);

    for &res in &resolutions {
        let config = FaceCorpusConfig::orl_like()
            .with_individuals(individuals)
            .with_resolution(res);
        let mut rng = SmallRng::seed_from_u64(6000);
        let dataset = generate_faces(&config, &mut rng);
        let faces = interval_faces(&dataset, 1, 1.0);
        let k = config.individuals;
        let kmeans_cfg = KMeansConfig::new(k).with_restarts(3).with_seed(1);

        // (i) scalar pixel vectors.
        let t0 = Instant::now();
        let scalar_result = kmeans_scalar(&dataset.data, &kmeans_cfg).expect("scalar k-means");
        let scalar_time = t0.elapsed();
        let scalar_nmi = nmi(&scalar_result.assignments, &dataset.labels).unwrap_or(0.0);

        // (ii) interval pixel vectors.
        let t0 = Instant::now();
        let interval_result = kmeans_interval(&faces, &kmeans_cfg).expect("interval k-means");
        let interval_time = t0.elapsed();
        let interval_nmi = nmi(&interval_result.assignments, &dataset.labels).unwrap_or(0.0);

        // (iii) ISVD2-b (r = 20) projection, through the batched driver's
        // pipeline session (stage outputs would be shared with any further
        // algorithm evaluated on the same face matrix).
        let t0 = Instant::now();
        let isvd_cfg = IsvdConfig::new(rank.min(dataset.len().min(config.pixels())))
            .with_target(DecompositionTarget::IntervalCore);
        let result = Pipeline::new(&faces, isvd_cfg)
            .and_then(|mut p| p.run(IsvdAlgorithm::Isvd2))
            .expect("ISVD2-b");
        let decomp_time = t0.elapsed();
        let projection = result.factors.row_projection().expect("projection");
        let t1 = Instant::now();
        let isvd_result = kmeans_interval(&projection, &kmeans_cfg).expect("projected k-means");
        let cluster_time = t1.elapsed();
        let isvd_nmi = nmi(&isvd_result.assignments, &dataset.labels).unwrap_or(0.0);

        acc_table.add_row(vec![
            format!("{res} x {res}"),
            fmt3(scalar_nmi),
            fmt3(interval_nmi),
            fmt3(isvd_nmi),
        ]);
        time_table.add_row(vec![
            format!("{res} x {res}"),
            format!("{:.2}", scalar_time.as_secs_f64()),
            format!("{:.2}", interval_time.as_secs_f64()),
            format!(
                "{:.2} ({:.2}+{:.2})",
                (decomp_time + cluster_time).as_secs_f64(),
                decomp_time.as_secs_f64(),
                cluster_time.as_secs_f64()
            ),
        ]);
    }

    println!("-- accuracy (NMI, higher is better) --");
    println!("{}", acc_table.render());
    println!("-- execution time (seconds) --");
    println!("{}", time_table.render());
}
