//! Figure 7: reconstruction accuracy on anonymized (generalization-based)
//! interval data under the high / medium / low privacy mixtures, for target
//! ranks of 100%, 50% and 5% of the full rank.

use ivmf_bench::table::fmt3;
use ivmf_bench::{replicate_roster_means, AlgoSpec, ExperimentOptions, Table};
use ivmf_data::anonymize::{generate_anonymized, PrivacyProfile};

fn main() {
    let opts = ExperimentOptions::from_env(1.0);
    let (rows, cols) = (40usize, 250usize);
    let full_rank = rows.min(cols);
    let ranks = [
        ("100% rank", full_rank),
        ("50% rank", (full_rank / 2).max(1)),
        (
            "5% rank",
            ((full_rank as f64 * 0.05).round() as usize).max(1),
        ),
    ];
    println!(
        "== Figure 7: anonymized data ({rows}x{cols}), {} replicates ==\n",
        opts.replicates
    );

    for profile in PrivacyProfile::paper_profiles() {
        let weights = profile.weights();
        println!(
            "-- {} (L1:{:.0}%, L2:{:.0}%, L3:{:.0}%, L4:{:.0}%) --",
            profile.label(),
            weights[0] * 100.0,
            weights[1] * 100.0,
            weights[2] * 100.0,
            weights[3] * 100.0
        );
        let roster = AlgoSpec::per_target_roster();
        let mut header = vec!["method".to_string()];
        header.extend(ranks.iter().map(|(label, _)| label.to_string()));
        let mut table = Table::new(header);

        // Batched driver: per replicate and rank, the whole 13-method
        // roster runs through one shared-stage pipeline.
        let rank_values: Vec<usize> = ranks.iter().map(|&(_, r)| r).collect();
        let means = replicate_roster_means(
            opts.replicates,
            4000,
            |rng| generate_anonymized(rows, cols, profile, rng),
            &rank_values,
            &roster,
        );
        for (ai, spec) in roster.iter().enumerate() {
            let mut row = vec![spec.name()];
            row.extend(means.iter().map(|per_rank| fmt3(per_rank[ai])));
            table.add_row(row);
        }
        println!("{}", table.render());
    }
    println!("(The LP competitors score <= 0.01 H-mean on these scenarios; see exp_fig6.)");
}
