//! Table 2: option-b accuracy of ISVD0–ISVD4 while sweeping, one at a time,
//! interval density (a), interval intensity (b), matrix density (c), matrix
//! configuration (d) and target rank (e) around the default synthetic
//! configuration.

use ivmf_bench::table::fmt3;
use ivmf_bench::{replicate_roster_means, AlgoSpec, ExperimentOptions, Table};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};

fn sweep(
    title: &str,
    row_label: &str,
    cases: &[(String, SyntheticConfig, usize)],
    opts: &ExperimentOptions,
) {
    println!("-- {title} --");
    let roster = AlgoSpec::table2_roster();
    let mut header: Vec<String> = vec![row_label.to_string()];
    header.extend(roster.iter().map(|s| s.name()));
    let mut table = Table::new(header);

    for (label, config, rank) in cases {
        // Batched driver: each replicate evaluates the whole roster through
        // one shared-stage pipeline (the interval Gram and the bound
        // eigendecompositions are computed once per replicate, not once per
        // algorithm).
        let means = replicate_roster_means(
            opts.replicates,
            3000,
            |rng| generate_uniform(config, rng),
            &[*rank],
            &roster,
        );
        let mut row = vec![label.clone()];
        row.extend(means[0].iter().map(|&s| fmt3(s)));
        table.add_row(row);
    }
    println!("{}", table.render());
}

fn main() {
    let opts = ExperimentOptions::from_env(1.0);
    let base = SyntheticConfig::paper_default();
    let rank = base.default_rank();
    println!("== Table 2: option-b accuracy under varying parameters ==");
    println!("{} replicates per cell\n", opts.replicates);

    // (a) Varying interval densities.
    let cases: Vec<_> = [0.10, 0.25, 0.75, 1.0]
        .iter()
        .map(|&d| {
            (
                format!("{:.0}%", d * 100.0),
                base.with_interval_density(d),
                rank,
            )
        })
        .collect();
    sweep(
        "Table 2(a): varying interval densities",
        "int. density",
        &cases,
        &opts,
    );

    // (b) Varying interval intensities.
    let cases: Vec<_> = [0.10, 0.25, 0.75, 1.0]
        .iter()
        .map(|&i| {
            (
                format!("{:.0}%", i * 100.0),
                base.with_interval_intensity(i),
                rank,
            )
        })
        .collect();
    sweep(
        "Table 2(b): varying interval intensities",
        "int. intensity",
        &cases,
        &opts,
    );

    // (c) Varying matrix densities (fraction of zero entries).
    let cases: Vec<_> = [0.0, 0.5, 0.9]
        .iter()
        .map(|&z| {
            (
                format!("{:.0}%", z * 100.0),
                base.with_zero_fraction(z),
                rank,
            )
        })
        .collect();
    sweep(
        "Table 2(c): varying matrix densities (0-values)",
        "mat. density",
        &cases,
        &opts,
    );

    // (d) Varying matrix configurations.
    let shapes = [
        (25usize, 400usize),
        (40, 250),
        (250, 40),
        (400, 250),
        (250, 400),
    ];
    let cases: Vec<_> = shapes
        .iter()
        .map(|&(r, c)| {
            let shape_cfg = base.with_shape(r, c);
            (format!("{r}-by-{c}"), shape_cfg, rank.min(r.min(c)))
        })
        .collect();
    sweep(
        "Table 2(d): varying matrix configurations",
        "matrix conf.",
        &cases,
        &opts,
    );

    // (e) Varying target ranks.
    let cases: Vec<_> = [5usize, 10, 20, 40]
        .iter()
        .map(|&r| (format!("{r}"), base, r.min(base.rows.min(base.cols))))
        .collect();
    sweep("Table 2(e): varying target ranks", "rank", &cases, &opts);

    println!(
        "note: the LP class of competitors is evaluated in exp_fig6; on these scenarios it is \
         far below every ISVD variant, matching the paper's finding."
    );
}
