//! Figure 6: accuracy (Θ_HM) and execution-time breakdown of every
//! decomposition strategy on the default synthetic configuration.
//!
//! Figure 6a compares ISVD1–4 under targets a/b/c, ISVD0, and the LP
//! competitor; Figure 6b breaks the execution time of each ISVD pipeline
//! into preprocessing / decomposition / alignment / renormalization.
//!
//! Every replicate evaluates the whole roster through one shared-stage
//! pipeline session (each common stage computed once), and the
//! per-algorithm breakdown is **reconstructed from the stage event trace**
//! (`ivmf_bench::evaluate_roster_breakdown`): a cache-served stage is
//! charged its one computed duration, so the table reports what a
//! sequential per-algorithm evaluation would measure — the paper's
//! semantics — without timing anything twice.

use ivmf_bench::table::{fmt3, fmt_ms};
use ivmf_bench::{
    evaluate_roster_breakdown, standalone_equivalent_timings, AlgoSpec, ExperimentOptions, Table,
};
use ivmf_core::pipeline::run_all;
use ivmf_core::timing::StageTimings;
use ivmf_core::IsvdConfig;
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let opts = ExperimentOptions::from_env(1.0);
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    println!("== Figure 6: default synthetic configuration ==");
    println!(
        "config: {}x{}, rank {rank}, {} replicates\n",
        config.rows, config.cols, opts.replicates
    );

    let roster = AlgoSpec::figure6_roster();
    let mut accuracy = vec![Vec::new(); roster.len()];
    let mut timings = vec![StageTimings::default(); roster.len()];
    let mut totals = vec![std::time::Duration::ZERO; roster.len()];

    for rep in 0..opts.replicates {
        let mut rng = SmallRng::seed_from_u64(2000 + rep as u64);
        let m = generate_uniform(&config, &mut rng);
        for (idx, outcome) in evaluate_roster_breakdown(&m, rank, &roster)
            .into_iter()
            .enumerate()
        {
            accuracy[idx].push(outcome.harmonic_mean);
            timings[idx].accumulate(&outcome.timings);
            totals[idx] += outcome.total_time;
        }
    }

    println!("-- Figure 6a: reconstruction accuracy (harmonic mean, higher is better) --");
    let mut acc_table = Table::new(vec!["method", "H-mean"]);
    for (idx, spec) in roster.iter().enumerate() {
        acc_table.add_row(vec![
            spec.name(),
            fmt3(ivmf_bench::runner::mean(&accuracy[idx])),
        ]);
    }
    println!("{}", acc_table.render());

    println!("-- Figure 6b: execution-time breakdown (ms, averaged per run) --");
    let mut time_table = Table::new(vec![
        "method",
        "preprocessing",
        "decomposition",
        "alignment",
        "renormalization",
        "total",
    ]);
    for (idx, spec) in roster.iter().enumerate() {
        if matches!(spec, AlgoSpec::Lp(_)) {
            continue; // The LP competitor has no staged pipeline.
        }
        let avg = timings[idx].divide(opts.replicates as u32);
        time_table.add_row(vec![
            spec.name(),
            fmt_ms(avg.preprocessing),
            fmt_ms(avg.decomposition),
            fmt_ms(avg.alignment),
            fmt_ms(avg.renormalization),
            fmt_ms(totals[idx] / opts.replicates as u32),
        ]);
    }
    println!("{}", time_table.render());
    println!(
        "(Per-algorithm timings are standalone-equivalent: reconstructed from the shared \
         StageTimings event trace, so every algorithm is charged all of its own stages — \
         matching the paper's per-algorithm breakdown — while each stage runs only once.)"
    );

    // Shared-stage bonus: the batched driver evaluates all five ISVD
    // algorithms through one stage cache, computing the interval Gram and
    // the bound eigendecompositions exactly once. The sequential-equivalent
    // cost comes from the same event trace instead of a second timed loop.
    let mut rng = SmallRng::seed_from_u64(2000);
    let m = generate_uniform(&config, &mut rng);
    let t0 = std::time::Instant::now();
    let batched = run_all(&m, &IsvdConfig::new(rank)).expect("batched ISVD");
    let batched_time = t0.elapsed();
    let sequential_equivalent: std::time::Duration = standalone_equivalent_timings(&batched)
        .iter()
        .map(StageTimings::total)
        .sum();
    let hits: u32 = batched.iter().map(|r| r.timings.cache_hits).sum();
    let misses: u32 = batched.iter().map(|r| r.timings.cache_misses).sum();
    println!(
        "-- batched driver (shared-stage cache, identical outputs) --\n\
         sequential-equivalent 5-algorithm total: {}; batched run_all: {} ({:.2}x); \
         stage cache: {hits} hits / {misses} misses",
        fmt_ms(sequential_equivalent),
        fmt_ms(batched_time),
        sequential_equivalent.as_secs_f64() / batched_time.as_secs_f64().max(1e-12),
    );
}
