//! Figure 8: face-analysis tasks on the ORL-like corpus —
//! (a) reconstruction RMSE, (b) 1-NN classification F1, (c) k-means
//! clustering NMI, as functions of the decomposition rank, comparing the
//! ISVD family against the NMF / I-NMF baselines.
//!
//! The full ORL-sized run (40 people × 10 images at 32×32) is obtained with
//! `IVMF_SCALE=1`; the default scale uses a reduced corpus so the whole
//! figure regenerates in well under a minute.

use ivmf_bench::table::fmt3;
use ivmf_bench::{ExperimentOptions, Table};
use ivmf_core::isvd::isvd;
use ivmf_core::nmf::{interval_nmf, nmf, NmfConfig};
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::faces::{generate_faces, interval_faces, FaceCorpusConfig};
use ivmf_data::split::stratified_split;
use ivmf_eval::classification::{knn1_interval, knn1_scalar, macro_f1};
use ivmf_eval::kmeans::{kmeans_interval, kmeans_scalar, KMeansConfig};
use ivmf_eval::nmi::nmi;
use ivmf_eval::regression::matrix_rmse;
use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The feature representation a method provides for downstream tasks.
enum Features {
    Scalar(Matrix),
    Interval(IntervalMatrix),
}

struct MethodOutput {
    name: &'static str,
    /// Midpoint reconstruction of the pixel matrix.
    reconstruction: Matrix,
    /// Row features used for classification / clustering (`U × Σ` for the
    /// SVD family, `U` for the NMF family, per Section 6.1.2).
    features: Features,
}

fn run_methods(faces: &IntervalMatrix, rank: usize, seed: u64) -> Vec<MethodOutput> {
    let mut out = Vec::new();

    // NMF / I-NMF baselines on the midpoint / interval pixel matrices.
    let nmf_cfg = NmfConfig::new(rank).with_max_iters(120).with_seed(seed);
    if let Ok(model) = nmf(&faces.mid(), &nmf_cfg) {
        out.push(MethodOutput {
            name: "NMF",
            reconstruction: model.reconstruct().expect("NMF reconstruction"),
            features: Features::Scalar(model.u.clone()),
        });
    }
    if let Ok(model) = interval_nmf(faces, &nmf_cfg) {
        out.push(MethodOutput {
            name: "I-NMF",
            reconstruction: model.reconstruct().expect("I-NMF reconstruction").mid(),
            features: Features::Scalar(model.u.clone()),
        });
    }

    // ISVD family.
    let specs: [(&'static str, IsvdAlgorithm, DecompositionTarget); 6] = [
        ("ISVD0", IsvdAlgorithm::Isvd0, DecompositionTarget::Scalar),
        (
            "ISVD1-b",
            IsvdAlgorithm::Isvd1,
            DecompositionTarget::IntervalCore,
        ),
        (
            "ISVD2-b",
            IsvdAlgorithm::Isvd2,
            DecompositionTarget::IntervalCore,
        ),
        (
            "ISVD3-b",
            IsvdAlgorithm::Isvd3,
            DecompositionTarget::IntervalCore,
        ),
        (
            "ISVD4-b",
            IsvdAlgorithm::Isvd4,
            DecompositionTarget::IntervalCore,
        ),
        ("ISVD4-c", IsvdAlgorithm::Isvd4, DecompositionTarget::Scalar),
    ];
    for (name, alg, target) in specs {
        let config = IsvdConfig::new(rank)
            .with_algorithm(alg)
            .with_target(target);
        if let Ok(result) = isvd(faces, &config) {
            let reconstruction = result
                .factors
                .reconstruct()
                .map(|r| r.mid())
                .unwrap_or_else(|_| Matrix::zeros(faces.rows(), faces.cols()));
            let features = match result.factors.row_projection() {
                Ok(proj) if !proj.is_scalar() => Features::Interval(proj),
                Ok(proj) => Features::Scalar(proj.mid()),
                Err(_) => Features::Scalar(Matrix::zeros(faces.rows(), rank)),
            };
            out.push(MethodOutput {
                name,
                reconstruction,
                features,
            });
        }
    }
    out
}

fn classify(features: &Features, labels: &[usize], seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let split = stratified_split(labels, 0.5, &mut rng);
    let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
    let test_labels: Vec<usize> = split.test.iter().map(|&i| labels[i]).collect();
    let predictions = match features {
        Features::Scalar(m) => {
            let train = gather_rows_scalar(m, &split.train);
            let test = gather_rows_scalar(m, &split.test);
            knn1_scalar(&train, &train_labels, &test)
        }
        Features::Interval(m) => {
            let train = gather_rows_interval(m, &split.train);
            let test = gather_rows_interval(m, &split.test);
            knn1_interval(&train, &train_labels, &test)
        }
    };
    predictions
        .and_then(|p| macro_f1(&p, &test_labels))
        .unwrap_or(0.0)
}

fn cluster(features: &Features, labels: &[usize], k: usize, seed: u64) -> f64 {
    let config = KMeansConfig::new(k).with_seed(seed).with_restarts(3);
    let assignments = match features {
        Features::Scalar(m) => kmeans_scalar(m, &config).map(|r| r.assignments),
        Features::Interval(m) => kmeans_interval(m, &config).map(|r| r.assignments),
    };
    assignments.and_then(|a| nmi(&a, labels)).unwrap_or(0.0)
}

fn gather_rows_scalar(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (oi, &si) in rows.iter().enumerate() {
        out.row_mut(oi).copy_from_slice(m.row(si));
    }
    out
}

fn gather_rows_interval(m: &IntervalMatrix, rows: &[usize]) -> IntervalMatrix {
    IntervalMatrix::from_bounds(
        gather_rows_scalar(m.lo(), rows),
        gather_rows_scalar(m.hi(), rows),
    )
    .expect("same shape")
}

fn main() {
    let opts = ExperimentOptions::from_env(0.4);
    // Scale the corpus: IVMF_SCALE=1 gives the ORL-sized 40x10 @ 32x32 run.
    let individuals = ((40.0 * opts.scale).round() as usize).clamp(6, 40);
    let resolution = if opts.scale >= 0.99 { 32 } else { 16 };
    let config = FaceCorpusConfig::orl_like()
        .with_individuals(individuals)
        .with_resolution(resolution);
    let ranks: Vec<usize> = if opts.scale >= 0.99 {
        vec![10, 50, 100, 200]
    } else {
        vec![5, 10, 20, 40]
    };
    println!("== Figure 8: ORL-like face corpus ==");
    println!(
        "corpus: {} individuals x {} images at {}x{}; ranks {:?}; {} replicate(s)\n",
        config.individuals,
        config.images_per_individual,
        resolution,
        resolution,
        ranks,
        opts.replicates.min(3)
    );

    let replicates = opts.replicates.min(3);
    let mut recon = Table::new(
        std::iter::once("rank".to_string())
            .chain(
                [
                    "NMF", "I-NMF", "ISVD0", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b", "ISVD4-c",
                ]
                .map(String::from),
            )
            .collect::<Vec<_>>(),
    );
    let mut class = recon.clone();
    let mut clust = recon.clone();

    for &rank in &ranks {
        let mut rmse_acc = std::collections::HashMap::new();
        let mut f1_acc = std::collections::HashMap::new();
        let mut nmi_acc = std::collections::HashMap::new();
        for rep in 0..replicates {
            let mut rng = SmallRng::seed_from_u64(5000 + rep as u64);
            let dataset = generate_faces(&config, &mut rng);
            let faces = interval_faces(&dataset, 1, 1.0);
            let rank = rank.min(dataset.len().min(config.pixels()));
            for method in run_methods(&faces, rank, 100 + rep as u64) {
                let rmse = matrix_rmse(&dataset.data, &method.reconstruction).unwrap_or(f64::NAN);
                let f1 = classify(&method.features, &dataset.labels, 200 + rep as u64);
                let q = cluster(
                    &method.features,
                    &dataset.labels,
                    config.individuals,
                    300 + rep as u64,
                );
                *rmse_acc.entry(method.name).or_insert(0.0) += rmse;
                *f1_acc.entry(method.name).or_insert(0.0) += f1;
                *nmi_acc.entry(method.name).or_insert(0.0) += q;
            }
        }
        let order = [
            "NMF", "I-NMF", "ISVD0", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b", "ISVD4-c",
        ];
        let collect = |acc: &std::collections::HashMap<&str, f64>| -> Vec<String> {
            order
                .iter()
                .map(|name| {
                    acc.get(name)
                        .map(|v| fmt3(v / replicates as f64))
                        .unwrap_or_else(|| "-".to_string())
                })
                .collect()
        };
        let mut r1 = vec![rank.to_string()];
        r1.extend(collect(&rmse_acc));
        recon.add_row(r1);
        let mut r2 = vec![rank.to_string()];
        r2.extend(collect(&f1_acc));
        class.add_row(r2);
        let mut r3 = vec![rank.to_string()];
        r3.extend(collect(&nmi_acc));
        clust.add_row(r3);
    }

    println!("-- Figure 8a: reconstruction RMSE (lower is better) --");
    println!("{}", recon.render());
    println!("-- Figure 8b: 1-NN classification macro-F1 (higher is better) --");
    println!("{}", class.render());
    println!("-- Figure 8c: k-means clustering NMI (higher is better) --");
    println!("{}", clust.render());
}
