//! Figure 9: reconstruction accuracy on the social-media-like interval
//! rating data (Ciao-like, Epinions-like, MovieLens-like user–genre
//! matrices) at 100%, 50% and 5% of the full rank, for every algorithm ×
//! target combination.

use ivmf_bench::table::fmt3;
use ivmf_bench::{evaluate_roster_with_cache, AlgoSpec, ExperimentOptions, Table};
use ivmf_core::pipeline::StageCache;
use ivmf_data::ratings::{
    category_ratings_like, movielens_like, user_genre_interval_matrix, CategoryRatingsConfig,
    MovieLensConfig,
};
use ivmf_interval::IntervalMatrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn rank_points(full: usize) -> [(String, usize); 3] {
    [
        (format!("100% rank (={full})"), full),
        (
            format!("50% rank (={})", (full / 2).max(1)),
            (full / 2).max(1),
        ),
        (
            format!(
                "5% rank (={})",
                ((full as f64 * 0.05).round() as usize).max(1)
            ),
            ((full as f64 * 0.05).round() as usize).max(1),
        ),
    ]
}

fn report(name: &str, m: &IntervalMatrix, full_rank: usize) {
    println!(
        "-- {name}: {} users x {} categories, matrix density {:.2}, interval density {:.2} --",
        m.rows(),
        m.cols(),
        1.0 - m.zero_fraction(),
        m.interval_density()
    );
    let ranks = rank_points(full_rank.min(m.rows().min(m.cols())));
    let roster = AlgoSpec::per_target_roster();
    let mut header = vec!["method".to_string()];
    header.extend(ranks.iter().map(|(label, _)| label.clone()));
    let mut table = Table::new(header);
    // Batched driver: per rank, all 13 algorithm × target combinations run
    // through one shared-stage pipeline on the same matrix, and the cache
    // is threaded across the rank sweep so the rank-independent interval
    // Gram is computed once per data set.
    let mut cache = StageCache::new();
    let per_rank: Vec<Vec<f64>> = ranks
        .iter()
        .map(|&(_, rank)| {
            let (outcomes, reused) =
                evaluate_roster_with_cache(m, rank, &roster, std::mem::take(&mut cache));
            cache = reused;
            outcomes.iter().map(|o| o.harmonic_mean).collect()
        })
        .collect();
    for (si, spec) in roster.iter().enumerate() {
        let mut row = vec![spec.name()];
        row.extend(per_rank.iter().map(|outcomes| fmt3(outcomes[si])));
        table.add_row(row);
    }
    println!("{}", table.render());
}

fn main() {
    let opts = ExperimentOptions::from_env(0.1);
    println!("== Figure 9: social-media-like interval rating data ==");
    println!(
        "scale {} (user counts are scaled; category structure is preserved)\n",
        opts.scale
    );
    let mut rng = SmallRng::seed_from_u64(7000);

    // Ciao-like: 7K users x 28 categories in the paper.
    let ciao_users = ((7000.0 * opts.scale).round() as usize).max(200);
    let ciao = category_ratings_like(&CategoryRatingsConfig::ciao_like(ciao_users), &mut rng);
    report("Ciao-like", &ciao, 28);

    // Epinions-like: 22K users x 27 categories in the paper.
    let epinions_users = ((22_000.0 * opts.scale).round() as usize).max(200);
    let epinions = category_ratings_like(
        &CategoryRatingsConfig::epinions_like(epinions_users),
        &mut rng,
    );
    report("Epinions-like", &epinions, 27);

    // MovieLens-like user x genre range matrix (full rank 19).
    let ml_config = MovieLensConfig::full().scaled(opts.scale.max(0.1));
    let dataset = movielens_like(&ml_config, &mut rng);
    let ml = user_genre_interval_matrix(&dataset);
    report("MovieLens-like (user x genre)", &ml, dataset.n_genres);

    println!("(The LP competitors score <= 0.01 H-mean on these data sets; see exp_fig6.)");
}
