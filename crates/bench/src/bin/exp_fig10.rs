//! Figure 10: collaborative-filtering RMSE of PMF, I-PMF and the proposed
//! AI-PMF on the MovieLens-like data set, as a function of the
//! decomposition rank.

use ivmf_bench::table::fmt3;
use ivmf_bench::{ExperimentOptions, Table};
use ivmf_core::pmf::{aipmf, ipmf, pmf, PmfConfig};
use ivmf_data::ratings::{movielens_like, MovieLensConfig, Rating, RatingDataset};
use ivmf_data::split::random_split;
use ivmf_eval::regression::rmse;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn subset(dataset: &RatingDataset, indices: &[usize]) -> RatingDataset {
    RatingDataset {
        n_users: dataset.n_users,
        n_items: dataset.n_items,
        n_genres: dataset.n_genres,
        ratings: indices.iter().map(|&i| dataset.ratings[i]).collect(),
        item_genres: dataset.item_genres.clone(),
    }
}

fn main() {
    let opts = ExperimentOptions::from_env(0.15);
    let config = MovieLensConfig::full().scaled(opts.scale);
    let alpha = 0.5;
    let epochs = 30;
    let ranks: Vec<usize> = vec![10, 20, 40, 60, 80, 100];
    println!("== Figure 10: collaborative filtering (MovieLens-like) ==");
    println!(
        "data: {} users x {} items, {} ratings; interval scale alpha = {alpha}; {} epochs\n",
        config.n_users, config.n_items, config.n_ratings, epochs
    );

    let mut rng = SmallRng::seed_from_u64(8000);
    let dataset = movielens_like(&config, &mut rng);
    let split = random_split(dataset.len(), 0.8, &mut rng);
    let train = subset(&dataset, &split.train);
    let test: Vec<Rating> = split.test.iter().map(|&i| dataset.ratings[i]).collect();
    let targets: Vec<f64> = test.iter().map(|r| r.value).collect();

    // Training inputs built from the training ratings only.
    let (scalar_matrix, scalar_observed) = ivmf_data::ratings::cf_scalar_matrix(&train);
    let (interval_matrix, interval_observed) =
        ivmf_data::ratings::cf_interval_matrix(&train, alpha);

    let mut table = Table::new(vec!["rank", "PMF", "I-PMF", "AI-PMF"]);
    for &rank in &ranks {
        let pmf_config = PmfConfig::new(rank)
            .with_epochs(epochs)
            .with_learning_rate(0.01);

        let pmf_model = pmf(&scalar_matrix, &scalar_observed, &pmf_config).expect("PMF training");
        let pmf_pred: Vec<f64> = test
            .iter()
            .map(|r| pmf_model.predict(r.user, r.item))
            .collect();

        let ipmf_model =
            ipmf(&interval_matrix, &interval_observed, &pmf_config).expect("I-PMF training");
        let ipmf_pred: Vec<f64> = test
            .iter()
            .map(|r| ipmf_model.predict(r.user, r.item))
            .collect();

        let aipmf_model =
            aipmf(&interval_matrix, &interval_observed, &pmf_config).expect("AI-PMF training");
        let aipmf_pred: Vec<f64> = test
            .iter()
            .map(|r| aipmf_model.predict(r.user, r.item))
            .collect();

        table.add_row(vec![
            rank.to_string(),
            fmt3(rmse(&pmf_pred, &targets).unwrap_or(f64::NAN)),
            fmt3(rmse(&ipmf_pred, &targets).unwrap_or(f64::NAN)),
            fmt3(rmse(&aipmf_pred, &targets).unwrap_or(f64::NAN)),
        ]);
    }

    println!("-- test RMSE (lower is better) --");
    println!("{}", table.render());
}
