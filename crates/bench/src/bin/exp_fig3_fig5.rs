//! Figures 3 & 5: cosine similarity between the matched minimum/maximum
//! latent vectors — before alignment, after ILSA, and after ISVD4's
//! recomputation of the right factor.
//!
//! The paper reports these curves averaged over 100 random matrices of the
//! default synthetic configuration (40 × 250, 100% interval density and
//! intensity, rank 20); higher cosine = more precise interval latent space.

use ivmf_align::cosine::matched_cosines;
use ivmf_bench::table::fmt3;
use ivmf_bench::{ExperimentOptions, Table};
use ivmf_core::pipeline::Pipeline;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let opts = ExperimentOptions::from_env(1.0);
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    println!("== Figures 3 & 5: min/max latent vector alignment ==");
    println!(
        "config: {}x{}, interval density {:.0}%, intensity {:.0}%, rank {rank}, {} replicates\n",
        config.rows,
        config.cols,
        config.interval_density * 100.0,
        config.interval_intensity * 100.0,
        opts.replicates
    );

    let mut before = vec![0.0; rank];
    let mut after_align = vec![0.0; rank];
    let mut after_recompute_v = vec![0.0; rank];
    let mut u_after_solve = vec![0.0; rank];

    for rep in 0..opts.replicates {
        let mut rng = SmallRng::seed_from_u64(1000 + rep as u64);
        let m = generate_uniform(&config, &mut rng);

        // One batched pipeline session per replicate: the bound SVDs and
        // the ILSA alignment are pipeline stages (shared with any ISVD1
        // run), and ISVD4 runs against the same stage cache.
        let mut pipeline = Pipeline::new(
            &m,
            IsvdConfig::new(rank).with_target(DecompositionTarget::IntervalAll),
        )
        .expect("pipeline session");

        // Figure 3: independent bound SVDs, before vs after ILSA.
        let svds = pipeline.bound_svds().expect("bound SVD stage");
        for (i, c) in matched_cosines(&svds.lo.v, &svds.hi.v).iter().enumerate() {
            before[i] += c.abs();
        }
        let alignment = pipeline.svd_alignment().expect("SVD alignment stage");
        let aligned_v_lo = alignment
            .apply_to_columns(&svds.lo.v)
            .expect("apply alignment");
        for (i, c) in matched_cosines(&aligned_v_lo, &svds.hi.v)
            .iter()
            .enumerate()
        {
            after_align[i] += c.abs();
        }

        // Figure 5: ISVD4's interval factors after the recomputation step.
        let out = pipeline.run(IsvdAlgorithm::Isvd4).expect("ISVD4");
        for (i, c) in matched_cosines(out.factors.v.lo(), out.factors.v.hi())
            .iter()
            .enumerate()
        {
            after_recompute_v[i] += c.abs();
        }
        for (i, c) in matched_cosines(out.factors.u.lo(), out.factors.u.hi())
            .iter()
            .enumerate()
        {
            u_after_solve[i] += c.abs();
        }
    }

    let n = opts.replicates as f64;
    let mut table = Table::new(vec![
        "latent dim (by singular value)",
        "cos(V) before align (Fig 3a)",
        "cos(V) after align (Fig 3b)",
        "cos(V) after ISVD4 recompute (Fig 5b)",
        "cos(U) after solve (Fig 5a)",
    ]);
    for i in 0..rank {
        table.add_row(vec![
            format!("{}", i + 1),
            fmt3(before[i] / n),
            fmt3(after_align[i] / n),
            fmt3(after_recompute_v[i] / n),
            fmt3(u_after_solve[i] / n),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean over dims: before={}, after align={}, after recompute={}",
        fmt3(before.iter().sum::<f64>() / (rank as f64 * n)),
        fmt3(after_align.iter().sum::<f64>() / (rank as f64 * n)),
        fmt3(after_recompute_v.iter().sum::<f64>() / (rank as f64 * n)),
    );
}
