//! # ivmf-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation section, plus Criterion micro-benchmarks.
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `exp_fig3_fig5` | Figures 3 & 5 — matched min/max cosine similarities before/after alignment and after ISVD4's recomputation |
//! | `exp_fig6` | Figure 6 — accuracy of ISVD0–4 × targets a/b/c (+ LP) and the execution-time breakdown, default synthetic config |
//! | `exp_table2` | Table 2(a)–(e) — option-b accuracy sweeps over interval density / intensity / matrix density / shape / rank |
//! | `exp_fig7` | Figure 7 — anonymized data (high/medium/low privacy) × rank |
//! | `exp_fig8` | Figure 8 — ORL-like faces: reconstruction RMSE, 1-NN F1, k-means NMI vs rank |
//! | `exp_table3` | Table 3 — clustering accuracy & time: scalar vs interval vectors vs ISVD2-b(r=20) |
//! | `exp_fig9` | Figure 9 — Ciao/Epinions/MovieLens-like reconstruction accuracy × rank × target |
//! | `exp_fig10` | Figure 10 — collaborative-filtering RMSE of PMF / I-PMF / AI-PMF vs rank |
//!
//! All binaries honour the environment variables documented in README.md
//! (`IVMF_REPLICATES`, `IVMF_SCALE`, `IVMF_THREADS`,
//! `IVMF_EXACT_INTERVAL`) so the full grids stay laptop-friendly.
//!
//! Run them with `cargo run --release -p ivmf-bench --bin <name>`. The
//! `linalg_kernels` bench additionally records kernel medians and speedups
//! to `BENCH_linalg.json` at the repository root.
//!
//! ## Example
//!
//! The shared runner evaluates one method on one interval matrix exactly
//! like the experiment binaries do:
//!
//! ```
//! use ivmf_bench::{evaluate_algorithm, AlgoSpec, Table};
//! use ivmf_bench::table::fmt3;
//! use ivmf_core::{DecompositionTarget, IsvdAlgorithm};
//! use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let m = generate_uniform(&SyntheticConfig::paper_default().with_shape(12, 9), &mut rng);
//! let spec = AlgoSpec::Isvd(IsvdAlgorithm::Isvd4, DecompositionTarget::IntervalCore);
//! let outcome = evaluate_algorithm(&m, 6, spec);
//!
//! let mut table = Table::new(vec!["algo", "H-mean"]);
//! table.add_row(vec![spec.name(), fmt3(outcome.harmonic_mean)]);
//! assert!(table.render().contains("ISVD4-b"));
//! assert!(outcome.harmonic_mean > 0.5);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod runner;
pub mod table;

pub use runner::{
    evaluate_algorithm, evaluate_roster, evaluate_roster_breakdown, evaluate_roster_with_cache,
    replicate_roster_means, standalone_equivalent_timings, AlgoSpec, EvalOutcome,
    ExperimentOptions,
};
pub use table::Table;

/// True when `IVMF_BENCH_SMOKE` is set to `1`/`true` (shared [`ivmf_env`]
/// rule): the Criterion-style benches then run every benchmark with a
/// single sample — the CI bitrot guard that keeps `cargo bench` runs fast
/// while still exercising every kernel and the JSON emitters.
pub fn bench_smoke_mode() -> bool {
    ivmf_env::flag(ivmf_env::BENCH_SMOKE)
}

/// Samples per benchmark: 1 in smoke mode, 10 otherwise.
pub fn bench_sample_count() -> usize {
    if bench_smoke_mode() {
        1
    } else {
        10
    }
}

/// Reads the `(name, median_ns)` pairs out of a committed `BENCH_*.json`
/// report (the format this workspace's bench emitters write: one result
/// object per line). Missing or unparsable files yield an empty list —
/// the benches then simply report no baseline ratios.
///
/// This is how the perf trajectory accumulates across PRs: each bench run
/// compares against the medians *committed in the repository* rather than
/// against constants frozen at some historical commit.
pub fn read_bench_medians(path: &str) -> Vec<(String, u128)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = extract_after(line, "\"name\": \"")
            .map(|rest| rest.chars().take_while(|&c| c != '"').collect::<String>())
        else {
            continue;
        };
        let Some(ns) = extract_after(line, "\"median_ns\": ")
            .map(|rest| {
                rest.chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
            })
            .and_then(|digits| digits.parse::<u128>().ok())
        else {
            continue;
        };
        out.push((name, ns));
    }
    out
}

fn extract_after<'a>(line: &'a str, pattern: &str) -> Option<&'a str> {
    line.find(pattern).map(|i| &line[i + pattern.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bench_medians_parses_the_emitted_format() {
        let path =
            std::env::temp_dir().join(format!("ivmf_bench_medians_{}.json", std::process::id()));
        std::fs::write(
            &path,
            concat!(
                "{\n  \"bench\": \"isvd_pipeline\",\n  \"results\": [\n",
                "    {\"name\": \"isvd_pipeline/ISVD0\", \"median_ns\": 362795, \"baseline_ns\": 1},\n",
                "    {\"name\": \"sym_eigen/128\", \"median_ns\": 3755107}\n",
                "  ],\n  \"smoke\": false\n}\n"
            ),
        )
        .unwrap();
        let medians = read_bench_medians(path.to_str().unwrap());
        assert_eq!(
            medians,
            vec![
                ("isvd_pipeline/ISVD0".to_string(), 362_795),
                ("sym_eigen/128".to_string(), 3_755_107),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_bench_medians_tolerates_missing_files() {
        assert!(read_bench_medians("/nonexistent/ivmf/bench.json").is_empty());
    }
}
