//! # ivmf-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation section, plus Criterion micro-benchmarks.
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `exp_fig3_fig5` | Figures 3 & 5 — matched min/max cosine similarities before/after alignment and after ISVD4's recomputation |
//! | `exp_fig6` | Figure 6 — accuracy of ISVD0–4 × targets a/b/c (+ LP) and the execution-time breakdown, default synthetic config |
//! | `exp_table2` | Table 2(a)–(e) — option-b accuracy sweeps over interval density / intensity / matrix density / shape / rank |
//! | `exp_fig7` | Figure 7 — anonymized data (high/medium/low privacy) × rank |
//! | `exp_fig8` | Figure 8 — ORL-like faces: reconstruction RMSE, 1-NN F1, k-means NMI vs rank |
//! | `exp_table3` | Table 3 — clustering accuracy & time: scalar vs interval vectors vs ISVD2-b(r=20) |
//! | `exp_fig9` | Figure 9 — Ciao/Epinions/MovieLens-like reconstruction accuracy × rank × target |
//! | `exp_fig10` | Figure 10 — collaborative-filtering RMSE of PMF / I-PMF / AI-PMF vs rank |
//!
//! All binaries honour the environment variables documented in README.md
//! (`IVMF_REPLICATES`, `IVMF_SCALE`, `IVMF_THREADS`,
//! `IVMF_EXACT_INTERVAL`) so the full grids stay laptop-friendly.
//!
//! Run them with `cargo run --release -p ivmf-bench --bin <name>`. The
//! `linalg_kernels` bench additionally records kernel medians and speedups
//! to `BENCH_linalg.json` at the repository root.
//!
//! ## Example
//!
//! The shared runner evaluates one method on one interval matrix exactly
//! like the experiment binaries do:
//!
//! ```
//! use ivmf_bench::{evaluate_algorithm, AlgoSpec, Table};
//! use ivmf_bench::table::fmt3;
//! use ivmf_core::{DecompositionTarget, IsvdAlgorithm};
//! use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let m = generate_uniform(&SyntheticConfig::paper_default().with_shape(12, 9), &mut rng);
//! let spec = AlgoSpec::Isvd(IsvdAlgorithm::Isvd4, DecompositionTarget::IntervalCore);
//! let outcome = evaluate_algorithm(&m, 6, spec);
//!
//! let mut table = Table::new(vec!["algo", "H-mean"]);
//! table.add_row(vec![spec.name(), fmt3(outcome.harmonic_mean)]);
//! assert!(table.render().contains("ISVD4-b"));
//! assert!(outcome.harmonic_mean > 0.5);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod runner;
pub mod table;

pub use runner::{
    evaluate_algorithm, evaluate_roster, evaluate_roster_with_cache, replicate_roster_means,
    AlgoSpec, EvalOutcome, ExperimentOptions,
};
pub use table::Table;

/// True when `IVMF_BENCH_SMOKE` is set to `1`/`true` (shared [`ivmf_env`]
/// rule): the Criterion-style benches then run every benchmark with a
/// single sample — the CI bitrot guard that keeps `cargo bench` runs fast
/// while still exercising every kernel and the JSON emitters.
pub fn bench_smoke_mode() -> bool {
    ivmf_env::flag(ivmf_env::BENCH_SMOKE)
}

/// Samples per benchmark: 1 in smoke mode, 10 otherwise.
pub fn bench_sample_count() -> usize {
    if bench_smoke_mode() {
        1
    } else {
        10
    }
}
