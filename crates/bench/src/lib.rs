//! # ivmf-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation section, plus Criterion micro-benchmarks.
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `exp_fig3_fig5` | Figures 3 & 5 — matched min/max cosine similarities before/after alignment and after ISVD4's recomputation |
//! | `exp_fig6` | Figure 6 — accuracy of ISVD0–4 × targets a/b/c (+ LP) and the execution-time breakdown, default synthetic config |
//! | `exp_table2` | Table 2(a)–(e) — option-b accuracy sweeps over interval density / intensity / matrix density / shape / rank |
//! | `exp_fig7` | Figure 7 — anonymized data (high/medium/low privacy) × rank |
//! | `exp_fig8` | Figure 8 — ORL-like faces: reconstruction RMSE, 1-NN F1, k-means NMI vs rank |
//! | `exp_table3` | Table 3 — clustering accuracy & time: scalar vs interval vectors vs ISVD2-b(r=20) |
//! | `exp_fig9` | Figure 9 — Ciao/Epinions/MovieLens-like reconstruction accuracy × rank × target |
//! | `exp_fig10` | Figure 10 — collaborative-filtering RMSE of PMF / I-PMF / AI-PMF vs rank |
//!
//! All binaries honour two environment variables so the full grids stay
//! laptop-friendly:
//!
//! * `IVMF_REPLICATES` — number of seeded replicates to average over
//!   (default 5; the paper averages over 100).
//! * `IVMF_SCALE` — a size multiplier in `(0, 1]` applied to the larger
//!   data sets (default keeps the moderate defaults documented per binary).
//!
//! Run them with `cargo run --release -p ivmf-bench --bin <name>`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod runner;
pub mod table;

pub use runner::{evaluate_algorithm, AlgoSpec, EvalOutcome, ExperimentOptions};
pub use table::Table;
