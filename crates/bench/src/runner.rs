//! Shared experiment plumbing: algorithm specifications, single-run
//! evaluation, and environment-driven options.

use std::time::Duration;

use ivmf_core::accuracy::reconstruction_accuracy;
use ivmf_core::isvd::isvd;
use ivmf_core::timing::StageTimings;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig};
use ivmf_interval::IntervalMatrix;
use ivmf_lp::lp_isvd;

/// Options shared by every experiment binary, read from the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOptions {
    /// Number of seeded replicates to average over (`IVMF_REPLICATES`,
    /// default 5; the paper uses 100).
    pub replicates: usize,
    /// Size multiplier in `(0, 1]` for the larger data sets (`IVMF_SCALE`).
    pub scale: f64,
}

impl ExperimentOptions {
    /// Reads `IVMF_REPLICATES` and `IVMF_SCALE` from the environment,
    /// falling back to `(5, default_scale)`.
    pub fn from_env(default_scale: f64) -> Self {
        let replicates = std::env::var("IVMF_REPLICATES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&r| r > 0)
            .unwrap_or(5);
        let scale = std::env::var("IVMF_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|&s| s > 0.0 && s <= 1.0)
            .unwrap_or(default_scale);
        ExperimentOptions { replicates, scale }
    }
}

/// A named decomposition method evaluated by the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoSpec {
    /// One of the paper's ISVD strategies with a decomposition target.
    Isvd(IsvdAlgorithm, DecompositionTarget),
    /// The LP/bound-based competitor with a decomposition target.
    Lp(DecompositionTarget),
}

impl AlgoSpec {
    /// Display name matching the paper ("ISVD4-b", "LP-a", …). ISVD0 has no
    /// target suffix because it only supports option c.
    pub fn name(&self) -> String {
        match self {
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd0, _) => "ISVD0".to_string(),
            AlgoSpec::Isvd(alg, target) => format!("{}-{}", alg.name(), target.label()),
            AlgoSpec::Lp(target) => format!("LP-{}", target.label()),
        }
    }

    /// The full roster evaluated in Figure 6a: every ISVD algorithm under
    /// every applicable target, plus the LP competitor per target.
    pub fn figure6_roster() -> Vec<AlgoSpec> {
        let mut out = Vec::new();
        for target in DecompositionTarget::all() {
            for alg in [
                IsvdAlgorithm::Isvd1,
                IsvdAlgorithm::Isvd2,
                IsvdAlgorithm::Isvd3,
                IsvdAlgorithm::Isvd4,
            ] {
                out.push(AlgoSpec::Isvd(alg, target));
            }
            out.push(AlgoSpec::Lp(target));
        }
        // ISVD0 only supports option c.
        out.push(AlgoSpec::Isvd(
            IsvdAlgorithm::Isvd0,
            DecompositionTarget::Scalar,
        ));
        out
    }

    /// The option-b roster used by Table 2 (plus ISVD0 as the fast
    /// baseline), in the paper's column order.
    pub fn table2_roster() -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd0, DecompositionTarget::Scalar),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd1, DecompositionTarget::IntervalCore),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd2, DecompositionTarget::IntervalCore),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd3, DecompositionTarget::IntervalCore),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd4, DecompositionTarget::IntervalCore),
        ]
    }

    /// The per-target roster of Figures 7 and 9 (ISVD1–4 under options a
    /// and b, ISVD0–4 under option c).
    pub fn per_target_roster() -> Vec<AlgoSpec> {
        let mut out = Vec::new();
        for target in [
            DecompositionTarget::IntervalAll,
            DecompositionTarget::IntervalCore,
        ] {
            for alg in [
                IsvdAlgorithm::Isvd1,
                IsvdAlgorithm::Isvd2,
                IsvdAlgorithm::Isvd3,
                IsvdAlgorithm::Isvd4,
            ] {
                out.push(AlgoSpec::Isvd(alg, target));
            }
        }
        for alg in IsvdAlgorithm::all() {
            out.push(AlgoSpec::Isvd(alg, DecompositionTarget::Scalar));
        }
        out
    }
}

/// Result of evaluating one method on one interval matrix.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Definition 5 harmonic-mean reconstruction accuracy.
    pub harmonic_mean: f64,
    /// Stage timings (zero for the LP competitor, which has no staged
    /// pipeline).
    pub timings: StageTimings,
    /// Total wall-clock time of the decomposition.
    pub total_time: Duration,
}

/// Decomposes `m` at the given rank with the specified method, reconstructs
/// and scores it (Definition 5). Failures (singular inputs, non-convergence)
/// are reported as zero accuracy rather than aborting a whole sweep.
pub fn evaluate_algorithm(m: &IntervalMatrix, rank: usize, spec: AlgoSpec) -> EvalOutcome {
    let start = std::time::Instant::now();
    let (factors, timings) = match spec {
        AlgoSpec::Isvd(alg, target) => {
            let config = IsvdConfig::new(rank)
                .with_algorithm(alg)
                .with_target(target);
            match isvd(m, &config) {
                Ok(result) => (Some(result.factors), result.timings),
                Err(_) => (None, StageTimings::default()),
            }
        }
        AlgoSpec::Lp(target) => {
            let config = IsvdConfig::new(rank).with_target(target);
            match lp_isvd(m, &config) {
                Ok(factors) => (Some(factors), StageTimings::default()),
                Err(_) => (None, StageTimings::default()),
            }
        }
    };
    let total_time = start.elapsed();
    let harmonic_mean = factors
        .and_then(|f| f.reconstruct().ok())
        .and_then(|rec| reconstruction_accuracy(m, &rec).ok())
        .map(|a| a.harmonic_mean)
        .unwrap_or(0.0);
    EvalOutcome {
        harmonic_mean,
        timings,
        total_time,
    }
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roster_contents() {
        let fig6 = AlgoSpec::figure6_roster();
        assert_eq!(fig6.len(), 16); // 4 ISVD x 3 targets + 3 LP + ISVD0
        assert!(fig6.iter().any(|s| s.name() == "ISVD4-b"));
        assert!(fig6.iter().any(|s| s.name() == "LP-a"));
        assert!(fig6.iter().any(|s| s.name() == "ISVD0"));
        assert_eq!(AlgoSpec::table2_roster().len(), 5);
        assert_eq!(AlgoSpec::per_target_roster().len(), 13);
    }

    #[test]
    fn evaluate_algorithm_produces_sane_accuracy() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = generate_uniform(
            &SyntheticConfig::paper_default().with_shape(15, 12),
            &mut rng,
        );
        let outcome = evaluate_algorithm(
            &m,
            8,
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd4, DecompositionTarget::IntervalCore),
        );
        assert!(outcome.harmonic_mean > 0.5 && outcome.harmonic_mean <= 1.0);
        assert!(outcome.total_time > Duration::ZERO);
    }

    #[test]
    fn invalid_rank_degrades_to_zero_accuracy() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = generate_uniform(&SyntheticConfig::paper_default().with_shape(6, 6), &mut rng);
        let outcome = evaluate_algorithm(
            &m,
            99,
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd1, DecompositionTarget::Scalar),
        );
        assert_eq!(outcome.harmonic_mean, 0.0);
    }

    #[test]
    fn options_from_env_defaults() {
        // Do not set the variables; defaults apply.
        let opts = ExperimentOptions::from_env(0.5);
        assert!(opts.replicates >= 1);
        assert!(opts.scale > 0.0 && opts.scale <= 1.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
