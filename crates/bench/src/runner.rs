//! Shared experiment plumbing: algorithm specifications, batched roster
//! evaluation over the decomposition pipeline's shared-stage cache, the
//! replicate-averaging loop every `exp_*` binary previously hand-rolled,
//! and environment-driven options.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ivmf_core::accuracy::reconstruction_accuracy;
use ivmf_core::pipeline::{Pipeline, StageCache, StageEvent, StageId};
use ivmf_core::timing::StageTimings;
use ivmf_core::{DecompositionTarget, IsvdAlgorithm, IsvdConfig, IsvdResult};
use ivmf_interval::IntervalMatrix;
use ivmf_lp::lp_isvd;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Options shared by every experiment binary, read from the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOptions {
    /// Number of seeded replicates to average over (`IVMF_REPLICATES`,
    /// default 5; the paper uses 100).
    pub replicates: usize,
    /// Size multiplier in `(0, 1]` for the larger data sets (`IVMF_SCALE`).
    pub scale: f64,
}

impl ExperimentOptions {
    /// Reads `IVMF_REPLICATES` and `IVMF_SCALE` through the shared
    /// [`ivmf_env`] helpers, falling back to `(5, default_scale)`.
    pub fn from_env(default_scale: f64) -> Self {
        ExperimentOptions {
            replicates: ivmf_env::usize_var(ivmf_env::REPLICATES, 1, || 5),
            scale: ivmf_env::f64_var_in(ivmf_env::SCALE, 0.0, 1.0, default_scale),
        }
    }
}

/// A named decomposition method evaluated by the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoSpec {
    /// One of the paper's ISVD strategies with a decomposition target.
    Isvd(IsvdAlgorithm, DecompositionTarget),
    /// The LP/bound-based competitor with a decomposition target.
    Lp(DecompositionTarget),
}

impl AlgoSpec {
    /// Display name matching the paper ("ISVD4-b", "LP-a", …). ISVD0 has no
    /// target suffix because it only supports option c.
    pub fn name(&self) -> String {
        match self {
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd0, _) => "ISVD0".to_string(),
            AlgoSpec::Isvd(alg, target) => format!("{}-{}", alg.name(), target.label()),
            AlgoSpec::Lp(target) => format!("LP-{}", target.label()),
        }
    }

    /// The full roster evaluated in Figure 6a: every ISVD algorithm under
    /// every applicable target, plus the LP competitor per target.
    pub fn figure6_roster() -> Vec<AlgoSpec> {
        let mut out = Vec::new();
        for target in DecompositionTarget::all() {
            for alg in [
                IsvdAlgorithm::Isvd1,
                IsvdAlgorithm::Isvd2,
                IsvdAlgorithm::Isvd3,
                IsvdAlgorithm::Isvd4,
            ] {
                out.push(AlgoSpec::Isvd(alg, target));
            }
            out.push(AlgoSpec::Lp(target));
        }
        // ISVD0 only supports option c.
        out.push(AlgoSpec::Isvd(
            IsvdAlgorithm::Isvd0,
            DecompositionTarget::Scalar,
        ));
        out
    }

    /// The option-b roster used by Table 2 (plus ISVD0 as the fast
    /// baseline), in the paper's column order.
    pub fn table2_roster() -> Vec<AlgoSpec> {
        vec![
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd0, DecompositionTarget::Scalar),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd1, DecompositionTarget::IntervalCore),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd2, DecompositionTarget::IntervalCore),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd3, DecompositionTarget::IntervalCore),
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd4, DecompositionTarget::IntervalCore),
        ]
    }

    /// The per-target roster of Figures 7 and 9 (ISVD1–4 under options a
    /// and b, ISVD0–4 under option c).
    pub fn per_target_roster() -> Vec<AlgoSpec> {
        let mut out = Vec::new();
        for target in [
            DecompositionTarget::IntervalAll,
            DecompositionTarget::IntervalCore,
        ] {
            for alg in [
                IsvdAlgorithm::Isvd1,
                IsvdAlgorithm::Isvd2,
                IsvdAlgorithm::Isvd3,
                IsvdAlgorithm::Isvd4,
            ] {
                out.push(AlgoSpec::Isvd(alg, target));
            }
        }
        for alg in IsvdAlgorithm::all() {
            out.push(AlgoSpec::Isvd(alg, DecompositionTarget::Scalar));
        }
        out
    }
}

/// Result of evaluating one method on one interval matrix.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Definition 5 harmonic-mean reconstruction accuracy.
    pub harmonic_mean: f64,
    /// Stage timings (zero for the LP competitor, which has no staged
    /// pipeline).
    pub timings: StageTimings,
    /// Total wall-clock time of the decomposition. Under
    /// [`evaluate_roster`] this is the *marginal* cost given the shared
    /// stage cache — a spec evaluated after another that already computed
    /// the Gram/eigen stages pays only for its own stages (see
    /// `timings.cache_hits`), so it is order- and roster-dependent. For a
    /// method's standalone cost, use [`evaluate_algorithm`].
    pub total_time: Duration,
}

/// Evaluates a whole roster of methods on one interval matrix through a
/// single shared [`Pipeline`] session: every ISVD spec in the roster runs
/// against the same stage cache, so the interval Gram matrix, the bound
/// eigendecompositions and the ILSA alignment are computed at most once no
/// matter how many algorithm × target combinations the roster lists. The
/// LP competitor has no staged pipeline and is evaluated standalone.
///
/// Results are in roster order; per-spec cache accounting is in
/// [`EvalOutcome::timings`]. Outputs are bitwise identical to
/// [`evaluate_algorithm`] on each spec separately (the cache changes when a
/// stage runs, never its arithmetic) — but each [`EvalOutcome::total_time`]
/// is the *marginal* cost under sharing, not the method's standalone cost
/// (which is why the Figure 6b time breakdown stays on the sequential
/// path).
pub fn evaluate_roster(m: &IntervalMatrix, rank: usize, roster: &[AlgoSpec]) -> Vec<EvalOutcome> {
    evaluate_roster_with_cache(m, rank, roster, StageCache::new()).0
}

/// [`evaluate_roster`] over a caller-supplied [`StageCache`], returning the
/// cache for further reuse. This is how rank sweeps share the
/// rank-independent stages: the interval Gram is keyed without the rank
/// (see [`ivmf_core::pipeline::stage_fingerprint`]), so evaluating several
/// ranks on one matrix over one threaded cache computes it exactly once.
pub fn evaluate_roster_with_cache(
    m: &IntervalMatrix,
    rank: usize,
    roster: &[AlgoSpec],
    cache: StageCache,
) -> (Vec<EvalOutcome>, StageCache) {
    // An invalid (rank, shape) combination degrades every ISVD spec to zero
    // accuracy, exactly like the standalone path — but the caller's cache
    // must survive the failed rank so the rest of a sweep keeps its warm
    // rank-independent stages.
    let config = IsvdConfig::new(rank);
    let (mut pipeline, mut unused_cache) = if config.validate(m.shape()).is_ok() {
        // `with_cache` validates the same config, so it cannot fail here.
        (Pipeline::with_cache(m, config, cache).ok(), None)
    } else {
        (None, Some(cache))
    };
    let outcomes = roster
        .iter()
        .map(|&spec| {
            let start = Instant::now();
            let (factors, timings) = match spec {
                AlgoSpec::Isvd(alg, target) => {
                    match pipeline.as_mut().map(|p| p.run_with_target(alg, target)) {
                        Some(Ok(result)) => (Some(result.factors), result.timings),
                        _ => (None, StageTimings::default()),
                    }
                }
                AlgoSpec::Lp(target) => {
                    let config = IsvdConfig::new(rank).with_target(target);
                    match lp_isvd(m, &config) {
                        Ok(factors) => (Some(factors), StageTimings::default()),
                        Err(_) => (None, StageTimings::default()),
                    }
                }
            };
            let total_time = start.elapsed();
            let harmonic_mean = factors
                .and_then(|f| f.reconstruct().ok())
                .and_then(|rec| reconstruction_accuracy(m, &rec).ok())
                .map(|a| a.harmonic_mean)
                .unwrap_or(0.0);
            EvalOutcome {
                harmonic_mean,
                timings,
                total_time,
            }
        })
        .collect();
    let cache = pipeline
        .map(Pipeline::into_cache)
        .or_else(|| unused_cache.take())
        .unwrap_or_default();
    (outcomes, cache)
}

/// The wall-clock cost of each computed stage, collected from the miss
/// events of a set of runs over one shared cache: every stage is computed
/// exactly once across the set, so the map holds exactly one duration per
/// stage.
fn stage_costs<'a>(events: impl IntoIterator<Item = &'a StageEvent>) -> HashMap<StageId, Duration> {
    let mut costs = HashMap::new();
    for e in events {
        if !e.cache_hit {
            costs.insert(e.stage, e.duration);
        }
    }
    costs
}

/// Adds the cost of every cache-served stage of `events` back onto
/// `timings`, attributed to the stage's Figure 6b slot — turning a shared
/// run's marginal timings into the breakdown an uncached standalone run
/// would have reported (up to measurement noise; `AlignedSolve` charges
/// its whole cost to the slot receiving the bulk, see
/// [`StageId::paper_slot`]).
fn augment_with_shared_stage_costs(
    timings: &mut StageTimings,
    events: &[StageEvent],
    costs: &HashMap<StageId, Duration>,
) {
    for e in events {
        if !e.cache_hit {
            continue;
        }
        let Some(&d) = costs.get(&e.stage) else {
            continue;
        };
        match e.stage.paper_slot() {
            "preprocessing" => timings.preprocessing += d,
            "decomposition" => timings.decomposition += d,
            "alignment" => timings.alignment += d,
            _ => {}
        }
    }
}

/// Rebuilds the standalone-equivalent per-run timing breakdown of a batch
/// of runs that shared one stage cache (e.g. the five results of
/// [`ivmf_core::pipeline::run_all`]): each run's marginal timings plus, for
/// every stage it was served from the cache, the duration that stage's one
/// computation took — the breakdown a sequential per-algorithm evaluation
/// would measure, recovered from the shared event trace without running
/// anything twice.
pub fn standalone_equivalent_timings(results: &[IsvdResult]) -> Vec<StageTimings> {
    let costs = stage_costs(results.iter().flat_map(|r| r.stages.iter()));
    results
        .iter()
        .map(|r| {
            let mut t = r.timings;
            augment_with_shared_stage_costs(&mut t, &r.stages, &costs);
            t
        })
        .collect()
}

/// [`evaluate_roster`] variant whose reported timings are
/// **standalone-equivalent**: the roster is evaluated through one shared
/// [`Pipeline`] session (every common stage computed once), and each
/// spec's timings are then rebuilt from the stage event trace as if it had
/// computed all of its own stages — the Figure 6b semantics — with
/// [`EvalOutcome::total_time`] set to the reconstructed stage total.
/// Accuracy outputs are bitwise identical to [`evaluate_algorithm`] on
/// each spec separately. The LP competitor has no staged pipeline; its
/// timings stay zero and its `total_time` is measured wall-clock.
pub fn evaluate_roster_breakdown(
    m: &IntervalMatrix,
    rank: usize,
    roster: &[AlgoSpec],
) -> Vec<EvalOutcome> {
    let config = IsvdConfig::new(rank);
    let mut pipeline = config
        .validate(m.shape())
        .ok()
        .and_then(|()| Pipeline::new(m, config).ok());
    struct Row {
        harmonic_mean: f64,
        timings: StageTimings,
        total_time: Duration,
        events: Vec<StageEvent>,
    }
    let rows: Vec<Row> = roster
        .iter()
        .map(|&spec| {
            let start = Instant::now();
            let (factors, timings, events) = match spec {
                AlgoSpec::Isvd(alg, target) => {
                    match pipeline.as_mut().map(|p| p.run_with_target(alg, target)) {
                        Some(Ok(result)) => (Some(result.factors), result.timings, result.stages),
                        _ => (None, StageTimings::default(), Vec::new()),
                    }
                }
                AlgoSpec::Lp(target) => {
                    let config = IsvdConfig::new(rank).with_target(target);
                    match lp_isvd(m, &config) {
                        Ok(factors) => (Some(factors), StageTimings::default(), Vec::new()),
                        Err(_) => (None, StageTimings::default(), Vec::new()),
                    }
                }
            };
            let total_time = start.elapsed();
            let harmonic_mean = factors
                .and_then(|f| f.reconstruct().ok())
                .and_then(|rec| reconstruction_accuracy(m, &rec).ok())
                .map(|a| a.harmonic_mean)
                .unwrap_or(0.0);
            Row {
                harmonic_mean,
                timings,
                total_time,
                events,
            }
        })
        .collect();
    let costs = stage_costs(rows.iter().flat_map(|r| r.events.iter()));
    rows.into_iter()
        .map(|mut row| {
            let is_staged = !row.events.is_empty();
            augment_with_shared_stage_costs(&mut row.timings, &row.events, &costs);
            EvalOutcome {
                harmonic_mean: row.harmonic_mean,
                timings: row.timings,
                total_time: if is_staged {
                    row.timings.total()
                } else {
                    row.total_time
                },
            }
        })
        .collect()
}

/// Decomposes `m` at the given rank with the specified method, reconstructs
/// and scores it (Definition 5). Failures (singular inputs, non-convergence)
/// are reported as zero accuracy rather than aborting a whole sweep.
///
/// Single-spec wrapper over [`evaluate_roster`] (fresh cache, nothing
/// shared) — the sequential path experiment binaries use when per-run
/// timing fidelity matters more than stage reuse.
pub fn evaluate_algorithm(m: &IntervalMatrix, rank: usize, spec: AlgoSpec) -> EvalOutcome {
    evaluate_roster(m, rank, &[spec])
        .pop()
        .expect("one spec in, one outcome out")
}

/// The replicate/averaging loop shared by the sweep-style experiment
/// binaries: for each replicate, seeds an RNG with `seed_base + rep`,
/// generates a matrix, evaluates the full roster at every rank through one
/// stage cache threaded across the whole rank sweep (so rank-independent
/// stages — above all the `O(nm²)` interval Gram — are computed once per
/// replicate, not once per rank), and returns the per-`(rank, spec)` mean
/// harmonic accuracy (`out[rank_idx][spec_idx]`).
pub fn replicate_roster_means(
    replicates: usize,
    seed_base: u64,
    mut generate: impl FnMut(&mut SmallRng) -> IntervalMatrix,
    ranks: &[usize],
    roster: &[AlgoSpec],
) -> Vec<Vec<f64>> {
    let mut sums = vec![vec![0.0; roster.len()]; ranks.len()];
    for rep in 0..replicates {
        let mut rng = SmallRng::seed_from_u64(seed_base + rep as u64);
        let m = generate(&mut rng);
        let mut cache = StageCache::new();
        for (ri, &rank) in ranks.iter().enumerate() {
            let (outcomes, reused) = evaluate_roster_with_cache(&m, rank, roster, cache);
            cache = reused;
            for (si, outcome) in outcomes.iter().enumerate() {
                sums[ri][si] += outcome.harmonic_mean;
            }
        }
    }
    let n = replicates.max(1) as f64;
    for per_rank in &mut sums {
        for v in per_rank.iter_mut() {
            *v /= n;
        }
    }
    sums
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roster_contents() {
        let fig6 = AlgoSpec::figure6_roster();
        assert_eq!(fig6.len(), 16); // 4 ISVD x 3 targets + 3 LP + ISVD0
        assert!(fig6.iter().any(|s| s.name() == "ISVD4-b"));
        assert!(fig6.iter().any(|s| s.name() == "LP-a"));
        assert!(fig6.iter().any(|s| s.name() == "ISVD0"));
        assert_eq!(AlgoSpec::table2_roster().len(), 5);
        assert_eq!(AlgoSpec::per_target_roster().len(), 13);
    }

    #[test]
    fn evaluate_algorithm_produces_sane_accuracy() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = generate_uniform(
            &SyntheticConfig::paper_default().with_shape(15, 12),
            &mut rng,
        );
        let outcome = evaluate_algorithm(
            &m,
            8,
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd4, DecompositionTarget::IntervalCore),
        );
        assert!(outcome.harmonic_mean > 0.5 && outcome.harmonic_mean <= 1.0);
        assert!(outcome.total_time > Duration::ZERO);
    }

    #[test]
    fn invalid_rank_degrades_to_zero_accuracy() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = generate_uniform(&SyntheticConfig::paper_default().with_shape(6, 6), &mut rng);
        let outcome = evaluate_algorithm(
            &m,
            99,
            AlgoSpec::Isvd(IsvdAlgorithm::Isvd1, DecompositionTarget::Scalar),
        );
        assert_eq!(outcome.harmonic_mean, 0.0);
    }

    #[test]
    fn evaluate_roster_shares_stages_and_matches_standalone() {
        // Exact hit/miss accounting: keep the auto-snapshot knob out.
        std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
        let mut rng = SmallRng::seed_from_u64(3);
        let m = generate_uniform(
            &SyntheticConfig::paper_default().with_shape(14, 10),
            &mut rng,
        );
        let roster = AlgoSpec::table2_roster();
        let shared = evaluate_roster(&m, 6, &roster);
        assert_eq!(shared.len(), roster.len());
        // The batched outcomes are bitwise identical to standalone runs.
        for (outcome, &spec) in shared.iter().zip(&roster) {
            let standalone = evaluate_algorithm(&m, 6, spec);
            assert_eq!(
                outcome.harmonic_mean.to_bits(),
                standalone.harmonic_mean.to_bits(),
                "{} diverged between shared and standalone evaluation",
                spec.name()
            );
        }
        // ISVD3 (index 3) reuses the Gram/eigen/alignment stages ISVD2
        // computed; the standalone path reuses nothing.
        assert!(shared[3].timings.cache_hits >= 4);
        assert_eq!(evaluate_algorithm(&m, 6, roster[3]).timings.cache_hits, 0);
    }

    #[test]
    fn invalid_rank_preserves_the_threaded_cache() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = generate_uniform(&SyntheticConfig::paper_default().with_shape(8, 6), &mut rng);
        let roster = AlgoSpec::table2_roster();
        // Warm the cache at a valid rank...
        let (_, cache) = evaluate_roster_with_cache(&m, 4, &roster, StageCache::new());
        let warm_entries = cache.len();
        assert!(warm_entries > 0);
        // ...then hit an invalid rank: every outcome is zero but the warm
        // cache must come back intact for the rest of the sweep.
        let (outcomes, cache) = evaluate_roster_with_cache(&m, 99, &roster, cache);
        assert!(outcomes
            .iter()
            .zip(&roster)
            .filter(|(_, s)| matches!(s, AlgoSpec::Isvd(..)))
            .all(|(o, _)| o.harmonic_mean == 0.0));
        assert_eq!(cache.len(), warm_entries, "warm cache was dropped");
    }

    #[test]
    fn replicate_roster_means_shapes_and_range() {
        let roster = AlgoSpec::table2_roster();
        let ranks = [3usize, 5];
        let means = replicate_roster_means(
            2,
            17,
            |rng| generate_uniform(&SyntheticConfig::paper_default().with_shape(10, 8), rng),
            &ranks,
            &roster,
        );
        assert_eq!(means.len(), ranks.len());
        for per_rank in &means {
            assert_eq!(per_rank.len(), roster.len());
            for &v in per_rank {
                assert!((0.0..=1.0).contains(&v), "accuracy {v} out of range");
            }
        }
    }

    #[test]
    fn options_from_env_defaults() {
        // Do not set the variables; defaults apply.
        let opts = ExperimentOptions::from_env(0.5);
        assert!(opts.replicates >= 1);
        assert!(opts.scale > 0.0 && opts.scale <= 1.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
