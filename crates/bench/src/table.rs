//! Minimal plain-text table formatting for the experiment binaries.
//!
//! The harness prints the same rows/series the paper reports; a small
//! hand-rolled formatter keeps the output readable in a terminal and easy
//! to diff across runs without pulling in extra dependencies.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (j, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[j] {
                    widths[j] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (j, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(j).unwrap_or(&empty);
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting of commas —
    /// cells produced by the harness never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimal places (the paper's precision).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds with one decimal.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["algo", "H-mean"]);
        t.add_row(vec!["ISVD0".to_string(), fmt3(0.62711)]);
        t.add_row(vec!["ISVD4-b".to_string(), fmt3(0.691)]);
        let s = t.render();
        assert!(s.contains("algo"));
        assert!(s.contains("0.627"));
        assert!(s.contains("ISVD4-b"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.5), "0.500");
        assert_eq!(fmt_ms(std::time::Duration::from_millis(12)), "12.0");
    }

    #[test]
    fn handles_ragged_rows_gracefully() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        let s = t.render();
        assert!(s.contains('1'));
    }
}
