//! Micro-benchmarks of the dense linear-algebra kernels the ISVD pipeline
//! leans on: symmetric eigendecomposition, SVD, matrix inversion and the
//! pseudo-inverse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivmf_linalg::random::{symmetric_matrix, uniform_matrix};
use ivmf_linalg::{eigen_sym::sym_eigen, lu::invert, pinv::pinv, svd::svd};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_sym_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    group.sample_size(10);
    for &n in &[40usize, 100, 250] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = symmetric_matrix(&mut rng, n, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| sym_eigen(a).unwrap())
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for &(rows, cols) in &[(40usize, 250usize), (250, 40), (100, 100)] {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = uniform_matrix(&mut rng, rows, cols, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &m,
            |b, m| b.iter(|| svd(m).unwrap()),
        );
    }
    group.finish();
}

fn bench_inverse_and_pinv(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let a = uniform_matrix(&mut rng, 100, 100, -1.0, 1.0)
        .add(&ivmf_linalg::Matrix::identity(100).scale(5.0))
        .unwrap();
    c.bench_function("lu_invert_100", |b| b.iter(|| invert(&a).unwrap()));
    let rect = uniform_matrix(&mut rng, 120, 40, -1.0, 1.0);
    c.bench_function("pinv_120x40", |b| b.iter(|| pinv(&rect, 0.1).unwrap()));
}

criterion_group!(benches, bench_sym_eigen, bench_svd, bench_inverse_and_pinv);
criterion_main!(benches);
