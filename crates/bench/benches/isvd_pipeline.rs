//! End-to-end trajectory bench for the decomposition pipelines: wall-clock
//! medians of ISVD0–ISVD4 (paper default 40×250 synthetic config, rank 20),
//! the shared-stage batched driver against the sequential five-algorithm
//! path (`batched_vs_sequential`), the streamed sharded Gram against the
//! dense path (`sharded_gram`), and the incremental `Pipeline::append_rows`
//! refresh against a cold recompute (`append_rows`, whose speedup is the
//! `append_vs_cold_speedup` field of the JSON), a warm restart from an
//! on-disk checkpoint against the cold five-algorithm run
//! (`snapshot_restore`, whose ratio is the
//! `snapshot_restore_vs_cold_speedup` field), the sparse CSR Gram's
//! linear-in-`n` scaling at ~100 stored entries per row (`sparse_scaling`)
//! and its win over the dense route at ~1% density
//! (`sparse_vs_dense_gram`, whose ratio is the
//! `sparse_vs_dense_gram_speedup` field), the 4-worker coordinator
//! fan-out against the 1-process fold at the tallest sparse size
//! (`distributed_gram`, whose ratio is the `distributed_gram_speedup`
//! field), the out-of-core ingest of the binary shard container +
//! pooled decode against the text container at the same tallest sparse
//! size (`ooc_ingest`: the decode-pass ratio is the
//! `ooc_ingest_speedup` field, the end-to-end Gram ratio the
//! `ooc_gram_e2e_speedup` field), plus the `sym_eigen` kernel
//! that backs every eigen-route decomposition and the certified top-k
//! solver against the full-spectrum oracle at pipeline-relevant rank
//! (`sym_eigen_topk_vs_full`, whose ratio is the
//! `sym_eigen_topk_vs_full_speedup` field). A final pass re-runs the
//! full pipeline at 560×256 rank 20 and records per-stage medians of
//! ISVD2's non-cache-hit stage trace (`stage_trace_m256_medians_ns`,
//! slowest stage in `stage_trace_m256_top`) so stage-level regressions —
//! e.g. the eigen stages overtaking the Gram build — show up in the
//! committed report. Results go to `BENCH_isvd.json` at the repository
//! root (override with `IVMF_BENCH_ISVD_OUT`).
//!
//! Unlike `linalg_kernels` — which tracks isolated kernels against each
//! other — this bench tracks the *algorithm-level* trajectory across PRs:
//! baselines are the medians recorded in the **committed** `BENCH_isvd.json`
//! (parsed at startup, before this run overwrites it), so every PR's report
//! shows its movement relative to the previous committed run and the
//! trajectory accumulates instead of comparing against frozen constants.
//! Both runs pin `IVMF_THREADS=1` unless the caller exports a count,
//! keeping the ratios apples-to-apples. Set `IVMF_BENCH_SMOKE=1` to run
//! every benchmark with a single sample (CI bitrot guard; smoke medians are
//! noise, so refresh the committed file only from a non-smoke run).

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use ivmf_core::isvd::isvd;
use ivmf_core::pipeline::{run_all, Pipeline};
use ivmf_core::{IsvdAlgorithm, IsvdConfig};
use ivmf_data::synthetic::{generate_power_law, generate_uniform, PowerLawConfig, SyntheticConfig};
use ivmf_distrib::{GramCoordinator, GramSpec, WorkerMode};
use ivmf_interval::{
    use_mr_gram, CsrShardedIntervalMatrix, RowShardedIntervalMatrix, SparseStreamingIntervalGram,
};
use ivmf_linalg::eigen_sym::sym_eigen;
use ivmf_linalg::random::{symmetric_matrix, uniform_matrix};
use ivmf_linalg::{sym_eigen_topk_with, TopkOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ivmf_bench::{
    bench_sample_count as sample_count, bench_smoke_mode as smoke_mode, read_bench_medians,
};

/// The committed report this run compares against (always the repository
/// root copy, independent of any `IVMF_BENCH_ISVD_OUT` override for the
/// output).
fn committed_json_path() -> String {
    format!(
        "{}/../../BENCH_isvd.json",
        env!("CARGO_MANIFEST_DIR") // crates/bench -> repository root
    )
}

fn bench_isvd_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("isvd_pipeline");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(1);
    let m = generate_uniform(&config, &mut rng);
    for alg in IsvdAlgorithm::all() {
        let isvd_config = IsvdConfig::new(rank).with_algorithm(alg);
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &m, |b, m| {
            b.iter(|| isvd(m, &isvd_config).unwrap())
        });
    }
    group.finish();
}

/// The shared-stage batched driver against the sequential path: both
/// evaluate all five ISVD algorithms on the paper-default matrix (bitwise
/// identical outputs); the batched run computes the interval Gram, the
/// bound eigendecompositions, the ILSA alignment and the aligned solve at
/// most once across the whole roster.
fn bench_batched_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_sequential");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(2);
    let m = generate_uniform(&config, &mut rng);
    let isvd_config = IsvdConfig::new(rank);
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &m, |b, m| {
        b.iter(|| {
            for alg in IsvdAlgorithm::all() {
                isvd(m, &isvd_config.with_algorithm(alg)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("batched"), &m, |b, m| {
        b.iter(|| run_all(m, &isvd_config).unwrap())
    });
    group.finish();
}

/// Streamed interval Gram over row shards against the dense one-block
/// stream, at a taller-than-paper row count (the scaling direction the
/// sharded storage exists for). The outputs are bitwise identical; the
/// bench tracks the sharding overhead (chunk re-alignment buffering).
fn bench_sharded_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_gram");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default().with_shape(480, 250);
    let mut rng = SmallRng::seed_from_u64(4);
    let m = generate_uniform(&config, &mut rng);
    group.bench_with_input(BenchmarkId::from_parameter("dense_480x250"), &m, |b, m| {
        b.iter(|| m.interval_gram_streamed().unwrap())
    });
    let sharded = RowShardedIntervalMatrix::from_dense(&m, 60).unwrap(); // 8 shards
    group.bench_with_input(
        BenchmarkId::from_parameter("sharded_480x250_x8"),
        &sharded,
        |b, s| b.iter(|| s.interval_gram_streamed().unwrap()),
    );
    group.finish();
}

/// Incremental row-append Gram refresh against a cold recompute: the
/// `append_rows` serving scenario. The cold path builds a fresh session
/// over base+delta and computes the Gram from scratch (`O(n·m²)`); the
/// incremental path appends the delta to a warmed session, folding only
/// the new rows' contributions (`O(Δn·m²)`). Outputs are bitwise
/// identical (asserted by the workspace's streaming test suite).
fn bench_append_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("append_rows");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default().with_shape(480, 250);
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(5);
    let base = generate_uniform(&config, &mut rng);
    let delta_config = SyntheticConfig::paper_default().with_shape(8, 250);
    let delta = generate_uniform(&delta_config, &mut rng);
    let base_sharded = RowShardedIntervalMatrix::from_dense(&base, 30).unwrap();

    group.bench_with_input(
        BenchmarkId::from_parameter("cold_recompute"),
        &(&base_sharded, &delta),
        |b, (base_sharded, delta)| {
            b.iter(|| {
                let mut combined = (*base_sharded).clone();
                combined.append_rows((*delta).clone()).unwrap();
                let mut session = Pipeline::from_shards(combined, IsvdConfig::new(rank)).unwrap();
                session.interval_gram().unwrap()
            })
        },
    );

    // Warmed session: the Gram accumulator is retained, so each append
    // folds only the delta. The matrix grows by Δ rows per iteration —
    // which is exactly the serving workload, and the incremental cost is
    // row-count-independent.
    let mut warmed = Pipeline::from_shards(base_sharded.clone(), IsvdConfig::new(rank)).unwrap();
    warmed.interval_gram().unwrap();
    group.bench_with_input(
        BenchmarkId::from_parameter("incremental"),
        &delta,
        |b, delta| {
            b.iter(|| {
                warmed.append_rows(delta.clone()).unwrap();
                warmed.interval_gram().unwrap()
            })
        },
    );
    group.finish();
}

/// Warm restart from an on-disk snapshot against a cold recompute: the
/// crash-recovery serving scenario. The cold path builds a fresh session
/// and runs all five algorithms from scratch; the restored path builds an
/// equally fresh session, loads the checkpoint written by a previous
/// "process" (`Pipeline::restore_from`, every entry hash-validated) and
/// then runs all five algorithms as pure cache hits — bitwise identical
/// outputs, asserted by the snapshot-recovery suite. The ratio becomes
/// the `snapshot_restore_vs_cold_speedup` JSON field.
fn bench_snapshot_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_restore");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default().with_shape(480, 250);
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(10);
    let m = generate_uniform(&config, &mut rng);
    let sharded = RowShardedIntervalMatrix::from_dense(&m, 30).unwrap();
    let isvd_config = IsvdConfig::new(rank);

    // The checkpoint a killed process would have left behind.
    let snap_path =
        std::env::temp_dir().join(format!("ivmf_bench_snapshot_{}.snap", std::process::id()));
    {
        let mut warmed = Pipeline::from_shards(sharded.clone(), isvd_config).unwrap();
        warmed.run_all().unwrap();
        warmed.snapshot_to(&snap_path).unwrap();
    }

    group.bench_with_input(
        BenchmarkId::from_parameter("cold"),
        &sharded,
        |b, sharded| {
            b.iter(|| {
                let mut session = Pipeline::from_shards((*sharded).clone(), isvd_config).unwrap();
                session.run_all().unwrap()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("restored"),
        &(&sharded, &snap_path),
        |b, (sharded, snap_path)| {
            b.iter(|| {
                let mut session = Pipeline::from_shards((*sharded).clone(), isvd_config).unwrap();
                let report = session.restore_from(snap_path).unwrap();
                assert!(report.checksum_ok && report.restored > 0);
                session.run_all().unwrap()
            })
        },
    );
    group.finish();
    std::fs::remove_file(&snap_path).ok();
}

fn sparse_interval_gram(m: &CsrShardedIntervalMatrix) {
    let mut acc = SparseStreamingIntervalGram::new(m.rows(), m.cols());
    for shard in m.shards() {
        acc.push_shard(shard).unwrap();
    }
    acc.finish().unwrap();
}

/// Sparse streamed interval Gram at rating-matrix shapes: row count grows
/// 4x per step at a fixed ~100 stored entries per row, so the per-row work
/// is constant and the trajectory shows whether the sparse route scales
/// linearly in `n` (the property that makes million-user matrices
/// feasible; the equivalent dense Gram would grow with `n·m²`, independent
/// of sparsity).
fn bench_sparse_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_scaling");
    // Each iteration folds n·(nnz/row)² products; cap the sample count so
    // the tallest size keeps the full bench run laptop-friendly.
    group.sample_size(if smoke_mode() { 1 } else { 3 });
    let (sizes, nnz_per_row): (&[usize], usize) = if smoke_mode() {
        (&[2_000], 20)
    } else {
        (&[10_000, 40_000, 160_000], 100)
    };
    let cols = 1024;
    for &n in sizes {
        let mut rng = SmallRng::seed_from_u64(6 + n as u64);
        let csr = generate_power_law(
            &PowerLawConfig::ratings_like(n, cols).with_nnz_per_row(nnz_per_row),
            &mut rng,
        );
        let sharded = CsrShardedIntervalMatrix::from_csr(&csr, 4096).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sharded, |b, s| {
            b.iter(|| sparse_interval_gram(s))
        });
    }
    group.finish();
}

/// Sparse against dense interval Gram on the same ~1%-density matrix
/// (bitwise-identical outputs). The ratio is the
/// `sparse_vs_dense_gram_speedup` field of the JSON — the sparse route
/// folds only the stored entries, so at density `d` the ideal speedup is
/// `1/d` on the multiply count.
fn bench_sparse_vs_dense_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense_gram");
    group.sample_size(sample_count());
    let (n, cols, nnz_per_row) = if smoke_mode() {
        (512, 256, 2)
    } else {
        (2048, 512, 5)
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let csr = generate_power_law(
        &PowerLawConfig::ratings_like(n, cols).with_nnz_per_row(nnz_per_row),
        &mut rng,
    );
    let dense = csr.to_dense();
    let sharded = CsrShardedIntervalMatrix::from_csr(&csr, 512).unwrap();
    group.bench_with_input(BenchmarkId::from_parameter("dense"), &dense, |b, m| {
        b.iter(|| m.interval_gram_streamed().unwrap())
    });
    group.bench_with_input(BenchmarkId::from_parameter("sparse"), &sharded, |b, s| {
        b.iter(|| sparse_interval_gram(s))
    });
    group.finish();
}

/// Multi-worker distributed Gram against the 1-process streamed sparse
/// fold at the tallest `sparse_scaling` size (160k rows, ~100 stored
/// entries per row). Four thread-mode workers each speak the full wire
/// protocol over loopback TCP, so the measurement includes every real
/// coordination cost — job serialization, checksummed frames, partial
/// state decode and the in-order merge — not just the parallel compute.
/// The ratio becomes the `distributed_gram_speedup` JSON field; the
/// outputs are bitwise identical (asserted by the distributed test
/// suites), so this group tracks pure wall-clock.
fn bench_distributed_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_gram");
    group.sample_size(if smoke_mode() { 1 } else { 3 });
    let (n, cols, nnz_per_row) = if smoke_mode() {
        (2_000, 256, 20)
    } else {
        (160_000, 1024, 100)
    };
    let mut rng = SmallRng::seed_from_u64(11);
    let csr = generate_power_law(
        &PowerLawConfig::ratings_like(n, cols).with_nnz_per_row(nnz_per_row),
        &mut rng,
    );
    let sharded = CsrShardedIntervalMatrix::from_csr(&csr, 4096).unwrap();
    group.bench_with_input(
        BenchmarkId::from_parameter("1_process"),
        &sharded,
        |b, s| b.iter(|| sparse_interval_gram(s)),
    );
    // Same kernel flavour the 1-process accumulator picks for this shape,
    // decided once at the coordinator (workers cannot derive it from their
    // local row counts).
    let spec = GramSpec {
        cols,
        mid_rad: use_mr_gram(n, cols),
        sparse: true,
    };
    group.bench_with_input(
        BenchmarkId::from_parameter("4_workers"),
        &sharded,
        |b, s| {
            b.iter(|| {
                // Worker startup (threads + TCP accept) is inside the
                // iteration on purpose: it is a real cost of choosing the
                // distributed route for a single Gram build.
                let mut coord = GramCoordinator::new(spec, 4, WorkerMode::Threads).unwrap();
                for shard in s.shards() {
                    coord.push_csr(shard).unwrap();
                }
                coord.finish().unwrap().finish().unwrap()
            })
        },
    );
    group.finish();
}

/// Out-of-core ingest: the same power-law CSR matrix (the tallest
/// `sparse_scaling` shape at ~100 stored entries per row) is written to
/// disk once as a text shard container and once as the binary
/// "ivmf shards v1" container, then measured two ways.
///
/// The `*_decode` pair times the *ingest itself* — a full
/// `CsrShardReader` pass decoding every shard — and its ratio becomes
/// the `ooc_ingest_speedup` JSON field: the direct measure of the
/// container + pooled-buffer work, which is what this route changed.
///
/// The `text`/`binary` pair times the end-to-end Gram through
/// `stream_csr_interval_gram` — the exact route
/// `Pipeline::new_streaming_csr_send` takes. The text pass pins
/// `IVMF_PREFETCH=0` (the historical route: decimal parse, inline I/O,
/// per-shard allocations); the binary pass runs the shipped default
/// (binary decode into pooled buffers, prefetch thread). Its ratio lands
/// as `ooc_gram_e2e_speedup`. On this benchmark's single-core container
/// the end-to-end number is bounded by the Gram arithmetic itself —
/// after the binary container cuts decode from ~25% of the wall to a
/// few percent, the remaining time is ~all compute, and the prefetch
/// thread has no second core to overlap on — so expect it well below
/// the decode ratio; it is recorded to show exactly that the route is
/// no longer I/O-bound. Outputs are bitwise identical — asserted once
/// outside the timed region.
fn bench_ooc_ingest(c: &mut Criterion) {
    use ivmf_data::stream::{stream_csr_interval_gram, CsrShardReader, CsrShardWriter};
    use ivmf_env::ShardFormat;

    let mut group = c.benchmark_group("ooc_ingest");
    group.sample_size(if smoke_mode() { 1 } else { 3 });
    let (n, cols, nnz_per_row) = if smoke_mode() {
        (2_000, 256, 20)
    } else {
        (160_000, 1024, 100)
    };
    let mut rng = SmallRng::seed_from_u64(12);
    let csr = generate_power_law(
        &PowerLawConfig::ratings_like(n, cols).with_nnz_per_row(nnz_per_row),
        &mut rng,
    );
    let sharded = CsrShardedIntervalMatrix::from_csr(&csr, 4096).unwrap();
    drop(csr);

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let text_path = dir.join(format!("ivmf_bench_ooc_{pid}_text.ivs"));
    let binary_path = dir.join(format!("ivmf_bench_ooc_{pid}_binary.ivs"));
    for (path, format) in [
        (&text_path, ShardFormat::Text),
        (&binary_path, ShardFormat::Binary),
    ] {
        let mut w = CsrShardWriter::create_with_format(path, n, cols, format).unwrap();
        for shard in sharded.shards() {
            w.push_shard(shard).unwrap();
        }
        w.finish().unwrap();
    }
    drop(sharded);

    // The two containers must decode to bitwise-identical Grams before
    // the ratio means anything.
    let g_text = stream_csr_interval_gram(&text_path, 4096).unwrap();
    let g_binary = stream_csr_interval_gram(&binary_path, 4096).unwrap();
    assert_eq!(g_text.lo().as_slice(), g_binary.lo().as_slice());
    assert_eq!(g_text.hi().as_slice(), g_binary.hi().as_slice());
    drop((g_text, g_binary));

    // Ingest proper: decode every shard, no Gram. The raw readers (no
    // prefetch wrapper) isolate the container + pooled-buffer cost.
    let decode_pass = |p: &std::path::Path| {
        let mut r = CsrShardReader::open(p, 4096).unwrap();
        let mut nnz = 0usize;
        while let Some(s) = r.read_shard().unwrap() {
            nnz += s.nnz();
            ivmf_interval::recycle_csr_interval_shard(s);
        }
        nnz
    };
    group.bench_with_input(
        BenchmarkId::from_parameter("text_decode"),
        &text_path,
        |b, p| b.iter(|| decode_pass(p)),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("binary_decode"),
        &binary_path,
        |b, p| b.iter(|| decode_pass(p)),
    );

    std::env::set_var(ivmf_env::PREFETCH, "0");
    group.bench_with_input(BenchmarkId::from_parameter("text"), &text_path, |b, p| {
        b.iter(|| stream_csr_interval_gram(p, 4096).unwrap())
    });
    std::env::set_var(ivmf_env::PREFETCH, "1");
    group.bench_with_input(
        BenchmarkId::from_parameter("binary"),
        &binary_path,
        |b, p| b.iter(|| stream_csr_interval_gram(p, 4096).unwrap()),
    );
    std::env::remove_var(ivmf_env::PREFETCH);
    group.finish();
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&binary_path).ok();
}

fn bench_sym_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    group.sample_size(sample_count());
    let sizes: &[usize] = if smoke_mode() { &[128] } else { &[128, 256] };
    for &n in sizes {
        let mut rng = SmallRng::seed_from_u64(3 + n as u64);
        let a = symmetric_matrix(&mut rng, n, -2.0, 2.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| sym_eigen(a).unwrap())
        });
    }
    group.finish();
}

/// The certified top-k solver against the full-spectrum oracle, on the
/// kind of matrix the pipeline actually hands it: the Gram of a wide
/// factor at the motivating m=256 size, truncated to the paper rank
/// r=20. The top-k path is pinned on via explicit [`TopkOptions`] (not
/// the env knob) so the measurement is stable under every CI pass; the
/// ratio becomes the `sym_eigen_topk_vs_full_speedup` JSON field.
fn bench_sym_eigen_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen_topk_vs_full");
    group.sample_size(sample_count());
    let (rows, n, k) = if smoke_mode() {
        (128, 96, 8)
    } else {
        (320, 256, 20)
    };
    let mut rng = SmallRng::seed_from_u64(8);
    let a = uniform_matrix(&mut rng, rows, n, -1.0, 1.0).gram();
    let opts = TopkOptions::default().with_force(true);
    // The speedup claim only holds if the iteration certifies inside its
    // basis cap; a fallback would silently measure dense + Lanczos cost.
    let (_, report) = ivmf_linalg::sym_eigen_topk_report(&a, k, &opts).unwrap();
    assert!(
        !report.used_fallback,
        "top-k bench case fell back to the dense solver — tune the basis cap"
    );
    group.bench_with_input(BenchmarkId::from_parameter("full"), &a, |b, a| {
        b.iter(|| sym_eigen(a).unwrap())
    });
    group.bench_with_input(BenchmarkId::from_parameter("topk"), &a, |b, a| {
        b.iter(|| sym_eigen_topk_with(a, k, &opts).unwrap())
    });
    group.finish();
}

/// Per-stage median wall-clock of ISVD2's stage trace at the motivating
/// m=256 Gram width (560×256 input — a taller-than-paper users×items
/// shape, the same scaling direction as the sharded-gram and append-rows
/// groups — rank 20, fresh pipeline per rep), sorted slowest-first. ISVD2 is the first Gram-route algorithm in
/// `run_all`, so its trace holds the cold IntervalGram / BoundEigenLo /
/// BoundEigenHi timings; cache hits are excluded. This documents the
/// pipeline's bottleneck ordering — with the certified top-k eigensolver
/// in place, the eigen stages sit *below* the interval Gram instead of
/// dominating the trace — and the `stage_trace_m256_top` JSON field
/// records which stage currently tops it.
fn stage_trace_m256() -> Vec<(String, u128)> {
    let reps = if smoke_mode() { 1 } else { 5 };
    let mut rng = SmallRng::seed_from_u64(9);
    let m = generate_uniform(
        &SyntheticConfig::paper_default().with_shape(560, 256),
        &mut rng,
    );
    let cfg = IsvdConfig::new(20);
    let mut samples: std::collections::BTreeMap<String, Vec<u128>> = Default::default();
    for _ in 0..reps {
        let results = run_all(&m, &cfg).unwrap();
        for ev in &results[2].stages {
            if !ev.cache_hit {
                samples
                    .entry(format!("{:?}", ev.stage))
                    .or_default()
                    .push(ev.duration.as_nanos());
            }
        }
    }
    let mut medians: Vec<(String, u128)> = samples
        .into_iter()
        .map(|(name, mut v)| {
            v.sort_unstable();
            let m = v[v.len() / 2];
            (name, m)
        })
        .collect();
    medians.sort_by_key(|m| std::cmp::Reverse(m.1));
    medians
}

fn median_of(results: &[(String, Duration)], name: &str) -> Option<f64> {
    results
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, d)| d.as_secs_f64())
}

/// Median-over-median speedup of the shared-stage batched driver against
/// five sequential `isvd` calls, if both measurements were recorded.
fn batched_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let sequential = median_of(results, "batched_vs_sequential/sequential")?;
    let batched = median_of(results, "batched_vs_sequential/batched")?;
    (batched > 0.0).then(|| sequential / batched)
}

/// Median-over-median speedup of the incremental append refresh against
/// the cold recompute.
fn append_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let cold = median_of(results, "append_rows/cold_recompute")?;
    let incremental = median_of(results, "append_rows/incremental")?;
    (incremental > 0.0).then(|| cold / incremental)
}

/// Median-over-median speedup of a warm restart (snapshot restore + all
/// five algorithms as cache hits) against the cold five-algorithm run.
fn snapshot_restore_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let cold = median_of(results, "snapshot_restore/cold")?;
    let restored = median_of(results, "snapshot_restore/restored")?;
    (restored > 0.0).then(|| cold / restored)
}

/// Median-over-median speedup of the sparse interval Gram against the
/// dense route on the same ~1%-density matrix.
fn sparse_gram_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let dense = median_of(results, "sparse_vs_dense_gram/dense")?;
    let sparse = median_of(results, "sparse_vs_dense_gram/sparse")?;
    (sparse > 0.0).then(|| dense / sparse)
}

/// Median-over-median speedup of the certified top-k eigensolver against
/// the full-spectrum dense solver at the motivating (n=256, k=20) size.
fn topk_eigen_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let full = median_of(results, "sym_eigen_topk_vs_full/full")?;
    let topk = median_of(results, "sym_eigen_topk_vs_full/topk")?;
    (topk > 0.0).then(|| full / topk)
}

/// Median-over-median speedup of the 4-worker distributed Gram fan-out
/// against the 1-process streamed sparse fold at the 160k-row scale.
fn distributed_gram_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let single = median_of(results, "distributed_gram/1_process")?;
    let distributed = median_of(results, "distributed_gram/4_workers")?;
    (distributed > 0.0).then(|| single / distributed)
}

/// Median-over-median speedup of decoding the binary container into
/// pooled buffers against parsing the text container, full pass at the
/// 160k-row scale — the ingest cost itself, which is what the binary
/// route changed.
fn ooc_ingest_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let text = median_of(results, "ooc_ingest/text_decode")?;
    let binary = median_of(results, "ooc_ingest/binary_decode")?;
    (binary > 0.0).then(|| text / binary)
}

/// Median-over-median speedup of the binary+pool+prefetch route against
/// the text container through the full out-of-core Gram. Compute-bound
/// on a single-core container (see `bench_ooc_ingest`), so this ratio
/// mostly certifies that ingest stopped being the bottleneck.
fn ooc_gram_e2e_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let text = median_of(results, "ooc_ingest/text")?;
    let binary = median_of(results, "ooc_ingest/binary")?;
    (binary > 0.0).then(|| text / binary)
}

/// Entries the 0.9x alert has flagged in past runs that were re-measured
/// and attributed to run-to-run sampling noise, not a real regression:
/// both groups time sub-ranges of the same workload on a single-core
/// container, where one descheduled sample moves a 3-sample median past
/// the threshold. The alert still fires for them — a genuine slide should
/// stay loud — but carries this context so readers do not chase ghosts.
const KNOWN_NOISY: &[(&str, &str)] = &[
    (
        "append_rows/incremental",
        "flagged at 0.849x and again lower on a later run; a direct A/B \
         probe of the warmed append+finish path (50 appends, release, \
         current vs pre-change build) timed identical medians, so the \
         swings are scheduling noise on sub-ms samples, not a code \
         regression",
    ),
    (
        "sharded_gram/sharded_480x250_x8",
        "flagged at 0.890x, re-measured above baseline on consecutive \
         runs; dense twin in the same group stayed flat",
    ),
    (
        "sparse_scaling/40000",
        "flagged at 0.482x and 0.662x on consecutive identical-binary \
         runs (a 37% spread on its own); an interval-level A/B probe \
         (4 rounds of the full sparse interval Gram over 40k rows, \
         pooled build vs pre-pool HEAD) gave overlapping round times \
         with identical medians, and the committed baseline is ~20% \
         faster than linear scaling from the 10k entry predicts, so \
         the flag is a lucky baseline plus scheduling noise, not a \
         regression from the pooled decode scratch",
    ),
];

fn emit_json(
    results: &[(String, Duration)],
    baselines: &[(String, u128)],
    stage_trace: &[(String, u128)],
) -> std::io::Result<()> {
    let out_path = std::env::var("IVMF_BENCH_ISVD_OUT").unwrap_or_else(|_| committed_json_path());
    let baseline_of = |name: &str| {
        baselines
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ns)| ns)
            .filter(|&ns| ns > 0)
    };
    let mut json = String::from("{\n  \"bench\": \"isvd_pipeline\",\n  \"results\": [\n");
    for (i, (name, median)) in results.iter().enumerate() {
        let ns = median.as_nanos();
        match baseline_of(name) {
            Some(base) => {
                let speedup = base as f64 / ns.max(1) as f64;
                // A regression past 10% of the committed baseline should be
                // impossible to miss in the run log — the JSON alone is easy
                // to skim past when eyeballing a PR's bench output.
                if speedup < 0.9 && !smoke_mode() {
                    let note = KNOWN_NOISY
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|&(_, note)| format!(" [known-noisy entry: {note}]"))
                        .unwrap_or_default();
                    eprintln!(
                        "WARNING: benchmark regression: {name} at {speedup:.3}x of the \
                         committed baseline (below the 0.9x alert threshold){note}"
                    );
                }
                json.push_str(&format!(
                    "    {{\"name\": \"{name}\", \"median_ns\": {ns}, \
                     \"baseline_ns\": {base}, \"speedup_vs_baseline\": {speedup:.3}}}{}\n",
                    if i + 1 < results.len() { "," } else { "" }
                ))
            }
            None => json.push_str(&format!(
                "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{}\n",
                if i + 1 < results.len() { "," } else { "" }
            )),
        }
    }
    json.push_str("  ],\n");
    if let Some(speedup) = batched_speedup(results) {
        json.push_str(&format!(
            "  \"batched_vs_sequential_speedup\": {speedup:.3},\n"
        ));
    }
    if let Some(speedup) = append_speedup(results) {
        json.push_str(&format!("  \"append_vs_cold_speedup\": {speedup:.3},\n"));
    }
    if let Some(speedup) = snapshot_restore_speedup(results) {
        json.push_str(&format!(
            "  \"snapshot_restore_vs_cold_speedup\": {speedup:.3},\n"
        ));
    }
    if let Some(speedup) = sparse_gram_speedup(results) {
        json.push_str(&format!(
            "  \"sparse_vs_dense_gram_speedup\": {speedup:.3},\n"
        ));
    }
    if let Some(speedup) = topk_eigen_speedup(results) {
        json.push_str(&format!(
            "  \"sym_eigen_topk_vs_full_speedup\": {speedup:.3},\n"
        ));
    }
    if let Some(speedup) = distributed_gram_speedup(results) {
        json.push_str(&format!("  \"distributed_gram_speedup\": {speedup:.3},\n"));
    }
    if let Some(speedup) = ooc_ingest_speedup(results) {
        json.push_str(&format!("  \"ooc_ingest_speedup\": {speedup:.3},\n"));
    }
    if let Some(speedup) = ooc_gram_e2e_speedup(results) {
        json.push_str(&format!("  \"ooc_gram_e2e_speedup\": {speedup:.3},\n"));
    }
    if let Some((top, _)) = stage_trace.first() {
        json.push_str("  \"stage_trace_m256_medians_ns\": {\n");
        for (i, (name, ns)) in stage_trace.iter().enumerate() {
            json.push_str(&format!(
                "    \"{name}\": {ns}{}\n",
                if i + 1 < stage_trace.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
        json.push_str(&format!("  \"stage_trace_m256_top\": \"{top}\",\n"));
    }
    json.push_str(&format!(
        "  \"smoke\": {},\n  \"threads\": {}\n}}\n",
        smoke_mode(),
        ivmf_par::configured_threads()
    ));
    // Atomic commit: a benchmark run killed mid-write must never leave a
    // torn half-report where the committed baselines used to be.
    ivmf_data::atomic::atomic_write_bytes(&out_path, json)?;
    eprintln!("wrote ISVD pipeline benchmark results to {out_path}");
    Ok(())
}

fn main() {
    // The committed baselines were recorded at IVMF_THREADS=1; pin the
    // pool to the same configuration (unless the caller exports a count
    // explicitly) so speedup_vs_baseline stays apples-to-apples.
    if std::env::var(ivmf_par::THREADS_ENV).is_err() {
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
    }
    // Cold measurements must stay cold: the auto-snapshot knob would
    // otherwise warm every "fresh" session from the previous iteration's
    // save-on-drop. The snapshot_restore group measures restores
    // explicitly through its own checkpoint file.
    std::env::remove_var(ivmf_env::SNAPSHOT_DIR);
    // Read the committed medians *before* running (and overwriting them).
    let baselines = read_bench_medians(&committed_json_path());

    let mut criterion = Criterion::default();
    bench_isvd_pipeline(&mut criterion);
    bench_batched_vs_sequential(&mut criterion);
    bench_sharded_gram(&mut criterion);
    bench_append_rows(&mut criterion);
    bench_snapshot_restore(&mut criterion);
    bench_sparse_scaling(&mut criterion);
    bench_sparse_vs_dense_gram(&mut criterion);
    bench_distributed_gram(&mut criterion);
    bench_ooc_ingest(&mut criterion);
    bench_sym_eigen(&mut criterion);
    bench_sym_eigen_topk(&mut criterion);

    let results = criterion::recorded_measurements();
    for (name, median) in &results {
        if let Some(&(_, base)) = baselines.iter().find(|(n, _)| n == name) {
            if base > 0 {
                println!(
                    "{name}: {:.2}x vs committed baseline",
                    base as f64 / median.as_nanos().max(1) as f64
                );
            }
        }
    }
    if let Some(speedup) = batched_speedup(&results) {
        println!("batched_vs_sequential: {speedup:.2}x (shared-stage cache)");
    }
    if let Some(speedup) = append_speedup(&results) {
        println!("append_rows: {speedup:.2}x incremental vs cold recompute");
    }
    if let Some(speedup) = snapshot_restore_speedup(&results) {
        println!("snapshot_restore: {speedup:.2}x warm restart vs cold recompute");
    }
    if let Some(speedup) = sparse_gram_speedup(&results) {
        println!("sparse_vs_dense_gram: {speedup:.2}x sparse vs dense at ~1% density");
    }
    if let Some(speedup) = topk_eigen_speedup(&results) {
        println!("sym_eigen_topk_vs_full: {speedup:.2}x top-k vs full spectrum");
    }
    if let Some(speedup) = distributed_gram_speedup(&results) {
        println!("distributed_gram: {speedup:.2}x with 4 workers vs 1 process at 160k rows");
    }
    if let Some(speedup) = ooc_ingest_speedup(&results) {
        println!("ooc_ingest: {speedup:.2}x binary+pool decode vs text parse at 160k rows");
    }
    if let Some(speedup) = ooc_gram_e2e_speedup(&results) {
        println!(
            "ooc_ingest: {speedup:.2}x end-to-end Gram (compute-bound on one core; \
             see bench docs)"
        );
    }
    let stage_trace = stage_trace_m256();
    if let Some((top, ns)) = stage_trace.first() {
        println!(
            "stage_trace m=256: top stage {top} ({:.2}ms median)",
            *ns as f64 / 1e6
        );
    }
    if let Err(e) = emit_json(&results, &baselines, &stage_trace) {
        eprintln!("failed to write BENCH_isvd.json: {e}");
    }
}
