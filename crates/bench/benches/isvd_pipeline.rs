//! End-to-end trajectory bench for the decomposition pipelines: wall-clock
//! medians of ISVD0–ISVD4 (paper default 40×250 synthetic config, rank 20),
//! the shared-stage batched driver against the sequential five-algorithm
//! path (`batched_vs_sequential`, whose speedup is recorded in the JSON),
//! and the `sym_eigen` kernel that backs every eigen-route decomposition,
//! written to `BENCH_isvd.json` at the repository root (override with
//! `IVMF_BENCH_ISVD_OUT`).
//!
//! Unlike `linalg_kernels` — which tracks isolated kernels against each
//! other — this bench tracks the *algorithm-level* trajectory across PRs:
//! each recorded name also carries the median measured on the commit just
//! before the packed-kernel rebuild ([`PRE_CHANGE_BASELINE_NS`], same
//! machine, single-threaded — this bench pins `IVMF_THREADS=1` unless the
//! caller exports a count, keeping the ratios apples-to-apples), so the
//! JSON reports how far each pipeline has moved since then. Set
//! `IVMF_BENCH_SMOKE=1` to run every benchmark with a single sample (CI
//! bitrot guard).

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use ivmf_core::isvd::isvd;
use ivmf_core::pipeline::run_all;
use ivmf_core::{IsvdAlgorithm, IsvdConfig};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_linalg::eigen_sym::sym_eigen;
use ivmf_linalg::random::symmetric_matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Medians recorded on the commit immediately before the packed
/// register-tiled kernel rebuild (same machine, `IVMF_THREADS=1`), so the
/// emitted JSON can report each pipeline's improvement over that reference
/// point. `0` means "no baseline recorded" and suppresses the ratio.
const PRE_CHANGE_BASELINE_NS: &[(&str, u128)] = &[
    ("isvd_pipeline/ISVD0", 879_447),
    ("isvd_pipeline/ISVD1", 1_884_989),
    ("isvd_pipeline/ISVD2", 72_127_202),
    ("isvd_pipeline/ISVD3", 79_383_911),
    ("isvd_pipeline/ISVD4", 71_784_384),
    ("sym_eigen/128", 10_644_512),
    ("sym_eigen/256", 107_244_895),
];

use ivmf_bench::{bench_sample_count as sample_count, bench_smoke_mode as smoke_mode};

fn bench_isvd_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("isvd_pipeline");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(1);
    let m = generate_uniform(&config, &mut rng);
    for alg in IsvdAlgorithm::all() {
        let isvd_config = IsvdConfig::new(rank).with_algorithm(alg);
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &m, |b, m| {
            b.iter(|| isvd(m, &isvd_config).unwrap())
        });
    }
    group.finish();
}

/// The shared-stage batched driver against the sequential path: both
/// evaluate all five ISVD algorithms on the paper-default matrix (bitwise
/// identical outputs); the batched run computes the interval Gram, the
/// bound eigendecompositions, the ILSA alignment and the aligned solve at
/// most once across the whole roster.
fn bench_batched_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_sequential");
    group.sample_size(sample_count());
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(2);
    let m = generate_uniform(&config, &mut rng);
    let isvd_config = IsvdConfig::new(rank);
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &m, |b, m| {
        b.iter(|| {
            for alg in IsvdAlgorithm::all() {
                isvd(m, &isvd_config.with_algorithm(alg)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("batched"), &m, |b, m| {
        b.iter(|| run_all(m, &isvd_config).unwrap())
    });
    group.finish();
}

fn bench_sym_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen");
    group.sample_size(sample_count());
    let sizes: &[usize] = if smoke_mode() { &[128] } else { &[128, 256] };
    for &n in sizes {
        let mut rng = SmallRng::seed_from_u64(3 + n as u64);
        let a = symmetric_matrix(&mut rng, n, -2.0, 2.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| sym_eigen(a).unwrap())
        });
    }
    group.finish();
}

/// Median-over-median speedup of the shared-stage batched driver against
/// five sequential `isvd` calls, if both measurements were recorded.
fn batched_speedup(results: &[(String, Duration)]) -> Option<f64> {
    let median_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_secs_f64())
    };
    let sequential = median_of("batched_vs_sequential/sequential")?;
    let batched = median_of("batched_vs_sequential/batched")?;
    (batched > 0.0).then(|| sequential / batched)
}

fn baseline_of(name: &str) -> Option<u128> {
    PRE_CHANGE_BASELINE_NS
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, ns)| ns)
        .filter(|&ns| ns > 0)
}

fn emit_json(results: &[(String, Duration)]) -> std::io::Result<()> {
    let out_path = std::env::var("IVMF_BENCH_ISVD_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_isvd.json",
            env!("CARGO_MANIFEST_DIR") // crates/bench -> repository root
        )
    });
    let mut json = String::from("{\n  \"bench\": \"isvd_pipeline\",\n  \"results\": [\n");
    for (i, (name, median)) in results.iter().enumerate() {
        let ns = median.as_nanos();
        match baseline_of(name) {
            Some(base) => json.push_str(&format!(
                "    {{\"name\": \"{name}\", \"median_ns\": {ns}, \
                 \"pre_change_ns\": {base}, \"speedup_vs_pre_change\": {:.3}}}{}\n",
                base as f64 / ns.max(1) as f64,
                if i + 1 < results.len() { "," } else { "" }
            )),
            None => json.push_str(&format!(
                "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{}\n",
                if i + 1 < results.len() { "," } else { "" }
            )),
        }
    }
    json.push_str("  ],\n");
    if let Some(speedup) = batched_speedup(results) {
        json.push_str(&format!(
            "  \"batched_vs_sequential_speedup\": {speedup:.3},\n"
        ));
    }
    json.push_str(&format!(
        "  \"smoke\": {},\n  \"threads\": {}\n}}\n",
        smoke_mode(),
        ivmf_par::configured_threads()
    ));
    std::fs::write(&out_path, json)?;
    eprintln!("wrote ISVD pipeline benchmark results to {out_path}");
    Ok(())
}

fn main() {
    // The hardcoded pre-change baselines were recorded at IVMF_THREADS=1;
    // pin the pool to the same configuration (unless the caller exports a
    // count explicitly) so speedup_vs_pre_change stays apples-to-apples.
    if std::env::var(ivmf_par::THREADS_ENV).is_err() {
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
    }
    let mut criterion = Criterion::default();
    bench_isvd_pipeline(&mut criterion);
    bench_batched_vs_sequential(&mut criterion);
    bench_sym_eigen(&mut criterion);

    let results = criterion::recorded_measurements();
    for (name, median) in &results {
        if let Some(base) = baseline_of(name) {
            println!(
                "{name}: {:.2}x vs pre-change baseline",
                base as f64 / median.as_nanos().max(1) as f64
            );
        }
    }
    if let Some(speedup) = batched_speedup(&results) {
        println!("batched_vs_sequential: {speedup:.2}x (shared-stage cache)");
    }
    if let Err(e) = emit_json(&results) {
        eprintln!("failed to write BENCH_isvd.json: {e}");
    }
}
