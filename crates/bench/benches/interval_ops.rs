//! Micro-benchmarks of the interval-algebra substrate: interval matrix
//! multiplication (the dominant cost of ISVD2-4 preprocessing) and the
//! average-replacement repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_interval_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_matmul");
    group.sample_size(10);
    for &size in &[20usize, 40, 80] {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = SyntheticConfig::paper_default().with_shape(size, size);
        let a = generate_uniform(&config, &mut rng);
        let b = generate_uniform(&config, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bencher, _| {
            bencher.iter(|| a.interval_matmul(&b).unwrap());
        });
    }
    group.finish();
}

fn bench_interval_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_gram");
    group.sample_size(10);
    for &(rows, cols) in &[(40usize, 60usize), (40, 250)] {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = generate_uniform(
            &SyntheticConfig::paper_default().with_shape(rows, cols),
            &mut rng,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &m,
            |bencher, m| bencher.iter(|| m.interval_gram().unwrap()),
        );
    }
    group.finish();
}

fn bench_average_replacement(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let m = generate_uniform(
        &SyntheticConfig::paper_default().with_shape(200, 200),
        &mut rng,
    );
    // Swap the bounds so every entry needs repair (worst case).
    let swapped =
        ivmf_interval::IntervalMatrix::from_bounds(m.hi().clone(), m.lo().clone()).unwrap();
    c.bench_function("average_replacement_200x200", |b| {
        b.iter(|| swapped.average_replacement())
    });
}

criterion_group!(
    benches,
    bench_interval_matmul,
    bench_interval_gram,
    bench_average_replacement
);
criterion_main!(benches);
