//! Training-throughput benchmarks of the PMF family (PMF / I-PMF / AI-PMF),
//! measuring epochs over a small MovieLens-like workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivmf_core::pmf::{aipmf, ipmf, pmf, PmfConfig};
use ivmf_data::ratings::{cf_interval_matrix, cf_scalar_matrix, movielens_like, MovieLensConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_pmf_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_family");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(1);
    let dataset = movielens_like(&MovieLensConfig::small(), &mut rng);
    let (scalar, scalar_obs) = cf_scalar_matrix(&dataset);
    let (interval, interval_obs) = cf_interval_matrix(&dataset, 0.5);
    let config = PmfConfig::new(10).with_epochs(5);

    group.bench_with_input(BenchmarkId::from_parameter("PMF"), &(), |b, _| {
        b.iter(|| pmf(&scalar, &scalar_obs, &config).unwrap())
    });
    group.bench_with_input(BenchmarkId::from_parameter("I-PMF"), &(), |b, _| {
        b.iter(|| ipmf(&interval, &interval_obs, &config).unwrap())
    });
    group.bench_with_input(BenchmarkId::from_parameter("AI-PMF"), &(), |b, _| {
        b.iter(|| aipmf(&interval, &interval_obs, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pmf_family);
criterion_main!(benches);
