//! End-to-end decomposition latency of each ISVD strategy on the paper's
//! default synthetic configuration — the timing companion of Figure 6b.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivmf_core::isvd::isvd;
use ivmf_core::{IsvdAlgorithm, IsvdConfig};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_lp::lp_isvd;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_isvd_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("isvd_default_config");
    group.sample_size(10);
    let config = SyntheticConfig::paper_default();
    let rank = config.default_rank();
    let mut rng = SmallRng::seed_from_u64(1);
    let m = generate_uniform(&config, &mut rng);
    for alg in IsvdAlgorithm::all() {
        let isvd_config = IsvdConfig::new(rank).with_algorithm(alg);
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &m, |b, m| {
            b.iter(|| isvd(m, &isvd_config).unwrap())
        });
    }
    let lp_config = IsvdConfig::new(rank);
    group.bench_with_input(BenchmarkId::from_parameter("LP"), &m, |b, m| {
        b.iter(|| lp_isvd(m, &lp_config).unwrap())
    });
    group.finish();
}

fn bench_isvd4_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("isvd4_by_rank");
    group.sample_size(10);
    let config = SyntheticConfig::paper_default();
    let mut rng = SmallRng::seed_from_u64(2);
    let m = generate_uniform(&config, &mut rng);
    for &rank in &[5usize, 10, 20, 40] {
        let isvd_config = IsvdConfig::new(rank).with_algorithm(IsvdAlgorithm::Isvd4);
        group.bench_with_input(BenchmarkId::from_parameter(rank), &m, |b, m| {
            b.iter(|| isvd(m, &isvd_config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_isvd_algorithms, bench_isvd4_ranks);
criterion_main!(benches);
