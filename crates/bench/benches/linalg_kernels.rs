//! Kernel-level benchmarks of the matrix-multiplication layer: the seed
//! i-k-j scalar kernel vs the packed register-tiled GEBP kernel, the
//! symmetry-aware SYRK Gram kernel vs the transpose-then-multiply route,
//! and the paper's four-product interval matmul vs the Rump
//! midpoint–radius two-product enclosure.
//!
//! The scalar-kernel comparisons are **single-threaded**: unless the caller
//! exports `IVMF_THREADS` explicitly, this bench pins it to `1` so the
//! recorded speedups isolate kernel quality from the worker pool.
//!
//! Unlike the other benches this one has a custom `main`: after the timing
//! groups run it collects the recorded medians from the criterion stub and
//! writes them — plus the packed-vs-naive, SYRK-vs-matmul and mr-vs-4mul
//! speedups at 256×256 — to `BENCH_linalg.json` at the repository root
//! (override the path with `IVMF_BENCH_OUT`), so the kernel perf trajectory
//! is recorded across PRs. Set `IVMF_BENCH_SMOKE=1` to run every benchmark
//! with a single sample (CI bitrot guard).

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
use ivmf_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SIZES: [usize; 3] = [64, 128, 256];

use ivmf_bench::{bench_sample_count as sample_count, bench_smoke_mode as smoke_mode};

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    ivmf_linalg::random::uniform_matrix(&mut rng, rows, cols, -1.0, 1.0)
}

fn bench_scalar_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_naive");
    group.sample_size(sample_count());
    for &n in &SIZES {
        let a = random_matrix(1, n, n);
        let b = random_matrix(2, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| a.matmul_naive(&b).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("matmul_packed");
    group.sample_size(sample_count());
    for &n in &SIZES {
        let a = random_matrix(1, n, n);
        let b = random_matrix(2, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| a.matmul(&b).unwrap());
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    // Baseline: the transpose-then-multiply route the call sites used
    // before the SYRK kernels (on the packed matmul, so the recorded
    // speedup isolates the symmetry win, not the packing win).
    let mut group = c.benchmark_group("gram_via_matmul");
    group.sample_size(sample_count());
    for &n in &SIZES {
        let m = random_matrix(3, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| m.transpose().matmul(&m).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gram_syrk");
    group.sample_size(sample_count());
    for &n in &SIZES {
        let m = random_matrix(3, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| m.gram());
        });
    }
    group.finish();
}

fn bench_interval_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_matmul_4mul");
    group.sample_size(sample_count());
    for &n in &SIZES {
        let mut rng = SmallRng::seed_from_u64(3);
        let config = SyntheticConfig::paper_default().with_shape(n, n);
        let a = generate_uniform(&config, &mut rng);
        let b = generate_uniform(&config, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| a.interval_matmul(&b).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("interval_matmul_mr");
    group.sample_size(sample_count());
    for &n in &SIZES {
        let mut rng = SmallRng::seed_from_u64(3);
        let config = SyntheticConfig::paper_default().with_shape(n, n);
        let a = generate_uniform(&config, &mut rng);
        let b = generate_uniform(&config, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| a.interval_matmul_mr(&b).unwrap());
        });
    }
    group.finish();
}

/// Looks up the median for a `group/size` benchmark name.
fn median_of(results: &[(String, Duration)], name: &str) -> Option<Duration> {
    results
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, median)| median)
}

fn speedup(results: &[(String, Duration)], baseline: &str, fast: &str) -> Option<f64> {
    let base = median_of(results, baseline)?.as_secs_f64();
    let new = median_of(results, fast)?.as_secs_f64();
    (new > 0.0).then(|| base / new)
}

/// The tracked `(label, baseline, fast)` speedup triples at 256×256.
const SPEEDUP_PAIRS: [(&str, &str, &str); 3] = [
    (
        "matmul_packed_vs_naive_256",
        "matmul_naive/256",
        "matmul_packed/256",
    ),
    (
        "gram_syrk_vs_matmul_256",
        "gram_via_matmul/256",
        "gram_syrk/256",
    ),
    (
        "interval_mr_vs_4mul_256",
        "interval_matmul_4mul/256",
        "interval_matmul_mr/256",
    ),
];

fn emit_json(results: &[(String, Duration)]) -> std::io::Result<()> {
    let out_path = std::env::var("IVMF_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_linalg.json",
            env!("CARGO_MANIFEST_DIR") // crates/bench -> repository root
        )
    });
    let mut json = String::from("{\n  \"bench\": \"linalg_kernels\",\n  \"results\": [\n");
    for (i, (name, median)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {}}}{}\n",
            median.as_nanos(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let lines: Vec<String> = SPEEDUP_PAIRS
        .iter()
        .filter_map(|&(label, base, fast)| {
            speedup(results, base, fast).map(|s| format!("    \"{label}\": {s:.3}"))
        })
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"smoke\": {},\n  \"threads\": {}\n}}\n",
        smoke_mode(),
        ivmf_par::configured_threads()
    ));
    // Atomic commit: a benchmark run killed mid-write must never leave a
    // torn half-report where the committed baselines used to be.
    ivmf_data::atomic::atomic_write_bytes(&out_path, json)?;
    eprintln!("wrote kernel benchmark results to {out_path}");
    Ok(())
}

fn main() {
    // Kernel-vs-kernel comparisons are single-threaded unless the caller
    // pins a worker count explicitly.
    if std::env::var(ivmf_par::THREADS_ENV).is_err() {
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
    }
    let mut criterion = Criterion::default();
    bench_scalar_matmul(&mut criterion);
    bench_gram(&mut criterion);
    bench_interval_matmul(&mut criterion);

    let results = criterion::recorded_measurements();
    for &(label, base, fast) in &SPEEDUP_PAIRS {
        if let Some(s) = speedup(&results, base, fast) {
            println!("speedup at 256x256 ({label}): {s:.2}x");
        }
    }
    if let Err(e) = emit_json(&results) {
        eprintln!("failed to write BENCH_linalg.json: {e}");
    }
}
