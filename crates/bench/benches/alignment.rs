//! Micro-benchmarks of the ILSA alignment stage: the three matchers
//! (greedy, Hungarian, stable marriage) at increasing rank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivmf_align::{ilsa, Matcher};
use ivmf_linalg::random::uniform_matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilsa_matchers");
    group.sample_size(20);
    for &rank in &[10usize, 20, 50, 100] {
        let mut rng = SmallRng::seed_from_u64(1);
        let v_min = uniform_matrix(&mut rng, 250, rank, -1.0, 1.0);
        let v_max = uniform_matrix(&mut rng, 250, rank, -1.0, 1.0);
        for (name, matcher) in [
            ("greedy", Matcher::Greedy),
            ("hungarian", Matcher::Hungarian),
            ("stable", Matcher::StableMarriage),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, rank),
                &(&v_min, &v_max),
                |b, (v_min, v_max)| b.iter(|| ilsa(v_min, v_max, matcher).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
