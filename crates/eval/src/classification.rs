//! 1-nearest-neighbour classification (scalar and interval features) and
//! classification metrics (accuracy, macro-F1).
//!
//! The paper's NN-based face classification (Figure 8b) projects every
//! image onto the latent space (`U × Σ`), splits the rows 50/50 per person,
//! and classifies each test row by its nearest training row — using the
//! interval Euclidean distance of Section 6.1.2 when the projection is
//! interval-valued. Quality is reported as an F1 score.

use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;

use crate::{interval_row_distance, scalar_row_distance, EvalError, Result};

/// Classifies each test row by the label of its nearest training row
/// (scalar Euclidean distance).
pub fn knn1_scalar(train: &Matrix, train_labels: &[usize], test: &Matrix) -> Result<Vec<usize>> {
    if train.rows() != train_labels.len() {
        return Err(EvalError::LengthMismatch {
            what: "train rows vs labels",
            left: train.rows(),
            right: train_labels.len(),
        });
    }
    if train.rows() == 0 || test.rows() == 0 {
        return Err(EvalError::Empty);
    }
    if train.cols() != test.cols() {
        return Err(EvalError::LengthMismatch {
            what: "feature dimensions",
            left: train.cols(),
            right: test.cols(),
        });
    }
    Ok((0..test.rows())
        .map(|t| {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for i in 0..train.rows() {
                let d = scalar_row_distance(test, t, train, i);
                if d < best_dist {
                    best_dist = d;
                    best = i;
                }
            }
            train_labels[best]
        })
        .collect())
}

/// Classifies each test row by the label of its nearest training row using
/// the interval Euclidean distance of Section 6.1.2.
pub fn knn1_interval(
    train: &IntervalMatrix,
    train_labels: &[usize],
    test: &IntervalMatrix,
) -> Result<Vec<usize>> {
    if train.rows() != train_labels.len() {
        return Err(EvalError::LengthMismatch {
            what: "train rows vs labels",
            left: train.rows(),
            right: train_labels.len(),
        });
    }
    if train.rows() == 0 || test.rows() == 0 {
        return Err(EvalError::Empty);
    }
    if train.cols() != test.cols() {
        return Err(EvalError::LengthMismatch {
            what: "feature dimensions",
            left: train.cols(),
            right: test.cols(),
        });
    }
    Ok((0..test.rows())
        .map(|t| {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for i in 0..train.rows() {
                let d = interval_row_distance(test, t, train, i);
                if d < best_dist {
                    best_dist = d;
                    best = i;
                }
            }
            train_labels[best]
        })
        .collect())
}

/// Fraction of predictions matching the reference labels.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> Result<f64> {
    check_labels(predicted, actual)?;
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    Ok(correct as f64 / predicted.len() as f64)
}

/// Macro-averaged F1 score over all classes appearing in either label list.
pub fn macro_f1(predicted: &[usize], actual: &[usize]) -> Result<f64> {
    check_labels(predicted, actual)?;
    let num_classes = predicted
        .iter()
        .chain(actual)
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    if num_classes == 0 {
        return Ok(0.0);
    }
    let mut f1_sum = 0.0;
    for class in 0..num_classes {
        let tp = predicted
            .iter()
            .zip(actual)
            .filter(|(&p, &a)| p == class && a == class)
            .count() as f64;
        let fp = predicted
            .iter()
            .zip(actual)
            .filter(|(&p, &a)| p == class && a != class)
            .count() as f64;
        let fn_ = predicted
            .iter()
            .zip(actual)
            .filter(|(&p, &a)| p != class && a == class)
            .count() as f64;
        let denom = 2.0 * tp + fp + fn_;
        if denom > 0.0 {
            f1_sum += 2.0 * tp / denom;
        }
    }
    Ok(f1_sum / num_classes as f64)
}

fn check_labels(predicted: &[usize], actual: &[usize]) -> Result<()> {
    if predicted.len() != actual.len() {
        return Err(EvalError::LengthMismatch {
            what: "predicted/actual labels",
            left: predicted.len(),
            right: actual.len(),
        });
    }
    if predicted.is_empty() {
        return Err(EvalError::Empty);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_scalar_classifies_separable_clusters() {
        let train = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ]);
        let labels = vec![0, 0, 1, 1];
        let test = Matrix::from_rows(&[vec![0.05, 0.05], vec![4.9, 5.1]]);
        assert_eq!(knn1_scalar(&train, &labels, &test).unwrap(), vec![0, 1]);
    }

    #[test]
    fn knn_interval_uses_interval_information() {
        // Same midpoints, different spans: the interval distance separates
        // them while the scalar (midpoint) distance cannot.
        let train = IntervalMatrix::from_bounds(
            Matrix::from_rows(&[vec![0.0], vec![-2.0]]),
            Matrix::from_rows(&[vec![2.0], vec![4.0]]),
        )
        .unwrap();
        let labels = vec![0, 1];
        let test = IntervalMatrix::from_bounds(
            Matrix::from_rows(&[vec![-1.9]]),
            Matrix::from_rows(&[vec![3.9]]),
        )
        .unwrap();
        assert_eq!(knn1_interval(&train, &labels, &test).unwrap(), vec![1]);
    }

    #[test]
    fn knn_validates_inputs() {
        let m = Matrix::zeros(2, 2);
        assert!(knn1_scalar(&m, &[0], &m).is_err());
        assert!(knn1_scalar(&m, &[0, 1], &Matrix::zeros(1, 3)).is_err());
        assert!(knn1_scalar(&Matrix::zeros(0, 2), &[], &m).is_err());
        let im = IntervalMatrix::zeros(2, 2);
        assert!(knn1_interval(&im, &[0], &im).is_err());
        assert!(knn1_interval(&im, &[0, 1], &IntervalMatrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn accuracy_and_f1_perfect_prediction() {
        let labels = vec![0, 1, 2, 1];
        assert_eq!(accuracy(&labels, &labels).unwrap(), 1.0);
        assert_eq!(macro_f1(&labels, &labels).unwrap(), 1.0);
    }

    #[test]
    fn macro_f1_known_value() {
        // Two classes; class 0: tp=1, fp=1, fn=0 -> F1 = 2/3.
        // Class 1: tp=1, fp=0, fn=1 -> F1 = 2/3. Macro = 2/3.
        let predicted = vec![0, 0, 1];
        let actual = vec![0, 1, 1];
        assert!((macro_f1(&predicted, &actual).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((accuracy(&predicted, &actual).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_handles_missing_classes_gracefully() {
        // Class 2 never predicted and never actual among these rows beyond
        // index bounds; classes without support contribute 0.
        let predicted = vec![0, 0];
        let actual = vec![2, 0];
        let f1 = macro_f1(&predicted, &actual).unwrap();
        assert!(f1 > 0.0 && f1 < 1.0);
    }

    #[test]
    fn metric_input_validation() {
        assert!(accuracy(&[0], &[]).is_err());
        assert!(macro_f1(&[], &[]).is_err());
    }
}
