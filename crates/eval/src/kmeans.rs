//! K-means clustering over scalar or interval-valued feature rows
//! (Figure 8c / Table 3 of the paper).
//!
//! The interval variant represents each centroid as an interval vector (a
//! pair of lower/upper centroid rows) and assigns points by the interval
//! Euclidean distance of Section 6.1.2; the update step averages the lower
//! and upper bounds of the assigned rows independently. With degenerate
//! (scalar) intervals it reduces exactly to standard k-means.

use rand::Rng;

use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;

use crate::{EvalError, Result};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index assigned to each row.
    pub assignments: Vec<usize>,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
    /// Final within-cluster sum of (interval) squared distances.
    pub inertia: f64,
}

/// Configuration of the k-means runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iters: usize,
    /// Seed for centroid initialization.
    pub seed: u64,
    /// Number of random restarts; the run with the lowest inertia wins.
    pub restarts: usize,
}

impl KMeansConfig {
    /// A default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            seed: 13,
            restarts: 5,
        }
    }

    /// Sets the iteration budget.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the initialization seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }
}

/// Runs k-means over the rows of a scalar feature matrix.
pub fn kmeans_scalar(data: &Matrix, config: &KMeansConfig) -> Result<KMeansResult> {
    kmeans_interval(&IntervalMatrix::from_scalar(data.clone()), config)
}

/// Runs k-means over the rows of an interval feature matrix, using the
/// interval Euclidean distance for assignment.
///
/// The configured number of random restarts is performed and the run with
/// the lowest inertia is returned (plain Lloyd iterations are sensitive to
/// the random initialization).
pub fn kmeans_interval(data: &IntervalMatrix, config: &KMeansConfig) -> Result<KMeansResult> {
    let n = data.rows();
    let d = data.cols();
    if n == 0 || d == 0 {
        return Err(EvalError::Empty);
    }
    if config.k == 0 || config.k > n {
        return Err(EvalError::InvalidArgument(format!(
            "k = {} must be in 1..=n = {n}",
            config.k
        )));
    }
    if config.max_iters == 0 {
        return Err(EvalError::InvalidArgument(
            "max_iters must be positive".into(),
        ));
    }
    let restarts = config.restarts.max(1);
    let mut best: Option<KMeansResult> = None;
    for attempt in 0..restarts {
        let result = lloyd_run(
            data,
            config,
            config.seed.wrapping_add(attempt as u64 * 7919),
        )?;
        if best.as_ref().map_or(true, |b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    Ok(best.expect("at least one restart was run"))
}

/// Squared Euclidean norm of row `i` over both bound matrices.
fn interval_row_sq_norm(m: &IntervalMatrix, i: usize) -> f64 {
    m.lo()
        .row(i)
        .iter()
        .zip(m.hi().row(i))
        .map(|(&l, &h)| l * l + h * h)
        .sum()
}

fn lloyd_run(data: &IntervalMatrix, config: &KMeansConfig, seed: u64) -> Result<KMeansResult> {
    let n = data.rows();
    let d = data.cols();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    // Initialize centroids from k distinct random rows.
    let mut chosen: Vec<usize> = (0..n).collect();
    partial_shuffle(&mut chosen, config.k, &mut rng);
    let mut centroids = gather_rows(data, &chosen[..config.k]);

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    let mut inertia = f64::INFINITY;

    // ‖x_i‖² over both bounds, fixed across iterations.
    let point_sq: Vec<f64> = (0..n).map(|i| interval_row_sq_norm(data, i)).collect();

    for it in 0..config.max_iters {
        iterations = it + 1;
        // Assignment step. The Section 6.1.2 interval distance expands as
        // dist²(i, c) = ‖x_i‖² + ‖µ_c‖² − 2(⟨x_lo,i, µ_lo,c⟩ + ⟨x_hi,i, µ_hi,c⟩),
        // so the dominant n·k·d cross terms become two matrix products that
        // run on the packed, parallel `Matrix::matmul_nt` kernel instead of
        // n·k scalar row-distance loops.
        let cross_lo = data
            .lo()
            .matmul_nt(centroids.lo())
            .expect("data and centroids share a feature dimension");
        let cross_hi = data
            .hi()
            .matmul_nt(centroids.hi())
            .expect("data and centroids share a feature dimension");
        let cent_sq: Vec<f64> = (0..config.k)
            .map(|c| interval_row_sq_norm(&centroids, c))
            .collect();
        let mut changed = false;
        let mut new_inertia = 0.0;
        for i in 0..n {
            let mut best = 0usize;
            let mut best_dist_sq = f64::INFINITY;
            for c in 0..config.k {
                // Clamped at zero: the expansion can go a few ulps negative
                // when a point coincides with its centroid.
                let dist_sq = (point_sq[i] + cent_sq[c]
                    - 2.0 * (cross_lo[(i, c)] + cross_hi[(i, c)]))
                    .max(0.0);
                if dist_sq < best_dist_sq {
                    best_dist_sq = dist_sq;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_inertia += best_dist_sq;
        }
        inertia = new_inertia;

        // Update step: per-cluster means of the lower and upper bounds.
        let mut counts = vec![0usize; config.k];
        let mut sum_lo = Matrix::zeros(config.k, d);
        let mut sum_hi = Matrix::zeros(config.k, d);
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            for j in 0..d {
                sum_lo[(c, j)] += data.lo()[(i, j)];
                sum_hi[(c, j)] += data.hi()[(i, j)];
            }
        }
        let mut new_centroids_lo = Matrix::zeros(config.k, d);
        let mut new_centroids_hi = Matrix::zeros(config.k, d);
        for c in 0..config.k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with a random row.
                let pick = rng.gen_range(0..n);
                for j in 0..d {
                    new_centroids_lo[(c, j)] = data.lo()[(pick, j)];
                    new_centroids_hi[(c, j)] = data.hi()[(pick, j)];
                }
            } else {
                for j in 0..d {
                    new_centroids_lo[(c, j)] = sum_lo[(c, j)] / counts[c] as f64;
                    new_centroids_hi[(c, j)] = sum_hi[(c, j)] / counts[c] as f64;
                }
            }
        }
        centroids =
            IntervalMatrix::from_bounds(new_centroids_lo, new_centroids_hi).expect("same shape");

        if !changed && it > 0 {
            break;
        }
    }

    Ok(KMeansResult {
        assignments,
        iterations,
        inertia,
    })
}

fn gather_rows(data: &IntervalMatrix, rows: &[usize]) -> IntervalMatrix {
    let d = data.cols();
    let mut lo = Matrix::zeros(rows.len(), d);
    let mut hi = Matrix::zeros(rows.len(), d);
    for (out_i, &src_i) in rows.iter().enumerate() {
        for j in 0..d {
            lo[(out_i, j)] = data.lo()[(src_i, j)];
            hi[(out_i, j)] = data.hi()[(src_i, j)];
        }
    }
    IntervalMatrix::from_bounds(lo, hi).expect("same shape")
}

fn partial_shuffle<R: Rng + ?Sized>(v: &mut [usize], k: usize, rng: &mut R) {
    let n = v.len();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        v.swap(i, j);
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmi::nmi;

    fn blobs(seed: u64, per_cluster: usize) -> (Matrix, Vec<usize>) {
        // Three well-separated clusters in 2-D.
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per_cluster {
                rows.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn scalar_kmeans_recovers_well_separated_clusters() {
        let (data, labels) = blobs(1, 20);
        let result = kmeans_scalar(&data, &KMeansConfig::new(3)).unwrap();
        assert_eq!(result.assignments.len(), 60);
        let quality = nmi(&result.assignments, &labels).unwrap();
        assert!(quality > 0.95, "NMI {quality}");
        assert!(result.inertia < 100.0);
    }

    #[test]
    fn interval_kmeans_reduces_to_scalar_for_degenerate_intervals() {
        let (data, labels) = blobs(2, 15);
        let scalar = kmeans_scalar(&data, &KMeansConfig::new(3).with_seed(5)).unwrap();
        let interval = kmeans_interval(
            &IntervalMatrix::from_scalar(data.clone()),
            &KMeansConfig::new(3).with_seed(5),
        )
        .unwrap();
        assert_eq!(scalar.assignments, interval.assignments);
        let quality = nmi(&interval.assignments, &labels).unwrap();
        assert!(quality > 0.95);
    }

    #[test]
    fn interval_information_separates_same_midpoint_clusters() {
        // Two groups share the same midpoints but differ in span; interval
        // k-means separates them, scalar (midpoint) k-means cannot.
        let n_per = 15;
        let mut lo_rows = Vec::new();
        let mut hi_rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for _ in 0..n_per {
            // Narrow intervals around 5.
            let jitter: f64 = rng.gen_range(-0.05..0.05);
            lo_rows.push(vec![4.9 + jitter]);
            hi_rows.push(vec![5.1 + jitter]);
            labels.push(0);
        }
        for _ in 0..n_per {
            // Wide intervals around 5.
            let jitter: f64 = rng.gen_range(-0.05..0.05);
            lo_rows.push(vec![1.0 + jitter]);
            hi_rows.push(vec![9.0 + jitter]);
            labels.push(1);
        }
        let data =
            IntervalMatrix::from_bounds(Matrix::from_rows(&lo_rows), Matrix::from_rows(&hi_rows))
                .unwrap();
        let result = kmeans_interval(&data, &KMeansConfig::new(2)).unwrap();
        let quality = nmi(&result.assignments, &labels).unwrap();
        assert!(
            quality > 0.95,
            "interval k-means should separate spans, NMI {quality}"
        );
    }

    #[test]
    fn input_validation() {
        let data = Matrix::zeros(4, 2);
        assert!(kmeans_scalar(&data, &KMeansConfig::new(0)).is_err());
        assert!(kmeans_scalar(&data, &KMeansConfig::new(5)).is_err());
        assert!(kmeans_scalar(&data, &KMeansConfig::new(2).with_max_iters(0)).is_err());
        assert!(kmeans_scalar(&Matrix::zeros(0, 0), &KMeansConfig::new(1)).is_err());
    }

    #[test]
    fn k_equals_n_gives_singleton_clusters() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]);
        let result = kmeans_scalar(&data, &KMeansConfig::new(3)).unwrap();
        let mut sorted = result.assignments.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn matmul_assignment_agrees_with_direct_interval_distance() {
        // The Gram-trick assignment must land every point on a centroid
        // that minimizes the direct Section 6.1.2 row distance.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let lo = Matrix::from_fn(40, 6, |_, _| rng.gen_range(-2.0..2.0));
        let span = Matrix::from_fn(40, 6, |_, _| rng.gen_range(0.0..1.0));
        let data = IntervalMatrix::from_bounds(lo.clone(), lo.add(&span).unwrap()).unwrap();
        let result = kmeans_interval(&data, &KMeansConfig::new(4).with_restarts(1)).unwrap();
        // Recover the converged centroids from the assignments.
        let k = 4;
        let mut counts = vec![0usize; k];
        let mut sum_lo = Matrix::zeros(k, 6);
        let mut sum_hi = Matrix::zeros(k, 6);
        for (i, &c) in result.assignments.iter().enumerate() {
            counts[c] += 1;
            for j in 0..6 {
                sum_lo[(c, j)] += data.lo()[(i, j)];
                sum_hi[(c, j)] += data.hi()[(i, j)];
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                sum_lo
                    .row_mut(c)
                    .iter_mut()
                    .for_each(|x| *x /= count as f64);
                sum_hi
                    .row_mut(c)
                    .iter_mut()
                    .for_each(|x| *x /= count as f64);
            }
        }
        let centroids = IntervalMatrix::from_bounds(sum_lo, sum_hi).unwrap();
        for i in 0..40 {
            let assigned =
                crate::interval_row_distance(&data, i, &centroids, result.assignments[i]);
            let min = (0..k)
                .filter(|&c| counts[c] > 0)
                .map(|c| crate::interval_row_distance(&data, i, &centroids, c))
                .fold(f64::INFINITY, f64::min);
            assert!(
                assigned <= min + 1e-9,
                "point {i}: assigned distance {assigned} exceeds optimum {min}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, _) = blobs(4, 10);
        let a = kmeans_scalar(&data, &KMeansConfig::new(3).with_seed(11)).unwrap();
        let b = kmeans_scalar(&data, &KMeansConfig::new(3).with_seed(11)).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
