//! Normalized mutual information (NMI) between a clustering and reference
//! class labels — the cluster-quality measure of Figure 8c / Table 3.

use crate::{EvalError, Result};

/// Computes the normalized mutual information between two label
/// assignments, `NMI = 2·I(A; B) / (H(A) + H(B))`, in `[0, 1]`.
///
/// Returns 1.0 when both partitions are identical up to relabelling and
/// both carry information; when either partition has zero entropy (a single
/// cluster), NMI is defined here as 1.0 if the other partition also has a
/// single cluster and 0.0 otherwise.
pub fn nmi(a: &[usize], b: &[usize]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(EvalError::LengthMismatch {
            what: "nmi label vectors",
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(EvalError::Empty);
    }
    let n = a.len() as f64;
    let ka = a.iter().copied().max().unwrap_or(0) + 1;
    let kb = b.iter().copied().max().unwrap_or(0) + 1;

    // Contingency table.
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut count_a = vec![0usize; ka];
    let mut count_b = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1;
        count_a[x] += 1;
        count_b[y] += 1;
    }

    let entropy = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let h_a = entropy(&count_a);
    let h_b = entropy(&count_b);

    if h_a == 0.0 || h_b == 0.0 {
        return Ok(if h_a == h_b { 1.0 } else { 0.0 });
    }

    let mut mi = 0.0;
    for (x, row) in joint.iter().enumerate() {
        for (y, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let p_xy = c as f64 / n;
            let p_x = count_a[x] as f64 / n;
            let p_y = count_b[y] as f64 / n;
            mi += p_xy * (p_xy / (p_x * p_y)).ln();
        }
    }

    Ok((2.0 * mi / (h_a + h_b)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_have_nmi_one() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&labels, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelled_partitions_have_nmi_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_have_low_nmi() {
        // Balanced and (as close as possible to) independent assignments.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let v = nmi(&a, &b).unwrap();
        assert!(v < 1e-9, "expected ~0, got {v}");
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![0, 0, 1, 2, 2, 2];
        let v = nmi(&a, &b).unwrap();
        assert!(v > 0.3 && v < 1.0, "got {v}");
    }

    #[test]
    fn degenerate_single_cluster_cases() {
        let single = vec![0, 0, 0];
        let multi = vec![0, 1, 2];
        assert_eq!(nmi(&single, &single).unwrap(), 1.0);
        assert_eq!(nmi(&single, &multi).unwrap(), 0.0);
    }

    #[test]
    fn nmi_is_symmetric() {
        let a = vec![0, 1, 1, 2, 2, 0, 1];
        let b = vec![1, 1, 0, 2, 0, 0, 1];
        assert!((nmi(&a, &b).unwrap() - nmi(&b, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn input_validation() {
        assert!(nmi(&[0], &[0, 1]).is_err());
        assert!(nmi(&[], &[]).is_err());
    }
}
