//! Regression / reconstruction error metrics.

use ivmf_linalg::Matrix;

use crate::{EvalError, Result};

/// Root-mean-square error between paired predictions and targets.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> Result<f64> {
    check(predictions, targets)?;
    let mse = predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute error between paired predictions and targets.
pub fn mae(predictions: &[f64], targets: &[f64]) -> Result<f64> {
    check(predictions, targets)?;
    Ok(predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64)
}

/// RMSE between two matrices over all entries (used for the ORL
/// reconstruction experiment of Figure 8a).
pub fn matrix_rmse(a: &Matrix, b: &Matrix) -> Result<f64> {
    if a.shape() != b.shape() {
        return Err(EvalError::LengthMismatch {
            what: "matrix_rmse",
            left: a.rows() * a.cols(),
            right: b.rows() * b.cols(),
        });
    }
    if a.is_empty() {
        return Err(EvalError::Empty);
    }
    rmse(a.as_slice(), b.as_slice())
}

fn check(predictions: &[f64], targets: &[f64]) -> Result<()> {
    if predictions.len() != targets.len() {
        return Err(EvalError::LengthMismatch {
            what: "predictions/targets",
            left: predictions.len(),
            right: targets.len(),
        });
    }
    if predictions.is_empty() {
        return Err(EvalError::Empty);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_value() {
        let r = rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0]).unwrap();
        assert!((r - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[1.0], &[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn mae_known_value() {
        let m = mae(&[1.0, 2.0], &[2.0, 0.0]).unwrap();
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
        assert!(mae(&[1.0], &[]).is_err());
    }

    #[test]
    fn matrix_rmse_matches_flat_rmse() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 0.0]]);
        assert!((matrix_rmse(&a, &b).unwrap() - 2.0).abs() < 1e-12);
        assert!(matrix_rmse(&a, &Matrix::zeros(1, 1)).is_err());
    }
}
