//! # ivmf-eval
//!
//! Evaluation metrics and downstream tasks used by the paper's experiments:
//!
//! * [`regression`] — RMSE / MAE for reconstruction and collaborative
//!   filtering (Figures 8a and 10).
//! * [`classification`] — 1-NN classification with scalar or interval
//!   Euclidean distance, plus macro-F1 (Figure 8b).
//! * [`nmi`] — normalized mutual information for cluster quality
//!   (Figure 8c, Table 3).
//! * [`kmeans`] — k-means clustering over scalar or interval feature
//!   vectors (Figure 8c, Table 3).
//!
//! The interval Euclidean distance follows Section 6.1.2:
//! `dist(a, b) = sqrt((a_lo − b_lo)² + (a_hi − b_hi)²)` summed over
//! features. The k-means assignment step expands that distance so its
//! dominant cross terms run on the blocked, parallel matrix-product kernel
//! of `ivmf-linalg` (see ARCHITECTURE.md, "The kernel layer").
//!
//! ## Example
//!
//! Cluster interval rows and score the result against ground truth:
//!
//! ```
//! use ivmf_eval::kmeans::{kmeans_interval, KMeansConfig};
//! use ivmf_eval::nmi::nmi;
//! use ivmf_interval::IntervalMatrix;
//! use ivmf_linalg::Matrix;
//!
//! // Two well-separated groups of interval rows: values near 0 and near 10.
//! let lo = Matrix::from_rows(&[
//!     vec![0.0], vec![0.2], vec![0.1],
//!     vec![10.0], vec![10.2], vec![10.1],
//! ]);
//! let hi = lo.map(|x| x + 0.5);
//! let data = IntervalMatrix::from_bounds(lo, hi).unwrap();
//!
//! let result = kmeans_interval(&data, &KMeansConfig::new(2)).unwrap();
//! let truth = vec![0, 0, 0, 1, 1, 1];
//! let quality = nmi(&result.assignments, &truth).unwrap();
//! assert!(quality > 0.99, "NMI {quality}");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod classification;
pub mod kmeans;
pub mod nmi;
pub mod regression;

use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;

/// Errors produced by the evaluation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Inputs have incompatible lengths/shapes.
    LengthMismatch {
        /// Description of the mismatching operands.
        what: &'static str,
        /// Left length.
        left: usize,
        /// Right length.
        right: usize,
    },
    /// The operation needs non-empty input.
    Empty,
    /// An argument is invalid (k = 0, no training data, …).
    InvalidArgument(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::LengthMismatch { what, left, right } => {
                write!(f, "length mismatch in {what}: {left} vs {right}")
            }
            EvalError::Empty => write!(f, "input must be non-empty"),
            EvalError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EvalError>;

/// Euclidean distance between two rows of a scalar feature matrix.
pub fn scalar_row_distance(a: &Matrix, i: usize, b: &Matrix, j: usize) -> f64 {
    a.row(i)
        .iter()
        .zip(b.row(j))
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Interval Euclidean distance between row `i` of `a` and row `j` of `b`
/// (Section 6.1.2): the squared differences of the lower bounds and of the
/// upper bounds are accumulated over all features.
pub fn interval_row_distance(a: &IntervalMatrix, i: usize, b: &IntervalMatrix, j: usize) -> f64 {
    let (a_lo, a_hi) = (a.lo().row(i), a.hi().row(i));
    let (b_lo, b_hi) = (b.lo().row(j), b.hi().row(j));
    let mut acc = 0.0;
    for k in 0..a_lo.len() {
        let dl = a_lo[k] - b_lo[k];
        let dh = a_hi[k] - b_hi[k];
        acc += dl * dl + dh * dh;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_distance_known_value() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert!((scalar_row_distance(&a, 0, &a, 1) - 5.0).abs() < 1e-12);
        assert_eq!(scalar_row_distance(&a, 1, &a, 1), 0.0);
    }

    #[test]
    fn interval_distance_reduces_to_scalar_for_degenerate_intervals() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        let ia = IntervalMatrix::from_scalar(a.clone());
        let expected = scalar_row_distance(&a, 0, &a, 1) * std::f64::consts::SQRT_2;
        assert!((interval_row_distance(&ia, 0, &ia, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn interval_distance_accounts_for_both_bounds() {
        let a = IntervalMatrix::from_bounds(
            Matrix::from_rows(&[vec![0.0], vec![0.0]]),
            Matrix::from_rows(&[vec![1.0], vec![3.0]]),
        )
        .unwrap();
        // Lower bounds equal, upper bounds differ by 2.
        assert!((interval_row_distance(&a, 0, &a, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = EvalError::LengthMismatch {
            what: "labels",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("labels"));
        assert!(EvalError::Empty.to_string().contains("non-empty"));
        assert!(EvalError::InvalidArgument("k".into())
            .to_string()
            .contains("k"));
    }
}
