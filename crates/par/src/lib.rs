//! # ivmf-par
//!
//! A zero-dependency scoped worker pool for data-parallel kernels.
//!
//! The hot paths of this workspace (blocked matrix multiplication, interval
//! products, k-means distance accumulation) all share the same shape: an
//! output buffer is partitioned into contiguous *row panels* and each panel
//! can be computed independently. This crate provides exactly that
//! primitive, built on [`std::thread::scope`] so it needs no external
//! dependencies and no `unsafe` code:
//!
//! * [`par_row_panels`] — split a mutable row-major buffer into balanced
//!   contiguous row panels and fill each panel on its own worker thread,
//! * [`panel_ranges`] — the deterministic partitioning it uses,
//! * [`configured_threads`] — the worker count, taken from the
//!   `IVMF_THREADS` environment variable (parsed through the shared
//!   [`ivmf_env`] rules) and defaulting to
//!   [`std::thread::available_parallelism`].
//!
//! ## Determinism
//!
//! Panel boundaries never change *what* is computed, only *where*: a kernel
//! that derives every output element from its own row produces bitwise
//! identical results for any worker count. The workspace's blocked matmul
//! relies on this (see the `IVMF_THREADS` determinism test in
//! `ivmf-linalg`).
//!
//! ## Example
//!
//! ```
//! // Square each row's elements in parallel: 4 rows of length 3.
//! let mut data: Vec<f64> = (0..12).map(f64::from).collect();
//! ivmf_par::par_row_panels(&mut data, 3, 4, |first_row, panel| {
//!     for (i, row) in panel.chunks_mut(3).enumerate() {
//!         let scale = (first_row + i + 1) as f64;
//!         for x in row.iter_mut() {
//!             *x *= scale;
//!         }
//!     }
//! });
//! assert_eq!(data[0], 0.0); // row 0 scaled by 1
//! assert_eq!(data[11], 44.0); // row 3 scaled by 4
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Environment variable overriding the worker count used by
/// [`configured_threads`]. Unset falls back to the machine's available
/// parallelism; `IVMF_THREADS=1` forces every parallel kernel to run
/// inline on the calling thread; a malformed value (`IVMF_THREADS=abc`,
/// `IVMF_THREADS=0`) aborts with a clear error via the shared
/// [`ivmf_env`] parsing rules.
///
/// Re-exported from [`ivmf_env`], the shared home of every `IVMF_*`
/// variable.
pub const THREADS_ENV: &str = ivmf_env::THREADS;

/// The worker count for parallel kernels: `IVMF_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 when even that is unavailable). Panics with a named error on a
/// malformed `IVMF_THREADS` value.
///
/// The value is re-read on every call — it is a handful of nanoseconds
/// against kernels that run for milliseconds, and it keeps tests free to
/// flip the variable at runtime.
pub fn configured_threads() -> usize {
    ivmf_env::usize_var(THREADS_ENV, 1, default_threads)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..n` into at most `parts` contiguous, non-overlapping,
/// covering ranges whose lengths differ by at most one (the first
/// `n % parts` ranges are one element longer).
///
/// Returns fewer than `parts` ranges when `n < parts` (never an empty
/// range), and an empty vector when `n == 0`.
pub fn panel_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits a row-major buffer of `data.len() / row_len` rows into balanced
/// contiguous row panels and calls `f(first_row, panel)` for each, one
/// scoped worker thread per panel.
///
/// With `threads <= 1` (or a single resulting panel) `f` runs inline on
/// the calling thread with the whole buffer — the zero-overhead path the
/// kernels take for small inputs.
///
/// # Panics
///
/// Panics when `row_len` does not evenly divide `data.len()` (a row must
/// never straddle two panels). `row_len == 0` is accepted only for an
/// empty buffer.
pub fn par_row_panels<T, F>(data: &mut [T], row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len() % row_len == 0,
        "row length {row_len} must evenly divide buffer length {}",
        data.len()
    );
    let rows = data.len() / row_len;
    let ranges = panel_ranges(rows, threads);
    if ranges.len() <= 1 {
        f(0, data);
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut rest = data;
        let mut ranges = ranges.into_iter();
        let last = ranges.next_back().expect("at least two ranges");
        for r in ranges {
            let (panel, tail) = rest.split_at_mut(r.len() * row_len);
            rest = tail;
            s.spawn(move || f(r.start, panel));
        }
        f(last.start, rest);
    });
}

/// Evaluates `f(i)` for every `i in 0..n` across at most `threads` scoped
/// worker threads, returning the results **in index order**.
///
/// This is the task-level companion to [`par_row_panels`]: where that
/// splits one output buffer, `par_map` schedules independent jobs (shard
/// Gram contributions, per-chunk products) whose results the caller folds
/// in a fixed order afterwards — which is what keeps shard- and
/// chunk-parallel reductions bitwise deterministic: parallelism changes
/// *when* each job runs, never the fold order.
///
/// With `threads <= 1` or `n <= 1` everything runs inline on the calling
/// thread.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let ranges = panel_ranges(n, threads);
    if ranges.len() <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| s.spawn(move || r.map(f).collect::<Vec<T>>()))
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect();
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_ranges_cover_without_overlap() {
        for n in [0usize, 1, 2, 7, 64, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = panel_ranges(n, parts);
                assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), n);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous coverage for n={n} parts={parts}");
                    assert!(!r.is_empty(), "no empty panels for n={n} parts={parts}");
                    next = r.end;
                }
                // Balanced: panel lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn panel_count_never_exceeds_rows() {
        assert_eq!(panel_ranges(3, 8).len(), 3);
        assert_eq!(panel_ranges(0, 8).len(), 0);
        assert_eq!(panel_ranges(8, 0).len(), 1); // parts clamped to 1
    }

    #[test]
    fn par_row_panels_fills_every_row_once() {
        for threads in [1usize, 2, 4, 7, 32] {
            let mut data = vec![0u32; 9 * 5];
            par_row_panels(&mut data, 5, threads, |first_row, panel| {
                for (i, row) in panel.chunks_mut(5).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + i) as u32;
                    }
                }
            });
            for (i, row) in data.chunks(5).enumerate() {
                assert!(
                    row.iter().all(|&x| x == i as u32),
                    "row {i} wrong with {threads} threads: {row:?}"
                );
            }
        }
    }

    #[test]
    fn par_row_panels_results_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut data = vec![0.0f64; 13 * 7];
            par_row_panels(&mut data, 7, threads, |first_row, panel| {
                for (i, row) in panel.chunks_mut(7).enumerate() {
                    for (j, x) in row.iter_mut().enumerate() {
                        *x = ((first_row + i) * 31 + j) as f64 / 3.0;
                    }
                }
            });
            data
        };
        let reference = run(1);
        for threads in [2usize, 3, 13, 64] {
            assert_eq!(run(threads), reference);
        }
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut data: Vec<f64> = Vec::new();
        par_row_panels(&mut data, 0, 4, |_, _| panic!("must not be called"));
        par_row_panels(&mut data, 3, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn ragged_rows_panic() {
        let mut data = vec![0.0f64; 7];
        par_row_panels(&mut data, 3, 2, |_, _| {});
    }

    #[test]
    fn configured_threads_respects_env_and_rejects_malformed_values() {
        // Serial within this test; other tests in this binary do not read
        // the variable.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(configured_threads(), 3);
        // Malformed values abort with a clear, variable-naming error
        // instead of silently falling back to a default thread count.
        for bad in ["0", "not a number"] {
            std::env::set_var(THREADS_ENV, bad);
            let panic = std::panic::catch_unwind(configured_threads)
                .expect_err("malformed IVMF_THREADS must be rejected");
            let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains(THREADS_ENV), "{bad:?} -> {msg}");
        }
        std::env::remove_var(THREADS_ENV);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn par_map_preserves_index_order_for_every_thread_count() {
        for threads in [1usize, 2, 3, 8, 64] {
            let out = par_map(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 41), vec![41]);
    }
}
