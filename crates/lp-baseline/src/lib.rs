//! # ivmf-lp
//!
//! The "LPx" competitor of the paper: interval-valued SVD built on the
//! bound-based interval eigen-decomposition techniques of Deif \[33\] and
//! Seif, Hashem & Deif \[35\].
//!
//! These classical techniques treat the interval Gram matrix
//! `A† = M†ᵀ M†` as a perturbation `A_c ± ΔA` of its centre matrix and
//! bound the eigenvalues/eigenvectors of every matrix inside the interval:
//!
//! * **Eigenvalues** (Deif): `λ_i(A) ∈ [λ_i(A_c) − ρ(ΔA), λ_i(A_c) + ρ(ΔA)]`
//!   where `ρ(ΔA)` is the spectral radius of the non-negative radius
//!   matrix.
//! * **Eigenvectors** (Seif et al.): the deviation of the `i`-th
//!   eigenvector is bounded through the perturbation ratio
//!   `‖ΔA‖₂ / gap_i`, where `gap_i` is the spectral gap of `λ_i(A_c)`.
//!
//! [`lp_isvd`] assembles these bounds into the same
//! [`IntervalSvd`] structure produced by the ISVD
//! algorithms (targets a/b/c), so the experiment harness can evaluate it
//! with exactly the same reconstruction-accuracy pipeline. As the paper
//! reports (and the original authors acknowledge), the bounds are only
//! informative when the intervals are very small; with the interval widths
//! used in the experiments the factor bounds blow up and the accuracy falls
//! far below the ISVD family (collapsing entirely under the interval-factor
//! target a). Our closed-form surrogate degrades somewhat more gracefully
//! under targets b/c than the authors' LP implementation (which they report
//! at H-mean ≈ 0 across the board) because the symmetric ± bounds average
//! back to the centre factors there; the qualitative ordering — ISVD ≫ LP,
//! and LP degrading sharply with interval width — is preserved and is what
//! the benchmark harness reports.
//!
//! The original papers phrase parts of the procedure as linear programs
//! over the perturbation set; since no reference implementation is
//! available, this module implements the closed-form bound versions of the
//! same quantities (see DESIGN.md, "Substitutions").

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bounds;

use ivmf_core::{DecompositionTarget, IntervalSvd, IsvdConfig, RawFactors, Result};
use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;

use bounds::{eigenvalue_bounds, eigenvector_bounds};

/// Runs the LP-style competitor decomposition on an interval matrix.
///
/// The configuration's `rank` and `target` fields are honoured; the
/// algorithm/matcher fields are ignored (this method has no alignment
/// phase — it derives both bounds from the centre eigen-decomposition).
pub fn lp_isvd(m: &IntervalMatrix, config: &IsvdConfig) -> Result<IntervalSvd> {
    config.validate(m.shape())?;
    let r = config.rank;

    // Interval Gram matrix and its centre/radius decomposition
    // (midpoint–radius fast path at experiment scale).
    let gram = m.interval_gram_fast()?;
    let centre = gram.mid();
    let radius = gram.spans().scale(0.5);

    // Centre eigen-decomposition and Deif/Seif bounds.
    let eig = ivmf_linalg::eigen_sym::sym_eigen(&centre)?;
    let lambda_bounds = eigenvalue_bounds(&eig.eigenvalues, &radius);
    let vector_dev = eigenvector_bounds(&eig.eigenvalues, &radius);

    // Truncate to the target rank; eigenvalue bounds become singular value
    // bounds through sqrt (clamped at zero).
    let v_c = eig.eigenvectors.take_cols(r);
    let sigma_lo: Vec<f64> = lambda_bounds[..r]
        .iter()
        .map(|b| b.0.max(0.0).sqrt())
        .collect();
    let sigma_hi: Vec<f64> = lambda_bounds[..r]
        .iter()
        .map(|b| b.1.max(0.0).sqrt())
        .collect();

    // Eigenvector bounds: v_i ± dev_i entry-wise.
    let mut v_lo = v_c.clone();
    let mut v_hi = v_c.clone();
    for j in 0..r {
        let dev = vector_dev[j];
        for i in 0..v_c.rows() {
            v_lo[(i, j)] -= dev;
            v_hi[(i, j)] += dev;
        }
    }

    // Left factor from the centre decomposition: U_c = M_c V_c Σ_c⁻¹, with
    // the same ± deviation transferred through the (orthonormal) projection.
    let m_c = m.mid();
    let sigma_c: Vec<f64> = sigma_lo
        .iter()
        .zip(&sigma_hi)
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    let mut u_c = m_c.matmul(&v_c)?;
    for (j, &s) in sigma_c.iter().enumerate() {
        if s > 1e-12 {
            u_c.scale_col(j, 1.0 / s);
        } else {
            for i in 0..u_c.rows() {
                u_c[(i, j)] = 0.0;
            }
        }
    }
    let mut u_lo = u_c.clone();
    let mut u_hi = u_c.clone();
    for j in 0..r {
        let dev = vector_dev[j];
        for i in 0..u_c.rows() {
            u_lo[(i, j)] -= dev;
            u_hi[(i, j)] += dev;
        }
    }

    RawFactors::new(u_lo, u_hi, sigma_lo, sigma_hi, v_lo, v_hi)?.into_target(config.target)
}

/// Convenience wrapper mirroring the paper's naming: `LPa`, `LPb`, `LPc`
/// are [`lp_isvd`] with the corresponding decomposition target.
pub fn lp_isvd_with_target(
    m: &IntervalMatrix,
    rank: usize,
    target: DecompositionTarget,
) -> Result<IntervalSvd> {
    lp_isvd(m, &IsvdConfig::new(rank).with_target(target))
}

/// Helper used by tests and the harness: the mean interval width of a
/// factor matrix, a direct measure of how uninformative the LP bounds are.
pub fn mean_factor_width(factors: &IntervalSvd) -> f64 {
    let u_span: Matrix = factors.u.spans();
    let v_span: Matrix = factors.v.spans();
    let total = u_span.sum() + v_span.sum();
    let count = (u_span.rows() * u_span.cols() + v_span.rows() * v_span.cols()) as f64;
    total / count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivmf_core::accuracy::reconstruction_accuracy;
    use ivmf_core::isvd::isvd;
    use ivmf_core::IsvdAlgorithm;
    use ivmf_linalg::random::uniform_matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn interval_matrix(seed: u64, n: usize, m: usize, span: f64) -> IntervalMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lo = uniform_matrix(&mut rng, n, m, 1.0, 5.0);
        let spans = Matrix::from_fn(n, m, |_, _| {
            if span > 0.0 {
                rng.gen_range(0.0..span)
            } else {
                0.0
            }
        });
        IntervalMatrix::from_bounds(lo.clone(), lo.add(&spans).unwrap()).unwrap()
    }

    #[test]
    fn scalar_input_behaves_like_plain_svd() {
        // With zero-width intervals the bounds collapse and the LP method is
        // an ordinary truncated SVD.
        let m = interval_matrix(1, 10, 8, 0.0);
        let f = lp_isvd(
            &m,
            &IsvdConfig::new(8).with_target(DecompositionTarget::Scalar),
        )
        .unwrap();
        let acc = reconstruction_accuracy(&m, &f.reconstruct().unwrap()).unwrap();
        assert!(acc.harmonic_mean > 0.99, "accuracy {}", acc.harmonic_mean);
    }

    #[test]
    fn wide_intervals_degrade_accuracy_as_in_the_paper() {
        // The paper's observation: the LP/bound-based competitors are only
        // effective when the intervals are very small; with the interval
        // widths used in the experiments the ISVD methods clearly dominate
        // them, and LP accuracy drops sharply as the width grows. (Our
        // closed-form bound surrogate degrades somewhat more gracefully
        // than the authors' LP implementation; see the crate docs.)
        let rank = 12;
        let wide = interval_matrix(2, 20, 12, 4.0);
        let lp_acc = |m: &IntervalMatrix, target| {
            let f = lp_isvd_with_target(m, rank, target).unwrap();
            reconstruction_accuracy(m, &f.reconstruct().unwrap())
                .unwrap()
                .harmonic_mean
        };
        // Option a exposes the (enormous) factor bounds directly: accuracy
        // must collapse on wide intervals, as the paper reports.
        let lp_wide_a = lp_acc(&wide, DecompositionTarget::IntervalAll);
        assert!(
            lp_wide_a < 0.2,
            "LP option-a accuracy unexpectedly high: {lp_wide_a}"
        );
        let lp_wide_b = lp_acc(&wide, DecompositionTarget::IntervalCore);
        // ISVD4 dominates LP on the wide-interval data.
        let isvd4 = isvd(
            &wide,
            &IsvdConfig::new(rank).with_algorithm(IsvdAlgorithm::Isvd4),
        )
        .unwrap();
        let isvd_acc = reconstruction_accuracy(&wide, &isvd4.factors.reconstruct().unwrap())
            .unwrap()
            .harmonic_mean;
        assert!(
            isvd_acc > lp_wide_b + 0.05,
            "ISVD4 ({isvd_acc}) should dominate LP option-b ({lp_wide_b})"
        );
    }

    #[test]
    fn factor_width_grows_with_interval_width() {
        let narrow = lp_isvd_with_target(
            &interval_matrix(3, 12, 9, 0.2),
            6,
            DecompositionTarget::IntervalAll,
        )
        .unwrap();
        let wide = lp_isvd_with_target(
            &interval_matrix(3, 12, 9, 3.0),
            6,
            DecompositionTarget::IntervalAll,
        )
        .unwrap();
        assert!(mean_factor_width(&wide) > mean_factor_width(&narrow));
    }

    #[test]
    fn all_targets_are_supported() {
        let m = interval_matrix(4, 8, 6, 1.0);
        for target in DecompositionTarget::all() {
            let f = lp_isvd_with_target(&m, 4, target).unwrap();
            assert_eq!(f.target, target);
            assert_eq!(f.rank(), 4);
            assert!(!f.reconstruct().unwrap().has_non_finite());
        }
    }

    #[test]
    fn configuration_is_validated() {
        let m = interval_matrix(5, 6, 5, 1.0);
        assert!(lp_isvd(&m, &IsvdConfig::new(0)).is_err());
        assert!(lp_isvd(&m, &IsvdConfig::new(9)).is_err());
    }
}
