//! Closed-form eigenvalue / eigenvector bounds for symmetric interval
//! matrices (Deif \[33\]; Seif, Hashem & Deif \[35\]).

use ivmf_linalg::Matrix;

/// Upper bound on the spectral radius of the non-negative radius matrix
/// `ΔA` via the maximum row sum (the ∞-norm), which dominates `ρ(ΔA)` for
/// non-negative matrices.
pub fn spectral_radius_bound(radius: &Matrix) -> f64 {
    let mut max_row_sum = 0.0_f64;
    for i in 0..radius.rows() {
        let s: f64 = radius.row(i).iter().map(|x| x.abs()).sum();
        max_row_sum = max_row_sum.max(s);
    }
    max_row_sum
}

/// Deif-style eigenvalue bounds: for each centre eigenvalue `λ_i(A_c)` the
/// eigenvalues of every symmetric matrix inside `A_c ± ΔA` lie in
/// `[λ_i − ρ(ΔA), λ_i + ρ(ΔA)]` (Weyl's inequality with the spectral-radius
/// bound on the perturbation).
pub fn eigenvalue_bounds(centre_eigenvalues: &[f64], radius: &Matrix) -> Vec<(f64, f64)> {
    let rho = spectral_radius_bound(radius);
    centre_eigenvalues
        .iter()
        .map(|&l| (l - rho, l + rho))
        .collect()
}

/// Seif-style eigenvector deviation bounds: the entry-wise deviation of the
/// `i`-th eigenvector over the interval matrix is bounded by the classical
/// perturbation ratio `‖ΔA‖ / gap_i`, where `gap_i` is the distance of
/// `λ_i(A_c)` to its nearest other centre eigenvalue. Deviations are capped
/// at 2 (unit vectors cannot move further apart in any coordinate).
pub fn eigenvector_bounds(centre_eigenvalues: &[f64], radius: &Matrix) -> Vec<f64> {
    let rho = spectral_radius_bound(radius);
    let n = centre_eigenvalues.len();
    (0..n)
        .map(|i| {
            let gap = centre_eigenvalues
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &l)| (l - centre_eigenvalues[i]).abs())
                .fold(f64::INFINITY, f64::min);
            if !gap.is_finite() || gap <= f64::EPSILON {
                // Degenerate spectrum: the eigenvector is not identifiable,
                // the bound is vacuous.
                2.0
            } else {
                (rho / gap).min(2.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectral_radius_bound_of_zero_matrix_is_zero() {
        assert_eq!(spectral_radius_bound(&Matrix::zeros(3, 3)), 0.0);
    }

    #[test]
    fn spectral_radius_bound_dominates_true_radius_for_simple_cases() {
        // For diag(2, 1) the spectral radius is 2; the row-sum bound is 2.
        let m = Matrix::from_diag(&[2.0, 1.0]);
        assert!((spectral_radius_bound(&m) - 2.0).abs() < 1e-12);
        // For the all-ones 3x3 matrix the radius is 3; the bound equals 3.
        let ones = Matrix::filled(3, 3, 1.0);
        assert!((spectral_radius_bound(&ones) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvalue_bounds_contain_centre_and_shrink_with_radius() {
        let centre = vec![5.0, 2.0, 1.0];
        let tight = eigenvalue_bounds(&centre, &Matrix::zeros(3, 3));
        for (i, &(lo, hi)) in tight.iter().enumerate() {
            assert_eq!(lo, centre[i]);
            assert_eq!(hi, centre[i]);
        }
        let loose = eigenvalue_bounds(&centre, &Matrix::filled(3, 3, 0.5));
        for (i, &(lo, hi)) in loose.iter().enumerate() {
            assert!(lo < centre[i] && centre[i] < hi);
            assert!((hi - lo - 3.0).abs() < 1e-12); // 2 * rho = 2 * 1.5
        }
    }

    #[test]
    fn eigenvector_bounds_scale_with_gap() {
        let eigenvalues = vec![10.0, 1.0, 0.9];
        let radius = Matrix::filled(3, 3, 0.1); // rho bound = 0.3
        let dev = eigenvector_bounds(&eigenvalues, &radius);
        // The well-separated eigenvalue has a small deviation bound…
        assert!(dev[0] < 0.05);
        // …while the nearly-degenerate pair has a much larger one.
        assert!(dev[1] > dev[0]);
        assert!(dev[1] <= 2.0 && dev[2] <= 2.0);
    }

    #[test]
    fn degenerate_spectrum_gives_vacuous_bound() {
        let dev = eigenvector_bounds(&[3.0, 3.0], &Matrix::filled(2, 2, 0.1));
        assert_eq!(dev, vec![2.0, 2.0]);
        // Single eigenvalue: no gap exists, bound is vacuous as well.
        let single = eigenvector_bounds(&[3.0], &Matrix::filled(1, 1, 0.1));
        assert_eq!(single, vec![2.0]);
    }
}
