use std::fmt;
use std::io;

use ivmf_interval::IntervalError;

/// Errors produced by the distributed Gram layer.
///
/// Worker-level faults (a dead connection, a corrupt frame) never reach
/// this type — the coordinator absorbs them by reassigning the unit.
/// What surfaces here is unrecoverable coordination failure: the
/// listener cannot bind, workers cannot be launched, or a merge hits an
/// interval-algebra error.
#[derive(Debug)]
pub enum DistribError {
    /// An I/O error outside any single worker's fault domain.
    Io(io::Error),
    /// An error from the interval accumulators during merge or local
    /// fallback.
    Interval(IntervalError),
    /// Worker processes could not be launched.
    Spawn(String),
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Io(e) => write!(f, "distributed Gram I/O error: {e}"),
            DistribError::Interval(e) => write!(f, "distributed Gram merge error: {e}"),
            DistribError::Spawn(msg) => write!(f, "worker launch failed: {msg}"),
        }
    }
}

impl std::error::Error for DistribError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistribError::Io(e) => Some(e),
            DistribError::Interval(e) => Some(e),
            DistribError::Spawn(_) => None,
        }
    }
}

impl From<io::Error> for DistribError {
    fn from(e: io::Error) -> Self {
        DistribError::Io(e)
    }
}

impl From<IntervalError> for DistribError {
    fn from(e: IntervalError) -> Self {
        DistribError::Interval(e)
    }
}
