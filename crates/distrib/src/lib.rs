//! # ivmf-distrib — multi-process distributed interval Gram
//!
//! A coordinator/worker fan-out for the streaming interval-Gram fold,
//! std-only (loopback TCP, no external dependencies), whose merged
//! result is **bitwise identical** to the single-process fold.
//!
//! ## Why the merge is exact
//!
//! The streaming accumulators fold fixed 128-row chunks
//! (`STREAM_CHUNK_ROWS`) and seal every 64 chunks into a merge group
//! (`GROUP_ROWS` = 8192 rows), folding sealed groups left-to-right into
//! a master sum. Floating-point addition is not associative, so a
//! distributed merge is exact only if it reproduces *that* association
//! order. The coordinator therefore cuts the global row stream into
//! work units on `GROUP_ROWS` boundaries: each unit is exactly one
//! merge group of the single-process fold (the last may be partial). A
//! worker folds its unit from a fresh accumulator — producing bitwise
//! the group partial the single process seals at the same boundary,
//! because chunk contents, chunk order, and group seal points all
//! coincide — and the coordinator absorbs the returned partials
//! strictly in unit order. The master's group-by-group fold order is
//! then identical to the single process's, regardless of worker count,
//! scheduling, or which worker computed what.
//!
//! ## Wire format and failure policy
//!
//! Messages are length-delimited checksummed frames
//! (see [`protocol`]); partial accumulators travel as their snapshot
//! `write_state` bytes, so wire bit-exactness is inherited rather than
//! re-implemented. Any fault on a connection — death, truncation, a
//! flipped bit caught by the FNV-1a checksum — marks that worker dead
//! and requeues its units to the survivors (or the local fold when none
//! remain), with exactly-once merge accounting by unit id. A corrupt
//! frame is never merged: the checksum turns it into a reassignment.
//!
//! The pipeline enables this layer when `IVMF_WORKERS` > 1 (see
//! `ivmf-core`); `IVMF_WORKER_SPAWN=1` switches the workers from
//! in-process threads to spawned `ivmf-worker` child processes. Neither
//! variable enters stage-cache fingerprints: the cached bytes are
//! identical for every worker count.

mod coordinator;
mod error;
mod partial;
pub mod protocol;
mod worker;

pub use coordinator::{GramCoordinator, GramSpec, WorkerMode, WORKER_BIN_ENV};
pub use error::DistribError;
pub use partial::GramPartial;
pub use protocol::{UnitPiece, WorkUnit};
pub use worker::serve_connection;

use ivmf_linalg::streaming::GROUP_ROWS;

/// Minimum total rows for which distributing the fold can pay off: below
/// one merge group there is a single work unit and the fan-out is pure
/// overhead. Callers gate on `rows > DISTRIB_MIN_ROWS`.
pub const DISTRIB_MIN_ROWS: usize = GROUP_ROWS;

/// Builds a coordinator from the environment's execution-strategy
/// variables: `IVMF_WORKERS` workers, threads unless
/// `IVMF_WORKER_SPAWN` asks for child processes.
pub fn coordinator_from_env(spec: GramSpec) -> Result<GramCoordinator, DistribError> {
    let workers = ivmf_env::workers();
    let mode = if ivmf_env::worker_spawn() {
        WorkerMode::Processes
    } else {
        WorkerMode::Threads
    };
    GramCoordinator::new(spec, workers, mode)
}
