//! The per-unit partial accumulator: what a worker computes and what the
//! coordinator merges.

use std::io::{self, BufRead, Write};

use ivmf_interval::{
    CsrIntervalShard, IntervalMatrix, Result as IntervalResult, SparseStreamingIntervalGram,
    StreamingIntervalGram,
};

use crate::protocol::{UnitPiece, WorkUnit};

/// A streaming interval-Gram accumulator in either kernel
/// representation — the same pair the pipeline's Gram stage dispatches
/// between. Workers fold their unit's rows into one of these; the
/// coordinator merges them (in unit order) with `absorb_unit`, which
/// reproduces the single-process fold bit for bit.
#[derive(Debug, Clone)]
pub enum GramPartial {
    /// The dense chunk-realigned accumulator.
    Dense(StreamingIntervalGram),
    /// The sparse CSR counterpart.
    Sparse(SparseStreamingIntervalGram),
}

impl GramPartial {
    /// An empty accumulator with the given kernel representation and
    /// interval flavour. Workers must *replicate* the coordinator's
    /// whole-stream flavour decision rather than re-derive it from the
    /// unit's local row count — `use_mr_gram` depends on total rows the
    /// worker never sees.
    pub fn empty(cols: usize, mid_rad: bool, sparse: bool) -> GramPartial {
        if sparse {
            GramPartial::Sparse(SparseStreamingIntervalGram::with_flavour(cols, mid_rad))
        } else {
            GramPartial::Dense(StreamingIntervalGram::with_flavour(cols, mid_rad))
        }
    }

    /// Folds one row block. Cross-representation pushes convert the
    /// piece exactly as the pipeline's accumulator does (both
    /// conversions preserve the fold bit for bit).
    pub fn push_piece(&mut self, piece: &UnitPiece) -> IntervalResult<()> {
        match (self, piece) {
            (GramPartial::Dense(acc), UnitPiece::Dense(m)) => acc.push_shard(m),
            (GramPartial::Dense(acc), UnitPiece::Csr(s)) => acc.push_shard(&s.to_dense()),
            (GramPartial::Sparse(acc), UnitPiece::Dense(m)) => {
                acc.push_shard(&CsrIntervalShard::from_dense(m))
            }
            (GramPartial::Sparse(acc), UnitPiece::Csr(s)) => acc.push_shard(s),
        }
    }

    /// Computes a unit's partial from scratch — the worker's entire job,
    /// also used verbatim by the coordinator's local-fallback path so a
    /// locally completed unit is bitwise the same as a remote one.
    pub fn compute(unit: &WorkUnit) -> IntervalResult<GramPartial> {
        let mut acc = GramPartial::empty(unit.cols, unit.mid_rad, unit.sparse);
        for piece in &unit.pieces {
            acc.push_piece(piece)?;
        }
        Ok(acc)
    }

    /// Merges a following unit's accumulator into this one. Both sides'
    /// preconditions (`absorb_unit` on the inner accumulators) enforce
    /// the merge-group alignment that makes the merged state bitwise
    /// identical to the single-process fold.
    pub fn absorb(&mut self, other: GramPartial) -> IntervalResult<()> {
        match (self, other) {
            (GramPartial::Dense(a), GramPartial::Dense(b)) => a.absorb_unit(b),
            (GramPartial::Sparse(a), GramPartial::Sparse(b)) => a.absorb_unit(b),
            _ => Err(ivmf_interval::IntervalError::Source(
                "absorb kernel mismatch: the unit was folded through a different Gram \
                 representation"
                    .into(),
            )),
        }
    }

    /// Total rows folded so far.
    pub fn rows_seen(&self) -> usize {
        match self {
            GramPartial::Dense(acc) => acc.rows_seen(),
            GramPartial::Sparse(acc) => acc.rows_seen(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            GramPartial::Dense(acc) => acc.cols(),
            GramPartial::Sparse(acc) => acc.cols(),
        }
    }

    /// Whether the accumulator folds through the mid/rad flavour.
    pub fn is_mid_rad(&self) -> bool {
        match self {
            GramPartial::Dense(acc) => acc.is_mid_rad(),
            GramPartial::Sparse(acc) => acc.is_mid_rad(),
        }
    }

    /// The finished interval Gram.
    pub fn finish(&self) -> IntervalResult<IntervalMatrix> {
        match self {
            GramPartial::Dense(acc) => acc.finish(),
            GramPartial::Sparse(acc) => acc.finish(),
        }
    }

    /// Serializes the accumulator state (the same bit-exact format the
    /// snapshot layer persists).
    pub fn write_state(&self, w: &mut dyn Write) -> io::Result<()> {
        match self {
            GramPartial::Dense(acc) => acc.write_state(w),
            GramPartial::Sparse(acc) => acc.write_state(w),
        }
    }

    /// Deserializes a state written by [`GramPartial::write_state`]. The
    /// caller supplies the expected representation — the wire's framing
    /// already names it, and a mismatching state header is an error.
    pub fn read_state(sparse: bool, r: &mut dyn BufRead) -> io::Result<GramPartial> {
        if sparse {
            SparseStreamingIntervalGram::read_state(r).map(GramPartial::Sparse)
        } else {
            StreamingIntervalGram::read_state(r).map(GramPartial::Dense)
        }
    }
}
