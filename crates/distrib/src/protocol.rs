//! The length-delimited binary wire protocol between the Gram
//! coordinator and its workers.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [kind: u8] [payload_len: u64 LE] [payload bytes] [fnv1a64(payload): u64 LE]
//! ```
//!
//! The trailing checksum is a word-parallel FNV-1a variant over the
//! payload (see [`fnv1a64`]), so a bit flipped in
//! transit (or by a faulty worker) surfaces as a hard
//! [`std::io::ErrorKind::InvalidData`] error at the receiver instead of a
//! silently wrong merge; a truncated frame surfaces as `UnexpectedEof`.
//! Both are treated by the coordinator as the death of the peer that sent
//! the frame — the shard is reassigned, never merged from a suspect
//! partial.
//!
//! Payloads reuse the bit-exact text/binary primitives of
//! [`ivmf_linalg::state_text`]: greppable one-line headers, bulk `f64`
//! payloads as raw little-endian runs. A `PARTIAL` payload embeds the
//! accumulator's own `write_state` bytes verbatim, so the wire format
//! inherits the snapshot format's bit-exactness guarantees for free.

use std::io::{self, BufRead, Read, Write};

use ivmf_interval::{CsrIntervalShard, IntervalMatrix};
use ivmf_linalg::state_text::{bad_state, checked_len, read_f64_run, read_line, write_f64_run};
use ivmf_linalg::Matrix;

/// Frame kind: a work unit travelling coordinator → worker.
pub const FRAME_JOB: u8 = 1;
/// Frame kind: a serialized partial accumulator travelling worker →
/// coordinator.
pub const FRAME_PARTIAL: u8 = 2;
/// Frame kind: orderly end of the session (empty payload).
pub const FRAME_SHUTDOWN: u8 = 3;

/// Ceiling on a declared payload length: a corrupted length field must
/// not trigger a multi-gigabyte allocation before the checksum gets a
/// chance to reject the frame.
pub const MAX_FRAME_LEN: u64 = 1 << 31;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// How many independent FNV-1a chains [`fnv1a64`] runs. Plain byte-wise
/// FNV-1a is a single xor→multiply dependency chain — one multiply
/// *latency* per byte, ~0.7 GB/s — and frames here carry tens of
/// megabytes, so at that speed the checksum would cost a third of the
/// Gram arithmetic it protects. Eight chains, each folding a whole
/// little-endian `u64` per xor→multiply step, cut the multiply count 8×
/// and let the CPU overlap what remains (~5.7 GB/s measured).
const FNV_LANES: usize = 8;

/// Word-parallel FNV-1a over a byte slice: the input is consumed 64
/// bytes per round, word `j` of each round feeding lane `j` with one
/// `lane = (lane ^ word) * FNV_PRIME` step (the FNV-1a construction
/// applied to 64-bit units); trailing bytes feed lane 0 byte-wise, and
/// the eight lane digests plus the total length are folded with a final
/// canonical byte-wise FNV-1a pass. Any flipped bit perturbs its lane
/// and every subsequent multiply, and the length term keeps shifted or
/// truncated payloads from colliding trivially. Dependency-free like the
/// stage cache's fingerprint hash, but fast enough to disappear next to
/// the Gram arithmetic even on multi-megabyte frames. This is an
/// integrity check against line noise and faulty peers, not a
/// cryptographic MAC — same contract as plain FNV.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut lanes = [FNV_OFFSET; FNV_LANES];
    let mut rounds = bytes.chunks_exact(8 * FNV_LANES);
    for round in &mut rounds {
        for (lane, word) in lanes.iter_mut().zip(round.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("exact word"));
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }
    for &b in rounds.remainder() {
        lanes[0] ^= u64::from(b);
        lanes[0] = lanes[0].wrapping_mul(FNV_PRIME);
    }
    let mut h = FNV_OFFSET;
    for word in lanes.iter().chain(std::iter::once(&(bytes.len() as u64))) {
        for &b in &word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Writes one checksummed frame. The caller flushes.
pub fn write_frame(w: &mut dyn Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a64(payload).to_le_bytes())
}

/// Reads one frame, validating the declared length and the checksum.
/// Returns `None` on a clean end-of-stream at a frame boundary (the peer
/// closed the connection between frames); any mid-frame truncation is an
/// `UnexpectedEof` error and any checksum mismatch is `InvalidData`.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut kind = [0u8; 1];
    // Distinguish "no more frames" from "frame cut short": end-of-stream
    // before the first byte is a clean close.
    if r.read(&mut kind)? == 0 {
        return Ok(None);
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(bad_state(format!(
            "frame declares a {len}-byte payload (limit {MAX_FRAME_LEN})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum_bytes = [0u8; 8];
    r.read_exact(&mut sum_bytes)?;
    let declared = u64::from_le_bytes(sum_bytes);
    let actual = fnv1a64(&payload);
    if declared != actual {
        return Err(bad_state(format!(
            "frame checksum mismatch: declared {declared:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(Some((kind[0], payload)))
}

/// One row block of a work unit: the same dense / sparse-CSR shard kinds
/// the pipeline's Gram stage folds, preserved through the wire bit for
/// bit.
#[derive(Debug, Clone)]
pub enum UnitPiece {
    /// A dense interval row block.
    Dense(IntervalMatrix),
    /// A sparse CSR interval row block.
    Csr(CsrIntervalShard),
}

impl UnitPiece {
    /// Number of rows in the piece.
    pub fn rows(&self) -> usize {
        match self {
            UnitPiece::Dense(m) => m.rows(),
            UnitPiece::Csr(s) => s.rows(),
        }
    }
}

/// One work unit: a `unit_id`-stamped run of consecutive global rows,
/// cut on merge-group boundaries so the coordinator can absorb the
/// worker's partial with `absorb_unit` (see the crate docs for the
/// alignment argument).
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Zero-based position of the unit in the global row order — the
    /// coordinator merges partials strictly in this order.
    pub id: usize,
    /// Whether the worker should fold through the mid/rad (`true`) or
    /// exact lo/hi/cross (`false`) flavour — replicating the
    /// coordinator's whole-stream dispatch decision.
    pub mid_rad: bool,
    /// Whether the worker's accumulator is the sparse CSR one.
    pub sparse: bool,
    /// Number of columns (identical for every piece).
    pub cols: usize,
    /// The unit's row blocks, in row order.
    pub pieces: Vec<UnitPiece>,
}

impl WorkUnit {
    /// Total number of rows across the unit's pieces.
    pub fn rows(&self) -> usize {
        self.pieces.iter().map(UnitPiece::rows).sum()
    }
}

/// Writes a run of `usize` values as little-endian `u64`s terminated by
/// one `\n` — the integer twin of
/// [`write_f64_run`](ivmf_linalg::state_text::write_f64_run), for the
/// CSR index payloads that would be needlessly slow as text.
fn write_usize_run(w: &mut dyn Write, vals: &[usize]) -> io::Result<()> {
    let mut bytes = vec![0u8; vals.len().saturating_mul(8)];
    for (dst, &v) in bytes.chunks_exact_mut(8).zip(vals) {
        dst.copy_from_slice(&(v as u64).to_le_bytes());
    }
    w.write_all(&bytes)?;
    w.write_all(b"\n")
}

/// Reads a run written by [`write_usize_run`], requiring exactly
/// `expected` values plus the terminator.
fn read_usize_run(r: &mut dyn BufRead, expected: usize) -> io::Result<Vec<usize>> {
    let nbytes = checked_len(expected, 8)?;
    let mut raw = vec![0u8; nbytes];
    r.read_exact(&mut raw)?;
    let mut out = Vec::with_capacity(expected);
    for c in raw.chunks_exact(8) {
        let mut b = [0u8; 8];
        b.copy_from_slice(c);
        let v = u64::from_le_bytes(b);
        out.push(usize::try_from(v).map_err(|_| bad_state("usize value overflows"))?);
    }
    let mut sep = [0u8; 1];
    r.read_exact(&mut sep)?;
    if sep[0] != b'\n' {
        return Err(bad_state("missing terminator after binary usize run"));
    }
    Ok(out)
}

/// Encodes a work unit as a `JOB` payload.
pub fn encode_job(unit: &WorkUnit) -> io::Result<Vec<u8>> {
    // Reserve the full payload up front — these buffers run to tens of
    // megabytes, where doubling growth would memcpy the whole prefix
    // several times over.
    let estimate: usize = unit
        .pieces
        .iter()
        .map(|p| match p {
            UnitPiece::Dense(m) => 16 * m.rows().saturating_mul(m.cols()) + 64,
            UnitPiece::Csr(s) => 24 * s.nnz() + 8 * s.rows() + 80,
        })
        .sum::<usize>()
        + 64;
    let mut buf = Vec::with_capacity(estimate.min(MAX_FRAME_LEN as usize));
    writeln!(
        buf,
        "job {} {} {} {} {}",
        unit.id,
        unit.cols,
        unit.mid_rad as u8,
        unit.sparse as u8,
        unit.pieces.len()
    )?;
    for piece in &unit.pieces {
        match piece {
            UnitPiece::Dense(m) => {
                writeln!(buf, "piece dense {}", m.rows())?;
                write_f64_run(&mut buf, m.lo().as_slice())?;
                write_f64_run(&mut buf, m.hi().as_slice())?;
            }
            UnitPiece::Csr(s) => {
                writeln!(buf, "piece csr {} {}", s.rows(), s.nnz())?;
                write_usize_run(&mut buf, s.lo_shard().row_ptr())?;
                write_usize_run(&mut buf, s.lo_shard().col_idx())?;
                write_f64_run(&mut buf, s.lo_shard().values())?;
                let mut hi = Vec::with_capacity(s.nnz());
                for i in 0..s.rows() {
                    let (_, _, h) = s.row_entries(i);
                    hi.extend_from_slice(h);
                }
                write_f64_run(&mut buf, &hi)?;
            }
        }
    }
    Ok(buf)
}

/// Decodes a `JOB` payload. Every structural rule the constructors
/// enforce is re-checked on this side, so a malformed unit is an error,
/// never a panic.
pub fn decode_job(payload: &[u8]) -> io::Result<WorkUnit> {
    let mut r: &[u8] = payload;
    let header = read_line(&mut r)?;
    let toks: Vec<&str> = header.split_ascii_whitespace().collect();
    if toks.len() != 6 || toks[0] != "job" {
        return Err(bad_state(format!("malformed job header {header:?}")));
    }
    let parse = |tok: &str| -> io::Result<usize> {
        tok.parse()
            .map_err(|_| bad_state(format!("malformed job header field {tok:?}")))
    };
    let id = parse(toks[1])?;
    let cols = parse(toks[2])?;
    let mid_rad = parse_flag(toks[3])?;
    let sparse = parse_flag(toks[4])?;
    let n_pieces = parse(toks[5])?;
    let mut pieces = Vec::with_capacity(n_pieces.min(1 << 16));
    for _ in 0..n_pieces {
        let line = read_line(&mut r)?;
        let ptoks: Vec<&str> = line.split_ascii_whitespace().collect();
        match ptoks.as_slice() {
            ["piece", "dense", rows_tok] => {
                let rows = parse(rows_tok)?;
                let n = checked_len(rows, cols)?;
                let lo = Matrix::from_vec(rows, cols, read_f64_run(&mut r, n)?)
                    .map_err(|e| bad_state(e.to_string()))?;
                let hi = Matrix::from_vec(rows, cols, read_f64_run(&mut r, n)?)
                    .map_err(|e| bad_state(e.to_string()))?;
                let m =
                    IntervalMatrix::from_bounds(lo, hi).map_err(|e| bad_state(e.to_string()))?;
                pieces.push(UnitPiece::Dense(m));
            }
            ["piece", "csr", rows_tok, nnz_tok] => {
                let rows = parse(rows_tok)?;
                let nnz = parse(nnz_tok)?;
                let row_ptr = read_usize_run(&mut r, rows + 1)?;
                let col_idx = read_usize_run(&mut r, nnz)?;
                let lo = read_f64_run(&mut r, nnz)?;
                let hi = read_f64_run(&mut r, nnz)?;
                let shard = CsrIntervalShard::new(rows, cols, row_ptr, col_idx, lo, hi)
                    .map_err(|e| bad_state(e.to_string()))?;
                pieces.push(UnitPiece::Csr(shard));
            }
            _ => return Err(bad_state(format!("malformed piece header {line:?}"))),
        }
    }
    if !r.is_empty() {
        return Err(bad_state("trailing bytes after the last job piece"));
    }
    Ok(WorkUnit {
        id,
        mid_rad,
        sparse,
        cols,
        pieces,
    })
}

fn parse_flag(tok: &str) -> io::Result<bool> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(bad_state(format!("malformed flag {tok:?}"))),
    }
}

/// Encodes a `PARTIAL` payload: the unit id plus the accumulator's own
/// `write_state` bytes, appended verbatim by the caller.
pub fn encode_partial_header(unit_id: usize) -> Vec<u8> {
    format!("partial {unit_id}\n").into_bytes()
}

/// Splits a `PARTIAL` payload into `(unit_id, accumulator state bytes)`.
pub fn decode_partial(payload: &[u8]) -> io::Result<(usize, &[u8])> {
    let mut r: &[u8] = payload;
    let header = read_line(&mut r)?;
    let toks: Vec<&str> = header.split_ascii_whitespace().collect();
    if toks.len() != 2 || toks[0] != "partial" {
        return Err(bad_state(format!("malformed partial header {header:?}")));
    }
    let unit_id = toks[1]
        .parse()
        .map_err(|_| bad_state(format!("malformed partial unit id {:?}", toks[1])))?;
    Ok((unit_id, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_piece(rows: usize, cols: usize, seed: u64) -> IntervalMatrix {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let lo: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + 0.25).collect();
        IntervalMatrix::from_bounds(
            Matrix::from_vec(rows, cols, lo).unwrap(),
            Matrix::from_vec(rows, cols, hi).unwrap(),
        )
        .unwrap()
    }

    fn csr_piece(rows: usize, cols: usize, seed: u64) -> CsrIntervalShard {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let mut entries = Vec::new();
        for i in 0..rows {
            for _ in 0..3 {
                let c = (next() as usize) % cols;
                let lo = ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                if !entries.iter().any(|&(r, cc, _, _)| r == i && cc == c) {
                    entries.push((i, c, lo, lo + 0.125));
                }
            }
        }
        CsrIntervalShard::from_triplets(rows, cols, &entries).unwrap()
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let payload = b"hello frames".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_JOB, &payload).unwrap();
        let (kind, back) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(kind, FRAME_JOB);
        assert_eq!(back, payload);

        // Clean end-of-stream at a frame boundary is None, not an error.
        assert!(read_frame(&mut &buf[..0]).unwrap().is_none());

        // Truncation mid-frame is UnexpectedEof.
        let err = read_frame(&mut &buf[..buf.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // A flipped payload bit is InvalidData via the checksum.
        let mut flipped = buf.clone();
        flipped[10] ^= 0x40;
        let err = read_frame(&mut &flipped[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A corrupted length field cannot trigger a huge allocation.
        let mut huge = buf.clone();
        huge[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    #[test]
    fn job_payload_round_trips_dense_and_csr_pieces_bit_for_bit() {
        let unit = WorkUnit {
            id: 7,
            mid_rad: true,
            sparse: false,
            cols: 5,
            pieces: vec![
                UnitPiece::Dense(dense_piece(4, 5, 1)),
                UnitPiece::Csr(csr_piece(6, 5, 2)),
                UnitPiece::Dense(dense_piece(3, 5, 3)),
            ],
        };
        let payload = encode_job(&unit).unwrap();
        let back = decode_job(&payload).unwrap();
        assert_eq!(back.id, 7);
        assert!(back.mid_rad);
        assert!(!back.sparse);
        assert_eq!(back.cols, 5);
        assert_eq!(back.pieces.len(), 3);
        for (a, b) in unit.pieces.iter().zip(&back.pieces) {
            match (a, b) {
                (UnitPiece::Dense(x), UnitPiece::Dense(y)) => {
                    assert_eq!(x.lo().as_slice(), y.lo().as_slice());
                    assert_eq!(x.hi().as_slice(), y.hi().as_slice());
                }
                (UnitPiece::Csr(x), UnitPiece::Csr(y)) => assert_eq!(x, y),
                _ => panic!("piece kind changed in transit"),
            }
        }
    }

    #[test]
    fn job_decoder_rejects_malformed_payloads() {
        assert!(decode_job(b"nonsense\n").is_err());
        assert!(decode_job(b"job 1 5 2 0 0\n").is_err()); // bad flag
        assert!(decode_job(b"job 1 5 1 0 1\npiece weird 3\n").is_err());
        // Declared piece missing its payload → UnexpectedEof.
        let err = decode_job(b"job 1 5 1 0 1\npiece dense 3\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Trailing junk after the declared pieces is rejected.
        let unit = WorkUnit {
            id: 0,
            mid_rad: false,
            sparse: false,
            cols: 2,
            pieces: vec![UnitPiece::Dense(dense_piece(2, 2, 9))],
        };
        let mut payload = encode_job(&unit).unwrap();
        payload.extend_from_slice(b"junk");
        assert!(decode_job(&payload).is_err());
    }

    #[test]
    fn partial_payload_round_trips() {
        let mut payload = encode_partial_header(42);
        payload.extend_from_slice(b"intervalgram state bytes");
        let (id, state) = decode_partial(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(state, b"intervalgram state bytes");
        assert!(decode_partial(b"partial notanumber\n").is_err());
        assert!(decode_partial(b"other 3\n").is_err());
    }
}
