//! The length-delimited binary wire protocol between the Gram
//! coordinator and its workers.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [kind: u8] [payload_len: u64 LE] [payload bytes] [fnv1a64(payload): u64 LE]
//! ```
//!
//! The trailing checksum is a word-parallel FNV-1a variant over the
//! payload (see [`fnv1a64`]), so a bit flipped in
//! transit (or by a faulty worker) surfaces as a hard
//! [`std::io::ErrorKind::InvalidData`] error at the receiver instead of a
//! silently wrong merge; a truncated frame surfaces as `UnexpectedEof`.
//! Both are treated by the coordinator as the death of the peer that sent
//! the frame — the shard is reassigned, never merged from a suspect
//! partial.
//!
//! Payloads reuse the bit-exact text/binary primitives of
//! [`ivmf_linalg::state_text`]: greppable one-line headers, bulk `f64`
//! payloads as raw little-endian runs. A `PARTIAL` payload embeds the
//! accumulator's own `write_state` bytes verbatim, so the wire format
//! inherits the snapshot format's bit-exactness guarantees for free.
//!
//! A frame **is** one [`ivmf_data::binfmt`] record — the same
//! `[kind][len][payload][checksum]` container the binary shard files use
//! — so the framing, the checksum and their corruption taxonomy live in
//! exactly one place. A `JOB` payload likewise carries its row-block
//! pieces as `binfmt` dense/CSR block records after a one-line text
//! header, sharing the shard codec end to end.

use std::io::{self, Read, Write};

use ivmf_data::binfmt;
use ivmf_interval::{CsrIntervalShard, IntervalMatrix};
use ivmf_linalg::state_text::{bad_state, read_line};

/// The workspace's shared word-parallel FNV-1a digest (re-exported from
/// [`ivmf_data::fnv`] so existing callers keep compiling): the checksum
/// at the end of every frame.
pub use ivmf_data::fnv::fnv1a64;

/// Frame kind: a work unit travelling coordinator → worker.
pub const FRAME_JOB: u8 = 1;
/// Frame kind: a serialized partial accumulator travelling worker →
/// coordinator.
pub const FRAME_PARTIAL: u8 = 2;
/// Frame kind: orderly end of the session (empty payload).
pub const FRAME_SHUTDOWN: u8 = 3;

/// Ceiling on a declared payload length: a corrupted length field must
/// not trigger a multi-gigabyte allocation before the checksum gets a
/// chance to reject the frame. (The shard container's record limit — a
/// frame is the same record.)
pub const MAX_FRAME_LEN: u64 = binfmt::MAX_RECORD_LEN;

/// Writes one checksummed frame (= one [`binfmt`] record). The caller
/// flushes.
pub fn write_frame(w: &mut dyn Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    binfmt::write_record(w, kind, payload)
}

/// Reads one frame, validating the declared length and the checksum.
/// Returns `None` on a clean end-of-stream at a frame boundary (the peer
/// closed the connection between frames); any mid-frame truncation is an
/// `UnexpectedEof` error and any checksum mismatch is `InvalidData` —
/// the [`binfmt::read_record`] corruption taxonomy verbatim.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    binfmt::read_record(r)
}

/// One row block of a work unit: the same dense / sparse-CSR shard kinds
/// the pipeline's Gram stage folds, preserved through the wire bit for
/// bit.
#[derive(Debug, Clone)]
pub enum UnitPiece {
    /// A dense interval row block.
    Dense(IntervalMatrix),
    /// A sparse CSR interval row block.
    Csr(CsrIntervalShard),
}

impl UnitPiece {
    /// Number of rows in the piece.
    pub fn rows(&self) -> usize {
        match self {
            UnitPiece::Dense(m) => m.rows(),
            UnitPiece::Csr(s) => s.rows(),
        }
    }
}

/// One work unit: a `unit_id`-stamped run of consecutive global rows,
/// cut on merge-group boundaries so the coordinator can absorb the
/// worker's partial with `absorb_unit` (see the crate docs for the
/// alignment argument).
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Zero-based position of the unit in the global row order — the
    /// coordinator merges partials strictly in this order.
    pub id: usize,
    /// Whether the worker should fold through the mid/rad (`true`) or
    /// exact lo/hi/cross (`false`) flavour — replicating the
    /// coordinator's whole-stream dispatch decision.
    pub mid_rad: bool,
    /// Whether the worker's accumulator is the sparse CSR one.
    pub sparse: bool,
    /// Number of columns (identical for every piece).
    pub cols: usize,
    /// The unit's row blocks, in row order.
    pub pieces: Vec<UnitPiece>,
}

impl WorkUnit {
    /// Total number of rows across the unit's pieces.
    pub fn rows(&self) -> usize {
        self.pieces.iter().map(UnitPiece::rows).sum()
    }
}

/// Encodes a work unit as a `JOB` payload: a one-line text header
/// followed by one [`binfmt`] dense/CSR block record per piece — the
/// exact record bytes a binary shard file would hold for the same block.
pub fn encode_job(unit: &WorkUnit) -> io::Result<Vec<u8>> {
    // Reserve the full payload up front — these buffers run to tens of
    // megabytes, where doubling growth would memcpy the whole prefix
    // several times over.
    let estimate: usize = unit
        .pieces
        .iter()
        .map(|p| match p {
            UnitPiece::Dense(m) => 16 * m.rows().saturating_mul(m.cols()) + 64,
            UnitPiece::Csr(s) => 24 * s.nnz() + 8 * s.rows() + 80,
        })
        .sum::<usize>()
        + 64;
    let mut buf = Vec::with_capacity(estimate.min(MAX_FRAME_LEN as usize));
    writeln!(
        buf,
        "job {} {} {} {} {}",
        unit.id,
        unit.cols,
        unit.mid_rad as u8,
        unit.sparse as u8,
        unit.pieces.len()
    )?;
    for piece in &unit.pieces {
        match piece {
            UnitPiece::Dense(m) => {
                let payload = binfmt::encode_dense_block(m)?;
                binfmt::write_record(&mut buf, binfmt::REC_DENSE_BLOCK, &payload)?;
            }
            UnitPiece::Csr(s) => {
                let payload = binfmt::encode_csr_block(s)?;
                binfmt::write_record(&mut buf, binfmt::REC_CSR_BLOCK, &payload)?;
            }
        }
    }
    Ok(buf)
}

/// Decodes a `JOB` payload. Every structural rule the constructors
/// enforce is re-checked on this side, so a malformed unit is an error,
/// never a panic.
pub fn decode_job(payload: &[u8]) -> io::Result<WorkUnit> {
    let mut r: &[u8] = payload;
    let header = read_line(&mut r)?;
    let toks: Vec<&str> = header.split_ascii_whitespace().collect();
    if toks.len() != 6 || toks[0] != "job" {
        return Err(bad_state(format!("malformed job header {header:?}")));
    }
    let parse = |tok: &str| -> io::Result<usize> {
        tok.parse()
            .map_err(|_| bad_state(format!("malformed job header field {tok:?}")))
    };
    let id = parse(toks[1])?;
    let cols = parse(toks[2])?;
    let mid_rad = parse_flag(toks[3])?;
    let sparse = parse_flag(toks[4])?;
    let n_pieces = parse(toks[5])?;
    let mut pieces = Vec::with_capacity(n_pieces.min(1 << 16));
    for _ in 0..n_pieces {
        // Each piece is a self-checksummed binfmt block record; a missing
        // record (clean end inside the declared count) is a truncation.
        let (kind, record) = binfmt::read_record(&mut r)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "job payload ended before its declared piece count",
            )
        })?;
        match kind {
            binfmt::REC_DENSE_BLOCK => {
                pieces.push(UnitPiece::Dense(binfmt::decode_dense_block(&record, cols)?));
            }
            binfmt::REC_CSR_BLOCK => {
                pieces.push(UnitPiece::Csr(binfmt::decode_csr_block(&record, cols)?));
            }
            other => return Err(bad_state(format!("unexpected piece record kind {other}"))),
        }
    }
    if !r.is_empty() {
        return Err(bad_state("trailing bytes after the last job piece"));
    }
    Ok(WorkUnit {
        id,
        mid_rad,
        sparse,
        cols,
        pieces,
    })
}

fn parse_flag(tok: &str) -> io::Result<bool> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(bad_state(format!("malformed flag {tok:?}"))),
    }
}

/// Encodes a `PARTIAL` payload: the unit id plus the accumulator's own
/// `write_state` bytes, appended verbatim by the caller.
pub fn encode_partial_header(unit_id: usize) -> Vec<u8> {
    format!("partial {unit_id}\n").into_bytes()
}

/// Splits a `PARTIAL` payload into `(unit_id, accumulator state bytes)`.
pub fn decode_partial(payload: &[u8]) -> io::Result<(usize, &[u8])> {
    let mut r: &[u8] = payload;
    let header = read_line(&mut r)?;
    let toks: Vec<&str> = header.split_ascii_whitespace().collect();
    if toks.len() != 2 || toks[0] != "partial" {
        return Err(bad_state(format!("malformed partial header {header:?}")));
    }
    let unit_id = toks[1]
        .parse()
        .map_err(|_| bad_state(format!("malformed partial unit id {:?}", toks[1])))?;
    Ok((unit_id, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivmf_linalg::Matrix;

    fn dense_piece(rows: usize, cols: usize, seed: u64) -> IntervalMatrix {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let lo: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + 0.25).collect();
        IntervalMatrix::from_bounds(
            Matrix::from_vec(rows, cols, lo).unwrap(),
            Matrix::from_vec(rows, cols, hi).unwrap(),
        )
        .unwrap()
    }

    fn csr_piece(rows: usize, cols: usize, seed: u64) -> CsrIntervalShard {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let mut entries = Vec::new();
        for i in 0..rows {
            for _ in 0..3 {
                let c = (next() as usize) % cols;
                let lo = ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                if !entries.iter().any(|&(r, cc, _, _)| r == i && cc == c) {
                    entries.push((i, c, lo, lo + 0.125));
                }
            }
        }
        CsrIntervalShard::from_triplets(rows, cols, &entries).unwrap()
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let payload = b"hello frames".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_JOB, &payload).unwrap();
        let (kind, back) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(kind, FRAME_JOB);
        assert_eq!(back, payload);

        // Clean end-of-stream at a frame boundary is None, not an error.
        assert!(read_frame(&mut &buf[..0]).unwrap().is_none());

        // Truncation mid-frame is UnexpectedEof.
        let err = read_frame(&mut &buf[..buf.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // A flipped payload bit is InvalidData via the checksum.
        let mut flipped = buf.clone();
        flipped[10] ^= 0x40;
        let err = read_frame(&mut &flipped[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A corrupted length field cannot trigger a huge allocation.
        let mut huge = buf.clone();
        huge[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    #[test]
    fn job_payload_round_trips_dense_and_csr_pieces_bit_for_bit() {
        let unit = WorkUnit {
            id: 7,
            mid_rad: true,
            sparse: false,
            cols: 5,
            pieces: vec![
                UnitPiece::Dense(dense_piece(4, 5, 1)),
                UnitPiece::Csr(csr_piece(6, 5, 2)),
                UnitPiece::Dense(dense_piece(3, 5, 3)),
            ],
        };
        let payload = encode_job(&unit).unwrap();
        let back = decode_job(&payload).unwrap();
        assert_eq!(back.id, 7);
        assert!(back.mid_rad);
        assert!(!back.sparse);
        assert_eq!(back.cols, 5);
        assert_eq!(back.pieces.len(), 3);
        for (a, b) in unit.pieces.iter().zip(&back.pieces) {
            match (a, b) {
                (UnitPiece::Dense(x), UnitPiece::Dense(y)) => {
                    assert_eq!(x.lo().as_slice(), y.lo().as_slice());
                    assert_eq!(x.hi().as_slice(), y.hi().as_slice());
                }
                (UnitPiece::Csr(x), UnitPiece::Csr(y)) => assert_eq!(x, y),
                _ => panic!("piece kind changed in transit"),
            }
        }
    }

    #[test]
    fn job_decoder_rejects_malformed_payloads() {
        assert!(decode_job(b"nonsense\n").is_err());
        assert!(decode_job(b"job 1 5 2 0 0\n").is_err()); // bad flag

        // A declared piece with no record behind it → UnexpectedEof.
        let err = decode_job(b"job 1 5 1 0 1\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let unit = WorkUnit {
            id: 0,
            mid_rad: false,
            sparse: false,
            cols: 2,
            pieces: vec![UnitPiece::Dense(dense_piece(2, 2, 9))],
        };
        let payload = encode_job(&unit).unwrap();

        // Truncation inside a piece record → UnexpectedEof.
        let err = decode_job(&payload[..payload.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // A flipped bit inside a piece record → InvalidData (checksum).
        let mut flipped = payload.clone();
        let n = flipped.len();
        flipped[n - 20] ^= 0x20;
        let err = decode_job(&flipped).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A well-formed record of the wrong kind is rejected.
        let mut wrong_kind = b"job 1 2 0 0 1\n".to_vec();
        binfmt::write_record(&mut wrong_kind, binfmt::REC_END, b"").unwrap();
        assert!(decode_job(&wrong_kind).is_err());

        // Trailing junk after the declared pieces is rejected.
        let mut trailing = encode_job(&unit).unwrap();
        trailing.extend_from_slice(b"junk");
        assert!(decode_job(&trailing).is_err());
    }

    #[test]
    fn partial_payload_round_trips() {
        let mut payload = encode_partial_header(42);
        payload.extend_from_slice(b"intervalgram state bytes");
        let (id, state) = decode_partial(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(state, b"intervalgram state bytes");
        assert!(decode_partial(b"partial notanumber\n").is_err());
        assert!(decode_partial(b"other 3\n").is_err());
    }
}
