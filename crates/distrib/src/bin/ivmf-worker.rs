//! The worker process for the distributed Gram coordinator
//! (`IVMF_WORKER_SPAWN=1`): connects to the coordinator's loopback
//! address (argv\[1\]) and serves `JOB` frames until `SHUTDOWN`.

use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: ivmf-worker <coordinator-address>");
        return ExitCode::FAILURE;
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ivmf-worker: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ivmf-worker: cannot clone connection: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ivmf_distrib::serve_connection(reader, stream) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ivmf-worker: connection failed: {e}");
            ExitCode::FAILURE
        }
    }
}
