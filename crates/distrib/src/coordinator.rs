//! The coordinator: cuts the global row stream into merge-group-aligned
//! work units, fans them out to workers over localhost TCP, and merges
//! the returned partial accumulators — in unit order — into a master
//! accumulator bitwise identical to the single-process fold.
//!
//! # Fault and exactly-once policy
//!
//! Every dispatched unit is retained by the coordinator until a valid
//! `PARTIAL` for it has been merged (or buffered for merge). A worker
//! death — connection error, end-of-stream, truncated frame, checksum
//! mismatch, undecodable state — requeues that worker's retained units
//! onto the dispatch queue for the survivors. A unit that fails
//! [`MAX_ATTEMPTS`] times, or outlives the last worker, is computed
//! locally through the identical fold ([`GramPartial::compute`]), so the
//! result never depends on which path completed it. Duplicate partials
//! (a worker declared dead after its reply was already accepted, or a
//! reassigned unit completing twice) are dropped by id: a unit's
//! contribution enters the master accumulator exactly once.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ivmf_interval::{CsrIntervalShard, IntervalMatrix, Result as IntervalResult};
use ivmf_linalg::streaming::GROUP_ROWS;
use ivmf_linalg::Matrix;

use crate::error::DistribError;
use crate::partial::GramPartial;
use crate::protocol::{
    decode_partial, encode_job, read_frame, write_frame, UnitPiece, WorkUnit, FRAME_JOB,
    FRAME_PARTIAL, FRAME_SHUTDOWN,
};
use crate::worker::serve_connection;

/// Most units a single worker holds at once: one computing, one queued
/// behind it so the socket stays fed.
const MAX_IN_FLIGHT: usize = 2;

/// Dispatch attempts before a unit is computed locally instead of
/// reassigned again.
const MAX_ATTEMPTS: u32 = 2;

/// How long the coordinator waits for *any* worker event before
/// declaring the whole pool wedged and finishing locally. Generous next
/// to a unit's compute time (milliseconds to a few seconds), tight
/// enough that a hung worker cannot hang the pipeline.
const STALL_TIMEOUT: Duration = Duration::from_secs(60);

/// How long worker launch may take before `new` gives up.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

/// Environment variable overriding where the `ivmf-worker` binary is
/// found for [`WorkerMode::Processes`] (default: next to the current
/// executable, then one directory up — which covers Cargo's
/// `target/<profile>/deps/` test binaries).
pub const WORKER_BIN_ENV: &str = "IVMF_WORKER_BIN";

/// The shape of one distributed Gram computation, fixed up front by the
/// coordinator from whole-stream facts the workers cannot derive
/// locally.
#[derive(Debug, Clone, Copy)]
pub struct GramSpec {
    /// Number of columns of the input (and of the resulting Gram).
    pub cols: usize,
    /// Whether the fold uses the mid/rad flavour (the
    /// `use_mr_gram(total_rows, cols)` decision).
    pub mid_rad: bool,
    /// Whether the fold uses the sparse CSR accumulator.
    pub sparse: bool,
}

/// How the coordinator obtains its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// In-process threads, each speaking the full TCP protocol over a
    /// loopback connection. The default: no binary discovery, identical
    /// wire behavior to separate processes.
    Threads,
    /// Spawned `ivmf-worker` child processes (`IVMF_WORKER_SPAWN=1`).
    Processes,
    /// The caller connects workers itself (tests interpose fault
    /// injection this way): construct, read [`GramCoordinator::addr`],
    /// connect, then call [`GramCoordinator::accept_workers`].
    External,
}

enum Event {
    Partial { unit: usize, state: Vec<u8> },
    Dead { worker: usize },
}

enum Runner {
    Thread(JoinHandle<()>),
    Process(Child),
}

struct WorkerHandle {
    writer: Option<TcpStream>,
    alive: bool,
    in_flight: Vec<usize>,
    reader: Option<JoinHandle<()>>,
    runner: Option<Runner>,
}

/// Cuts an incoming stream of row blocks into [`WorkUnit`]s of at most
/// [`GROUP_ROWS`] rows, each starting on a global `GROUP_ROWS` boundary.
///
/// This is the alignment that makes the distributed merge exact: a unit
/// is one whole merge group of the single-process fold (the final unit
/// may be a partial group), so a worker's sealed accumulator is bitwise
/// the group partial the single process would have sealed at the same
/// boundary, and `absorb_unit` folds them into the master in the same
/// left-to-right order.
struct UnitCutter {
    spec: GramSpec,
    pending: Vec<UnitPiece>,
    pending_rows: usize,
    next_id: usize,
}

impl UnitCutter {
    fn new(spec: GramSpec) -> UnitCutter {
        UnitCutter {
            spec,
            pending: Vec::new(),
            pending_rows: 0,
            next_id: 0,
        }
    }

    fn push_dense(&mut self, shard: &IntervalMatrix) -> IntervalResult<Vec<WorkUnit>> {
        let cols = shard.cols();
        self.cut(shard.rows(), &mut |start, end| {
            let rows = end - start;
            let lo = Matrix::from_vec(
                rows,
                cols,
                shard.lo().as_slice()[start * cols..end * cols].to_vec(),
            )?;
            let hi = Matrix::from_vec(
                rows,
                cols,
                shard.hi().as_slice()[start * cols..end * cols].to_vec(),
            )?;
            Ok(UnitPiece::Dense(IntervalMatrix::from_bounds(lo, hi)?))
        })
    }

    fn push_csr(&mut self, shard: &CsrIntervalShard) -> IntervalResult<Vec<WorkUnit>> {
        self.cut(shard.rows(), &mut |start, end| {
            Ok(UnitPiece::Csr(shard.row_slice(start, end)?))
        })
    }

    fn cut(
        &mut self,
        rows: usize,
        slice: &mut dyn FnMut(usize, usize) -> IntervalResult<UnitPiece>,
    ) -> IntervalResult<Vec<WorkUnit>> {
        let mut sealed = Vec::new();
        let mut start = 0;
        while start < rows {
            let room = GROUP_ROWS - self.pending_rows;
            let take = room.min(rows - start);
            self.pending.push(slice(start, start + take)?);
            self.pending_rows += take;
            start += take;
            if self.pending_rows == GROUP_ROWS {
                sealed.push(self.seal());
            }
        }
        Ok(sealed)
    }

    fn seal(&mut self) -> WorkUnit {
        let unit = WorkUnit {
            id: self.next_id,
            mid_rad: self.spec.mid_rad,
            sparse: self.spec.sparse,
            cols: self.spec.cols,
            pieces: std::mem::take(&mut self.pending),
        };
        self.next_id += 1;
        self.pending_rows = 0;
        unit
    }

    fn flush(&mut self) -> Option<WorkUnit> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.seal())
        }
    }
}

/// The coordinator of one distributed Gram computation.
///
/// Push the input's row blocks in global row order
/// ([`GramCoordinator::push_dense`] / [`GramCoordinator::push_csr`] — the
/// same shard walk the single-process fold makes), then call
/// [`GramCoordinator::finish`] for the merged master accumulator. Memory
/// stays bounded: at most `workers × 2` units are materialized at once,
/// and a returned partial is one accumulator state (`O(cols²)`),
/// independent of the unit's row count.
pub struct GramCoordinator {
    spec: GramSpec,
    cutter: UnitCutter,
    workers: Vec<WorkerHandle>,
    events_rx: mpsc::Receiver<Event>,
    events_tx: mpsc::Sender<Event>,
    listener: Option<TcpListener>,
    addr: SocketAddr,
    queue: VecDeque<WorkUnit>,
    retained: HashMap<usize, WorkUnit>,
    attempts: HashMap<usize, u32>,
    buffer: BTreeMap<usize, GramPartial>,
    master: GramPartial,
    next_to_merge: usize,
    units_cut: usize,
}

impl GramCoordinator {
    /// Binds the loopback listener and launches `workers` workers
    /// according to `mode` (for [`WorkerMode::External`] nothing is
    /// launched — connect to [`GramCoordinator::addr`] and call
    /// [`GramCoordinator::accept_workers`]).
    pub fn new(spec: GramSpec, workers: usize, mode: WorkerMode) -> Result<Self, DistribError> {
        if workers == 0 && mode != WorkerMode::External {
            return Err(DistribError::Spawn("worker count must be >= 1".into()));
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let (events_tx, events_rx) = mpsc::channel();
        let mut coord = GramCoordinator {
            master: GramPartial::empty(spec.cols, spec.mid_rad, spec.sparse),
            cutter: UnitCutter::new(spec),
            spec,
            workers: Vec::new(),
            events_rx,
            events_tx,
            listener: Some(listener),
            addr,
            queue: VecDeque::new(),
            retained: HashMap::new(),
            attempts: HashMap::new(),
            buffer: BTreeMap::new(),
            next_to_merge: 0,
            units_cut: 0,
        };
        match mode {
            WorkerMode::External => {}
            WorkerMode::Threads => {
                let mut runners = Vec::new();
                for _ in 0..workers {
                    let addr = coord.addr;
                    runners.push(Runner::Thread(std::thread::spawn(move || {
                        let _ = run_thread_worker(addr);
                    })));
                }
                coord.accept_launched(runners)?;
            }
            WorkerMode::Processes => {
                let bin = worker_binary()?;
                let mut runners = Vec::new();
                for _ in 0..workers {
                    match Command::new(&bin)
                        .arg(coord.addr.to_string())
                        .stdin(Stdio::null())
                        .spawn()
                    {
                        Ok(child) => runners.push(Runner::Process(child)),
                        Err(e) => {
                            kill_runners(&mut runners);
                            return Err(DistribError::Spawn(format!(
                                "failed to spawn {}: {e}",
                                bin.display()
                            )));
                        }
                    }
                }
                coord.accept_launched(runners)?;
            }
        }
        Ok(coord)
    }

    /// The loopback address workers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts `n` externally launched worker connections
    /// ([`WorkerMode::External`] only).
    pub fn accept_workers(&mut self, n: usize) -> Result<(), DistribError> {
        for _ in 0..n {
            let stream = self.accept_one()?;
            self.register_worker(stream, None);
        }
        Ok(())
    }

    fn accept_launched(&mut self, runners: Vec<Runner>) -> Result<(), DistribError> {
        let mut runners: Vec<Option<Runner>> = runners.into_iter().map(Some).collect();
        for i in 0..runners.len() {
            match self.accept_one() {
                Ok(stream) => self.register_worker(stream, runners[i].take()),
                Err(e) => {
                    let mut rest: Vec<Runner> =
                        runners.iter_mut().filter_map(Option::take).collect();
                    kill_runners(&mut rest);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn accept_one(&mut self) -> Result<TcpStream, DistribError> {
        let listener = self
            .listener
            .as_ref()
            .expect("listener lives until the coordinator is finished");
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + ACCEPT_TIMEOUT;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    listener.set_nonblocking(false)?;
                    return Ok(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(DistribError::Spawn(
                            "timed out waiting for a worker to connect".into(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn register_worker(&mut self, stream: TcpStream, runner: Option<Runner>) {
        let idx = self.workers.len();
        let tx = self.events_tx.clone();
        let read_half = stream.try_clone().ok();
        let reader = read_half
            .map(|read_half| std::thread::spawn(move || read_partials(idx, read_half, tx)));
        self.workers.push(WorkerHandle {
            alive: reader.is_some(),
            writer: Some(stream),
            in_flight: Vec::new(),
            reader,
            runner,
        });
    }

    /// Feeds one dense row block, in global row order. Completed units
    /// are dispatched before this returns; it blocks only while every
    /// worker's in-flight window is full.
    pub fn push_dense(&mut self, shard: &IntervalMatrix) -> Result<(), DistribError> {
        let units = self.cutter.push_dense(shard)?;
        self.submit(units)
    }

    /// Feeds one sparse CSR row block, in global row order.
    pub fn push_csr(&mut self, shard: &CsrIntervalShard) -> Result<(), DistribError> {
        let units = self.cutter.push_csr(shard)?;
        self.submit(units)
    }

    /// Total rows accepted so far (sealed or still pending in the
    /// cutter) — merged rows, buffered rows, outstanding units, and the
    /// uncut tail.
    pub fn rows_pushed(&self) -> usize {
        let merged = self.master.rows_seen();
        let buffered: usize = self.buffer.values().map(GramPartial::rows_seen).sum();
        let outstanding: usize = self.retained.values().map(WorkUnit::rows).sum::<usize>()
            + self.queue.iter().map(WorkUnit::rows).sum::<usize>();
        merged + buffered + outstanding + self.cutter.pending_rows
    }

    /// Seals the final (possibly partial) unit, waits for every partial,
    /// shuts the workers down, and returns the master accumulator —
    /// bitwise identical to the single-process fold over the same rows.
    pub fn finish(mut self) -> Result<GramPartial, DistribError> {
        if let Some(unit) = self.cutter.flush() {
            self.units_cut += 1;
            self.queue.push_back(unit);
        }
        self.drive(true)?;
        for handle in &mut self.workers {
            if let Some(w) = handle.writer.as_mut() {
                let _ = write_frame(w, FRAME_SHUTDOWN, &[]).and_then(|()| w.flush());
            }
        }
        for handle in &mut self.workers {
            if let Some(w) = handle.writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
            if let Some(j) = handle.reader.take() {
                let _ = j.join();
            }
            match handle.runner.take() {
                Some(Runner::Thread(j)) => {
                    let _ = j.join();
                }
                Some(Runner::Process(mut child)) => {
                    let _ = child.wait();
                }
                None => {}
            }
        }
        let mut master = GramPartial::empty(self.spec.cols, self.spec.mid_rad, self.spec.sparse);
        std::mem::swap(&mut master, &mut self.master);
        Ok(master)
    }

    fn submit(&mut self, units: Vec<WorkUnit>) -> Result<(), DistribError> {
        for unit in units {
            self.units_cut += 1;
            self.queue.push_back(unit);
        }
        self.drive(false)
    }

    /// The scheduling loop. With `until_done = false` it returns once the
    /// dispatch queue is empty (units may still be in flight); with
    /// `until_done = true` it returns once every cut unit has been merged.
    fn drive(&mut self, until_done: bool) -> Result<(), DistribError> {
        loop {
            while let Ok(ev) = self.events_rx.try_recv() {
                self.handle_event(ev)?;
            }
            self.dispatch_ready()?;
            let done = if until_done {
                self.next_to_merge == self.units_cut
            } else {
                self.queue.is_empty()
            };
            if done {
                return Ok(());
            }
            if self.workers.iter().any(|h| h.alive) {
                match self.events_rx.recv_timeout(STALL_TIMEOUT) {
                    Ok(ev) => self.handle_event(ev)?,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // The pool is wedged (a worker accepted a unit and
                        // never answered). Declare everyone dead; the loop
                        // falls through to local completion.
                        for i in 0..self.workers.len() {
                            self.kill_worker(i)?;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("the coordinator holds a sender")
                    }
                }
            } else {
                // No workers left: complete everything still queued
                // through the identical local fold.
                while let Some(unit) = self.queue.pop_front() {
                    self.retained.remove(&unit.id);
                    self.complete_locally(unit)?;
                }
            }
        }
    }

    fn dispatch_ready(&mut self) -> Result<(), DistribError> {
        while !self.queue.is_empty() {
            let Some(w) = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, h)| h.alive && h.in_flight.len() < MAX_IN_FLIGHT)
                .min_by_key(|(_, h)| h.in_flight.len())
                .map(|(i, _)| i)
            else {
                return Ok(());
            };
            let unit = self.queue.pop_front().expect("queue checked non-empty");
            let id = unit.id;
            let payload = encode_job(&unit)?;
            self.retained.insert(id, unit);
            self.workers[w].in_flight.push(id);
            let sent = {
                let writer = self.workers[w]
                    .writer
                    .as_mut()
                    .expect("alive workers keep their writer");
                write_frame(writer, FRAME_JOB, &payload).and_then(|()| writer.flush())
            };
            if sent.is_err() {
                // The worker died under us; kill_worker requeues the unit
                // we just recorded as in flight (and everything else it
                // held).
                self.kill_worker(w)?;
            }
        }
        Ok(())
    }

    fn handle_event(&mut self, ev: Event) -> Result<(), DistribError> {
        match ev {
            Event::Partial { unit, state } => {
                if !self.retained.contains_key(&unit) {
                    // Already merged via another worker or the local
                    // fallback — exactly-once: drop the duplicate.
                    self.clear_in_flight(unit);
                    return Ok(());
                }
                let parsed = GramPartial::read_state(self.spec.sparse, &mut &state[..])
                    .ok()
                    .filter(|p| p.cols() == self.spec.cols && p.is_mid_rad() == self.spec.mid_rad);
                match parsed {
                    Some(partial) => {
                        self.clear_in_flight(unit);
                        self.retained.remove(&unit);
                        self.attempts.remove(&unit);
                        self.buffer.insert(unit, partial);
                        self.drain_merge()?;
                    }
                    None => {
                        // The frame checksum passed but the state is not a
                        // valid accumulator for this spec: treat the
                        // sender as faulty. Its units (including this one)
                        // are requeued.
                        if let Some(w) = self.worker_holding(unit) {
                            self.kill_worker(w)?;
                        }
                    }
                }
            }
            Event::Dead { worker } => self.kill_worker(worker)?,
        }
        Ok(())
    }

    fn worker_holding(&self, unit: usize) -> Option<usize> {
        self.workers
            .iter()
            .position(|h| h.in_flight.contains(&unit))
    }

    fn clear_in_flight(&mut self, unit: usize) {
        for h in &mut self.workers {
            h.in_flight.retain(|&u| u != unit);
        }
    }

    fn kill_worker(&mut self, w: usize) -> Result<(), DistribError> {
        if !self.workers[w].alive {
            return Ok(());
        }
        self.workers[w].alive = false;
        if let Some(writer) = self.workers[w].writer.take() {
            let _ = writer.shutdown(Shutdown::Both);
        }
        let held = std::mem::take(&mut self.workers[w].in_flight);
        for unit in held {
            let Some(retained) = self.retained.remove(&unit) else {
                continue; // already merged
            };
            let tries = self.attempts.entry(unit).or_insert(0);
            *tries += 1;
            if *tries >= MAX_ATTEMPTS {
                self.complete_locally(retained)?;
            } else {
                self.queue.push_front(retained);
            }
        }
        Ok(())
    }

    fn complete_locally(&mut self, unit: WorkUnit) -> Result<(), DistribError> {
        let id = unit.id;
        let partial = GramPartial::compute(&unit)?;
        self.attempts.remove(&id);
        self.buffer.insert(id, partial);
        self.drain_merge()
    }

    fn drain_merge(&mut self) -> Result<(), DistribError> {
        while let Some(partial) = self.buffer.remove(&self.next_to_merge) {
            self.master.absorb(partial)?;
            self.next_to_merge += 1;
        }
        Ok(())
    }
}

impl Drop for GramCoordinator {
    fn drop(&mut self) {
        // An abandoned coordinator must not leak child processes or leave
        // worker threads blocked on reads: closing the sockets unwinds
        // everyone.
        for handle in &mut self.workers {
            if let Some(w) = handle.writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
            if let Some(Runner::Process(mut child)) = handle.runner.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// One in-process worker: connect and serve until shutdown.
fn run_thread_worker(addr: SocketAddr) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    serve_connection(reader, stream)
}

/// The coordinator-side reader loop for one worker connection: partials
/// are forwarded to the scheduler, and *any* end of the stream — error,
/// truncation, or a clean close — reports the worker dead. A worker that
/// hangs up mid-session holds units that must be reassigned promptly; a
/// close after shutdown produces a `Dead` event nobody reads, which is
/// harmless.
fn read_partials(worker: usize, stream: TcpStream, tx: mpsc::Sender<Event>) {
    let mut r = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut r) {
            Ok(None) => {
                let _ = tx.send(Event::Dead { worker });
                return;
            }
            Ok(Some((FRAME_PARTIAL, payload))) => match decode_partial(&payload) {
                Ok((unit, state)) => {
                    let state = state.to_vec();
                    if tx.send(Event::Partial { unit, state }).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    let _ = tx.send(Event::Dead { worker });
                    return;
                }
            },
            Ok(Some(_)) | Err(_) => {
                let _ = tx.send(Event::Dead { worker });
                return;
            }
        }
    }
}

fn kill_runners(runners: &mut Vec<Runner>) {
    for runner in runners.drain(..) {
        if let Runner::Process(mut child) = runner {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Finds the `ivmf-worker` binary for [`WorkerMode::Processes`]:
/// [`WORKER_BIN_ENV`] wins, else the current executable's directory and
/// its parent are searched.
fn worker_binary() -> Result<PathBuf, DistribError> {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(DistribError::Spawn(format!(
            "{WORKER_BIN_ENV} points at {}, which does not exist",
            p.display()
        )));
    }
    let exe = std::env::current_exe().map_err(DistribError::Io)?;
    let name = format!("ivmf-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    for _ in 0..2 {
        if let Some(d) = dir {
            let candidate = d.join(&name);
            if candidate.is_file() {
                return Ok(candidate);
            }
            dir = d.parent();
        }
    }
    Err(DistribError::Spawn(format!(
        "ivmf-worker binary not found next to {} (set {WORKER_BIN_ENV} to override)",
        exe.display()
    )))
}
