//! The worker side of the protocol: a loop that folds `JOB` frames into
//! per-unit partial accumulators and streams each back as a `PARTIAL`.

use std::io::{self, BufReader, BufWriter, Read, Write};

use ivmf_linalg::state_text::bad_state;

use crate::partial::GramPartial;
use crate::protocol::{
    decode_job, encode_partial_header, read_frame, write_frame, FRAME_JOB, FRAME_PARTIAL,
    FRAME_SHUTDOWN,
};

/// Serves one coordinator connection until `SHUTDOWN` or end-of-stream.
///
/// Generic over the transport so tests can interpose
/// `ivmf_data::fault::{FaultyReader, FaultyWriter}` between the worker
/// and its socket; production callers pass the two halves of a
/// `TcpStream`. Any error — a malformed frame, a checksum mismatch, an
/// accumulator failure — propagates out and drops the connection, which
/// the coordinator observes as this worker's death and answers by
/// reassigning the units it held. A worker never replies with a guess.
pub fn serve_connection<R: Read, W: Write>(reader: R, writer: W) -> io::Result<()> {
    let mut r = BufReader::new(reader);
    let mut w = BufWriter::new(writer);
    loop {
        let (kind, payload) = match read_frame(&mut r)? {
            None => return Ok(()),
            Some(frame) => frame,
        };
        match kind {
            FRAME_SHUTDOWN => return Ok(()),
            FRAME_JOB => {
                let unit = decode_job(&payload)?;
                let partial = GramPartial::compute(&unit).map_err(|e| bad_state(e.to_string()))?;
                let mut reply = encode_partial_header(unit.id);
                // A sealed partial's state is dominated by the m×m
                // accumulator matrices; reserving up front avoids
                // doubling-growth memcpys across a multi-megabyte reply.
                reply.reserve(32 * partial.cols().saturating_mul(partial.cols()) + 256);
                partial.write_state(&mut reply)?;
                write_frame(&mut w, FRAME_PARTIAL, &reply)?;
                w.flush()?;
            }
            other => {
                return Err(bad_state(format!("unexpected frame kind {other}")));
            }
        }
    }
}
