//! Determinism and fault-injection suite for the distributed Gram
//! coordinator: every test asserts the merged master accumulator is
//! **bitwise identical** to the single-process fold over the same rows —
//! including under worker death, truncated frames, and flipped bits.

use std::net::TcpStream;
use std::thread;

use ivmf_data::fault::{FaultSchedule, FaultyReader, FaultyWriter};
use ivmf_distrib::protocol::{read_frame, FRAME_JOB};
use ivmf_distrib::{serve_connection, GramCoordinator, GramPartial, GramSpec, WorkerMode};
use ivmf_interval::{CsrIntervalShard, IntervalMatrix};
use ivmf_linalg::streaming::GROUP_ROWS;
use ivmf_linalg::Matrix;

fn lcg(seed: &mut u64) -> f64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn dense_rows(rows: usize, cols: usize, seed: &mut u64) -> IntervalMatrix {
    let lo: Vec<f64> = (0..rows * cols).map(|_| lcg(seed)).collect();
    let hi: Vec<f64> = lo.iter().map(|v| v + 0.5 * lcg(seed).abs()).collect();
    IntervalMatrix::from_bounds(
        Matrix::from_vec(rows, cols, lo).unwrap(),
        Matrix::from_vec(rows, cols, hi).unwrap(),
    )
    .unwrap()
}

fn csr_rows(rows: usize, cols: usize, seed: &mut u64) -> CsrIntervalShard {
    let mut entries = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            // ~40% density, deterministic pattern.
            if lcg(seed) > 0.2 {
                let lo = lcg(seed);
                entries.push((i, j, lo, lo + 0.25 * lcg(seed).abs()));
            }
        }
    }
    CsrIntervalShard::from_triplets(rows, cols, &entries).unwrap()
}

/// Cuts `rows` into an adversarial shard layout: sizes that straddle
/// chunk and group boundaries in awkward ways.
fn shard_sizes(rows: usize) -> Vec<usize> {
    let pattern = [997, GROUP_ROWS - 1, 129, GROUP_ROWS + 127, 1, 4096];
    let mut sizes = Vec::new();
    let mut left = rows;
    let mut i = 0;
    while left > 0 {
        let take = pattern[i % pattern.len()].min(left);
        sizes.push(take);
        left -= take;
        i += 1;
    }
    sizes
}

fn state_bytes(p: &GramPartial) -> Vec<u8> {
    let mut buf = Vec::new();
    p.write_state(&mut buf).unwrap();
    buf
}

/// The single-process reference fold over the given dense shards.
fn reference_dense(spec: GramSpec, shards: &[IntervalMatrix]) -> GramPartial {
    let mut acc = GramPartial::empty(spec.cols, spec.mid_rad, spec.sparse);
    for s in shards {
        match &mut acc {
            GramPartial::Dense(a) => a.push_shard(s).unwrap(),
            GramPartial::Sparse(a) => a.push_shard(&CsrIntervalShard::from_dense(s)).unwrap(),
        }
    }
    acc
}

fn reference_csr(spec: GramSpec, shards: &[CsrIntervalShard]) -> GramPartial {
    let mut acc = GramPartial::empty(spec.cols, spec.mid_rad, spec.sparse);
    for s in shards {
        match &mut acc {
            GramPartial::Dense(a) => a.push_shard(&s.to_dense()).unwrap(),
            GramPartial::Sparse(a) => a.push_shard(s).unwrap(),
        }
    }
    acc
}

fn assert_bitwise_equal(master: &GramPartial, reference: &GramPartial) {
    assert_eq!(
        state_bytes(master),
        state_bytes(reference),
        "merged accumulator state diverged from the single-process fold"
    );
    let (a, b) = (master.finish().unwrap(), reference.finish().unwrap());
    assert_eq!(
        a.lo()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        b.lo()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        a.hi()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        b.hi()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
    );
}

fn run_dense(spec: GramSpec, shards: &[IntervalMatrix], workers: usize) -> GramPartial {
    let mut coord = GramCoordinator::new(spec, workers, WorkerMode::Threads).unwrap();
    for s in shards {
        coord.push_dense(s).unwrap();
    }
    coord.finish().unwrap()
}

fn run_csr(spec: GramSpec, shards: &[CsrIntervalShard], workers: usize) -> GramPartial {
    let mut coord = GramCoordinator::new(spec, workers, WorkerMode::Threads).unwrap();
    for s in shards {
        coord.push_csr(s).unwrap();
    }
    coord.finish().unwrap()
}

#[test]
fn thread_workers_match_the_single_process_fold_bitwise_dense() {
    let cols = 7;
    let rows = 2 * GROUP_ROWS + 3 * 128 + 41;
    for mid_rad in [true, false] {
        let spec = GramSpec {
            cols,
            mid_rad,
            sparse: false,
        };
        let mut seed = 0x5eed ^ mid_rad as u64;
        let shards: Vec<IntervalMatrix> = shard_sizes(rows)
            .into_iter()
            .map(|n| dense_rows(n, cols, &mut seed))
            .collect();
        let reference = reference_dense(spec, &shards);
        assert_eq!(reference.rows_seen(), rows);
        for workers in [1, 3] {
            let master = run_dense(spec, &shards, workers);
            assert_eq!(master.rows_seen(), rows);
            assert_bitwise_equal(&master, &reference);
        }
    }
}

#[test]
fn thread_workers_match_the_single_process_fold_bitwise_sparse() {
    let cols = 6;
    let rows = GROUP_ROWS + 5 * 128 + 391;
    for mid_rad in [true, false] {
        let spec = GramSpec {
            cols,
            mid_rad,
            sparse: true,
        };
        let mut seed = 0xabcd ^ mid_rad as u64;
        let shards: Vec<CsrIntervalShard> = shard_sizes(rows)
            .into_iter()
            .map(|n| csr_rows(n, cols, &mut seed))
            .collect();
        let reference = reference_csr(spec, &shards);
        for workers in [1, 4] {
            let master = run_csr(spec, &shards, workers);
            assert_bitwise_equal(&master, &reference);
        }
    }
}

#[test]
fn cross_representation_pieces_fold_identically() {
    // A sparse-kernel accumulator fed dense shards (and vice versa)
    // through the coordinator must still match the local cross-fold.
    let cols = 5;
    let rows = GROUP_ROWS + 200;
    let mut seed = 77;
    let shards: Vec<IntervalMatrix> = shard_sizes(rows)
        .into_iter()
        .map(|n| dense_rows(n, cols, &mut seed))
        .collect();
    let spec = GramSpec {
        cols,
        mid_rad: true,
        sparse: true, // sparse kernel over dense pushes
    };
    let reference = reference_dense(spec, &shards);
    let master = run_dense(spec, &shards, 2);
    assert_bitwise_equal(&master, &reference);
}

#[test]
fn spawned_process_workers_match_the_single_process_fold() {
    // Cargo exposes the crate's own binaries to its integration tests.
    std::env::set_var(
        ivmf_distrib::WORKER_BIN_ENV,
        env!("CARGO_BIN_EXE_ivmf-worker"),
    );
    let cols = 5;
    let rows = GROUP_ROWS + 777;
    let spec = GramSpec {
        cols,
        mid_rad: true,
        sparse: true,
    };
    let mut seed = 31;
    let shards: Vec<CsrIntervalShard> = shard_sizes(rows)
        .into_iter()
        .map(|n| csr_rows(n, cols, &mut seed))
        .collect();
    let reference = reference_csr(spec, &shards);
    let mut coord = GramCoordinator::new(spec, 2, WorkerMode::Processes).unwrap();
    for s in &shards {
        coord.push_csr(s).unwrap();
    }
    let master = coord.finish().unwrap();
    assert_bitwise_equal(&master, &reference);
}

/// Runs a dense workload through one healthy worker plus one sabotaged
/// worker (built by `faulty`), asserting the merge still comes out
/// bitwise identical to the single-process fold.
fn run_with_faulty_worker(
    faulty: impl FnOnce(TcpStream) + Send + 'static,
) -> (GramPartial, GramPartial) {
    let cols = 4;
    let rows = 3 * GROUP_ROWS + 65;
    let spec = GramSpec {
        cols,
        mid_rad: true,
        sparse: false,
    };
    let mut seed = 1234;
    let shards: Vec<IntervalMatrix> = shard_sizes(rows)
        .into_iter()
        .map(|n| dense_rows(n, cols, &mut seed))
        .collect();
    let reference = reference_dense(spec, &shards);

    let mut coord = GramCoordinator::new(spec, 0, WorkerMode::External).unwrap();
    let addr = coord.addr();
    let sab = thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        faulty(stream);
    });
    let healthy = thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = stream.try_clone().unwrap();
        let _ = serve_connection(reader, stream);
    });
    coord.accept_workers(2).unwrap();
    for s in &shards {
        coord.push_dense(s).unwrap();
    }
    let master = coord.finish().unwrap();
    let _ = sab.join();
    let _ = healthy.join();
    (master, reference)
}

#[test]
fn a_worker_killed_mid_stream_is_reassigned_not_lost() {
    // The saboteur accepts a job and dies without replying.
    let (master, reference) = run_with_faulty_worker(|stream| {
        let mut r = std::io::BufReader::new(stream);
        let frame = read_frame(&mut r).unwrap();
        assert!(matches!(frame, Some((FRAME_JOB, _))));
        // Dropping the stream here is the kill.
    });
    assert_bitwise_equal(&master, &reference);
}

#[test]
fn a_truncated_partial_frame_causes_reassignment_never_a_wrong_merge() {
    // The saboteur starts answering but its connection fails 64 bytes
    // into the reply — the coordinator sees a frame cut short.
    let (master, reference) = run_with_faulty_worker(|stream| {
        let reader = stream.try_clone().unwrap();
        let writer = FaultyWriter::new(stream, FaultSchedule::fail_at(64));
        let _ = serve_connection(reader, writer);
    });
    assert_bitwise_equal(&master, &reference);
}

#[test]
fn a_bit_flipped_partial_frame_is_rejected_by_the_checksum() {
    // One bit of the reply stream is flipped in transit; the FNV-1a
    // frame checksum must catch it and the unit must be recomputed —
    // a silently wrong merge is the one unacceptable outcome.
    let (master, reference) = run_with_faulty_worker(|stream| {
        let reader = stream.try_clone().unwrap();
        let writer = FaultyWriter::new(stream, FaultSchedule::flip_bit(200, 5));
        let _ = serve_connection(reader, writer);
    });
    assert_bitwise_equal(&master, &reference);
}

#[test]
fn a_worker_whose_reads_fail_mid_job_is_reassigned() {
    // The fault sits on the worker's receive path: it dies while still
    // reading the job payload.
    let (master, reference) = run_with_faulty_worker(|stream| {
        let reader = FaultyReader::new(stream.try_clone().unwrap(), FaultSchedule::fail_at(128));
        let _ = serve_connection(reader, stream);
    });
    assert_bitwise_equal(&master, &reference);
}

#[test]
fn losing_every_worker_falls_back_to_the_local_fold() {
    let cols = 3;
    let rows = 2 * GROUP_ROWS + 17;
    let spec = GramSpec {
        cols,
        mid_rad: false,
        sparse: false,
    };
    let mut seed = 99;
    let shards: Vec<IntervalMatrix> = shard_sizes(rows)
        .into_iter()
        .map(|n| dense_rows(n, cols, &mut seed))
        .collect();
    let reference = reference_dense(spec, &shards);

    let mut coord = GramCoordinator::new(spec, 0, WorkerMode::External).unwrap();
    let addr = coord.addr();
    let mut saboteurs = Vec::new();
    for _ in 0..2 {
        saboteurs.push(thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut r = std::io::BufReader::new(stream);
            let _ = read_frame(&mut r); // take one job, then die
        }));
    }
    coord.accept_workers(2).unwrap();
    for s in &shards {
        coord.push_dense(s).unwrap();
    }
    let master = coord.finish().unwrap();
    for s in saboteurs {
        let _ = s.join();
    }
    assert_bitwise_equal(&master, &reference);
}
