//! Pairwise cosine similarities between latent vectors.

use ivmf_linalg::{norms, Matrix};

/// The pairwise similarity structure of supplementary Algorithm 6
/// (`PAIRSIM`): `sim[(i, j)] = |cos(v_min_i, v_max_j)|` together with the
/// sign of the raw cosine, which the alignment later uses to decide whether
/// the matched minimum-side vector must be flipped.
#[derive(Debug, Clone)]
pub struct PairSimilarity {
    /// `r x r` matrix of absolute cosine similarities; row `i` indexes the
    /// minimum-side latent vector, column `j` the maximum-side one.
    pub sim: Matrix,
    /// `negative[(i, j)]` is `true` when the raw cosine was negative.
    pub negative: Vec<Vec<bool>>,
}

/// Computes the pairwise similarity between the columns of `v_min` and
/// `v_max` (both `m x r`, columns are latent vectors).
///
/// Degenerate (zero-norm) columns yield similarity `0` against everything.
pub fn similarity_matrix(v_min: &Matrix, v_max: &Matrix) -> PairSimilarity {
    let r = v_min.cols();
    let mut sim = Matrix::zeros(r, r);
    let mut negative = vec![vec![false; r]; r];
    let min_cols: Vec<Vec<f64>> = (0..r).map(|j| v_min.col(j)).collect();
    let max_cols: Vec<Vec<f64>> = (0..r).map(|j| v_max.col(j)).collect();
    for i in 0..r {
        for j in 0..r {
            let c = norms::cosine_similarity(&min_cols[i], &max_cols[j]);
            sim[(i, j)] = c.abs();
            negative[i][j] = c < 0.0;
        }
    }
    PairSimilarity { sim, negative }
}

/// Per-column cosine similarity between matched columns of two factor
/// matrices — i.e. the diagonal similarity the paper plots in Figures 3
/// and 5 (`cos(V_min[:, i], V_max[:, i])`).
pub fn matched_cosines(v_min: &Matrix, v_max: &Matrix) -> Vec<f64> {
    let r = v_min.cols().min(v_max.cols());
    (0..r)
        .map(|j| norms::cosine_similarity(&v_min.col(j), &v_max.col(j)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_of_identical_factors_is_identity_like() {
        let v = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let p = similarity_matrix(&v, &v);
        assert!((p.sim[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((p.sim[(1, 1)] - 1.0).abs() < 1e-12);
        assert!(p.sim[(0, 1)].abs() < 1e-12);
        assert!(!p.negative[0][0]);
    }

    #[test]
    fn similarity_records_negative_cosines() {
        let v_min = Matrix::from_rows(&[vec![1.0], vec![0.0]]);
        let v_max = Matrix::from_rows(&[vec![-1.0], vec![0.0]]);
        let p = similarity_matrix(&v_min, &v_max);
        assert!((p.sim[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(p.negative[0][0]);
    }

    #[test]
    fn zero_column_yields_zero_similarity() {
        let v_min = Matrix::from_rows(&[vec![0.0], vec![0.0]]);
        let v_max = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let p = similarity_matrix(&v_min, &v_max);
        assert_eq!(p.sim[(0, 0)], 0.0);
    }

    #[test]
    fn matched_cosines_diagonal() {
        let v_min = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let v_max = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        let d = matched_cosines(&v_min, &v_max);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }
}
