//! Stable min–max vector alignment (Problem 1 of the paper) via the
//! Gale–Shapley deferred-acceptance algorithm.
//!
//! Problem 1 formulates the alignment as a *stable marriage* between the set
//! of minimum-side latent vectors and the set of maximum-side latent
//! vectors, with the preference of a pair given by their absolute cosine
//! similarity. The classic `O(r²)` Gale–Shapley procedure yields a stable
//! matching; the paper notes that stability does not imply optimality of the
//! total similarity, which is why Problem 2 (Hungarian) is the default used
//! by the ISVD algorithms.

use ivmf_linalg::Matrix;

/// Computes a stable matching over the `r x r` similarity matrix.
///
/// Maximum-side vectors (columns) propose to minimum-side vectors (rows) in
/// decreasing order of similarity; rows accept the best proposal seen so
/// far. Returns `mapping[j] = i`, a permutation of `0..r`.
pub fn stable_matching(sim: &Matrix) -> Vec<usize> {
    let r = sim.cols();
    if r == 0 {
        return Vec::new();
    }

    // Preference lists of the proposers (columns): rows sorted by
    // decreasing similarity.
    let prefs: Vec<Vec<usize>> = (0..r)
        .map(|j| {
            let mut rows: Vec<usize> = (0..r).collect();
            rows.sort_by(|&a, &b| {
                sim[(b, j)]
                    .partial_cmp(&sim[(a, j)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            rows
        })
        .collect();

    // next_proposal[j]: index into prefs[j] of the next row to propose to.
    let mut next_proposal = vec![0usize; r];
    // engaged_to[i]: the column currently matched with row i, if any.
    let mut engaged_to: Vec<Option<usize>> = vec![None; r];
    let mut free: Vec<usize> = (0..r).rev().collect();

    while let Some(j) = free.pop() {
        let choice = next_proposal[j];
        debug_assert!(choice < r, "proposer exhausted its preference list");
        let i = prefs[j][choice];
        next_proposal[j] += 1;
        match engaged_to[i] {
            None => engaged_to[i] = Some(j),
            Some(current) => {
                // Row i keeps the more similar of the two suitors.
                if sim[(i, j)] > sim[(i, current)] {
                    engaged_to[i] = Some(j);
                    free.push(current);
                } else {
                    free.push(j);
                }
            }
        }
    }

    let mut mapping = vec![0usize; r];
    for (i, j) in engaged_to.into_iter().enumerate() {
        mapping[j.expect("every row is matched when both sides have size r")] = i;
    }
    mapping
}

/// Checks whether a mapping is stable with respect to the similarity
/// matrix: no row/column pair prefers each other over their assigned
/// partners.
pub fn is_stable(sim: &Matrix, mapping: &[usize]) -> bool {
    let r = mapping.len();
    // partner_of_row[i] = column matched to row i.
    let mut partner_of_row = vec![usize::MAX; r];
    for (j, &i) in mapping.iter().enumerate() {
        partner_of_row[i] = j;
    }
    for j in 0..r {
        for i in 0..r {
            if mapping[j] == i {
                continue;
            }
            let prefers_col = sim[(i, j)] > sim[(mapping[j], j)];
            let prefers_row = sim[(i, j)] > sim[(i, partner_of_row[i])];
            if prefers_col && prefers_row {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn is_permutation(mapping: &[usize]) -> bool {
        let mut seen = vec![false; mapping.len()];
        for &m in mapping {
            if m >= mapping.len() || seen[m] {
                return false;
            }
            seen[m] = true;
        }
        true
    }

    #[test]
    fn identity_similarity_gives_identity_matching() {
        assert_eq!(stable_matching(&Matrix::identity(3)), vec![0, 1, 2]);
    }

    #[test]
    fn planted_permutation_is_recovered() {
        let mut sim = Matrix::filled(4, 4, 0.05);
        for j in 0..4 {
            sim[((j + 1) % 4, j)] = 0.9;
        }
        assert_eq!(stable_matching(&sim), vec![1, 2, 3, 0]);
    }

    #[test]
    fn result_is_always_a_stable_permutation() {
        let mut rng = SmallRng::seed_from_u64(71);
        for _ in 0..25 {
            let n = rng.gen_range(1..=7);
            let sim = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..1.0));
            let m = stable_matching(&sim);
            assert!(is_permutation(&m));
            assert!(is_stable(&sim, &m), "matching is not stable");
        }
    }

    #[test]
    fn empty_input() {
        assert!(stable_matching(&Matrix::zeros(0, 0)).is_empty());
    }

    #[test]
    fn is_stable_detects_blocking_pair() {
        // sim where swapping would make both strictly happier.
        let sim = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.1, 0.9]]);
        assert!(!is_stable(&sim, &[1, 0]));
        assert!(is_stable(&sim, &[0, 1]));
    }
}
