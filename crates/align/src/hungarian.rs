//! Optimal assignment via the Hungarian algorithm (Problem 2 of the paper).
//!
//! The paper's *Optimal Min-Max Vector Alignment* asks for the pairing of
//! minimum- and maximum-side latent vectors that maximizes the total
//! absolute cosine similarity; this is the classic linear assignment
//! problem, solved here with the `O(r³)` potentials/augmenting-path variant
//! of the Hungarian (Kuhn–Munkres) algorithm.

use ivmf_linalg::Matrix;

/// Solves the assignment problem **maximizing** the total similarity.
///
/// `sim` is an `r x r` matrix where rows index minimum-side vectors and
/// columns index maximum-side vectors. Returns `mapping` with
/// `mapping[j] = i` meaning column `j` is assigned row `i`; the result is a
/// permutation of `0..r`.
pub fn hungarian_max(sim: &Matrix) -> Vec<usize> {
    let n = sim.cols();
    if n == 0 {
        return Vec::new();
    }
    // Convert to a minimization problem.
    let cost = sim.map(|x| -x);
    hungarian_min(&cost)
}

/// Solves the assignment problem **minimizing** the total cost.
///
/// Same output convention as [`hungarian_max`].
pub fn hungarian_min(cost: &Matrix) -> Vec<usize> {
    let n = cost.rows();
    debug_assert_eq!(cost.rows(), cost.cols(), "cost matrix must be square");
    if n == 0 {
        return Vec::new();
    }

    const INF: f64 = f64::INFINITY;
    // 1-indexed arrays per the classical formulation.
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; n + 1];
    // p[j] = row assigned to column j (0 = unassigned).
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    let a = |i: usize, j: usize| cost[(i - 1, j - 1)];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = a(i0, j) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut mapping = vec![0usize; n];
    for j in 1..=n {
        mapping[j - 1] = p[j] - 1;
    }
    mapping
}

/// Total similarity achieved by a mapping (`Σ_j sim[mapping[j], j]`).
pub fn mapping_score(sim: &Matrix, mapping: &[usize]) -> f64 {
    mapping.iter().enumerate().map(|(j, &i)| sim[(i, j)]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn is_permutation(mapping: &[usize]) -> bool {
        let mut seen = vec![false; mapping.len()];
        for &m in mapping {
            if m >= mapping.len() || seen[m] {
                return false;
            }
            seen[m] = true;
        }
        true
    }

    /// Brute force over all permutations (only usable for small n).
    fn brute_force_max(sim: &Matrix) -> f64 {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        permutations(sim.rows())
            .into_iter()
            .map(|perm| mapping_score(sim, &perm))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn identity_similarity() {
        let m = hungarian_max(&Matrix::identity(4));
        assert_eq!(m, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recovers_planted_permutation() {
        let mut sim = Matrix::filled(4, 4, 0.1);
        // Plant permutation j -> (j + 2) % 4 with high similarity.
        for j in 0..4 {
            sim[((j + 2) % 4, j)] = 0.99;
        }
        assert_eq!(hungarian_max(&sim), vec![2, 3, 0, 1]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(61);
        for _ in 0..30 {
            let n = rng.gen_range(1..=5);
            let sim = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..1.0));
            let mapping = hungarian_max(&sim);
            assert!(is_permutation(&mapping));
            let score = mapping_score(&sim, &mapping);
            let best = brute_force_max(&sim);
            assert!(
                (score - best).abs() < 1e-9,
                "hungarian score {score} != brute force {best}"
            );
        }
    }

    #[test]
    fn handles_degenerate_uniform_matrix() {
        let sim = Matrix::filled(3, 3, 0.5);
        let m = hungarian_max(&sim);
        assert!(is_permutation(&m));
        assert!((mapping_score(&sim, &m) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(hungarian_max(&Matrix::zeros(0, 0)).is_empty());
    }

    #[test]
    fn minimization_variant() {
        // Minimize cost: plant small costs on the anti-diagonal.
        let mut cost = Matrix::filled(3, 3, 10.0);
        for j in 0..3 {
            cost[(2 - j, j)] = 1.0;
        }
        assert_eq!(hungarian_min(&cost), vec![2, 1, 0]);
    }
}
