//! The ILSA driver: similarity → assignment → direction flags, plus helpers
//! to apply the alignment to factor matrices and singular-value vectors.

use ivmf_linalg::Matrix;

use crate::cosine::similarity_matrix;
use crate::greedy::greedy_mapping;
use crate::hungarian::hungarian_max;
use crate::stable::stable_matching;
use crate::{AlignError, Result};

/// Which assignment algorithm ILSA uses to pair minimum- and maximum-side
/// latent vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Matcher {
    /// The paper's greedy conflict-resolving heuristic (supplementary
    /// Algorithm 6). Fast, not guaranteed optimal.
    Greedy,
    /// The optimal linear-assignment solution of Problem 2 (Hungarian
    /// algorithm, `O(r³)`). This is the default, matching the formulation
    /// the paper adopts for its experiments.
    #[default]
    Hungarian,
    /// The stable-marriage formulation of Problem 1 (Gale–Shapley, `O(r²)`).
    StableMarriage,
}

/// The result of interval-valued latent semantic alignment.
///
/// `mapping[j] = i` states that the `j`-th maximum-side latent vector is
/// paired with the `i`-th minimum-side latent vector; `flip[j]` states that
/// the paired minimum-side vector must be negated so both point in the same
/// direction. `matched_similarity[j]` is the absolute cosine of the matched
/// pair (useful for diagnostics such as Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Permutation assigning a minimum-side index to every maximum-side
    /// column.
    pub mapping: Vec<usize>,
    /// Whether the matched minimum-side vector must be sign-flipped.
    pub flip: Vec<bool>,
    /// Absolute cosine similarity of each matched pair.
    pub matched_similarity: Vec<f64>,
}

impl Alignment {
    /// The identity alignment of size `r` (no permutation, no flips).
    pub fn identity(r: usize) -> Self {
        Alignment {
            mapping: (0..r).collect(),
            flip: vec![false; r],
            matched_similarity: vec![1.0; r],
        }
    }

    /// Number of aligned latent dimensions.
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// True when the alignment is empty.
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }

    /// Mean matched similarity — a single-number summary of how precise the
    /// aligned interval latent space is.
    pub fn mean_similarity(&self) -> f64 {
        if self.matched_similarity.is_empty() {
            return 0.0;
        }
        self.matched_similarity.iter().sum::<f64>() / self.matched_similarity.len() as f64
    }

    /// Applies the alignment to a minimum-side factor matrix (columns are
    /// latent vectors): output column `j` is input column `mapping[j]`,
    /// negated when `flip[j]` is set.
    ///
    /// This is the "adjust the rank-order and directions" step of
    /// Algorithms 8–11.
    pub fn apply_to_columns(&self, m: &Matrix) -> Result<Matrix> {
        if m.cols() != self.mapping.len() {
            return Err(AlignError::ShapeMismatch {
                min_shape: m.shape(),
                max_shape: (m.rows(), self.mapping.len()),
            });
        }
        let mut out = m.permute_cols(&self.mapping)?;
        for (j, &flip) in self.flip.iter().enumerate() {
            if flip {
                out.scale_col(j, -1.0);
            }
        }
        Ok(out)
    }

    /// Applies the alignment's permutation (but not the sign flips) to a
    /// vector of singular values / eigenvalues.
    pub fn apply_to_diag(&self, diag: &[f64]) -> Result<Vec<f64>> {
        if diag.len() != self.mapping.len() {
            return Err(AlignError::ShapeMismatch {
                min_shape: (diag.len(), 1),
                max_shape: (self.mapping.len(), 1),
            });
        }
        Ok(self.mapping.iter().map(|&i| diag[i]).collect())
    }
}

/// Runs interval-valued latent semantic alignment between the columns of
/// `v_min` and `v_max` (both `m x r`).
///
/// # Errors
///
/// * [`AlignError::ShapeMismatch`] when the factors differ in shape.
/// * [`AlignError::Empty`] when the factors have zero columns.
pub fn ilsa(v_min: &Matrix, v_max: &Matrix, matcher: Matcher) -> Result<Alignment> {
    if v_min.shape() != v_max.shape() {
        return Err(AlignError::ShapeMismatch {
            min_shape: v_min.shape(),
            max_shape: v_max.shape(),
        });
    }
    if v_min.cols() == 0 {
        return Err(AlignError::Empty);
    }

    let pair = similarity_matrix(v_min, v_max);
    let mapping = match matcher {
        Matcher::Greedy => greedy_mapping(&pair.sim),
        Matcher::Hungarian => hungarian_max(&pair.sim),
        Matcher::StableMarriage => stable_matching(&pair.sim),
    };
    let flip: Vec<bool> = mapping
        .iter()
        .enumerate()
        .map(|(j, &i)| pair.negative[i][j])
        .collect();
    let matched_similarity: Vec<f64> = mapping
        .iter()
        .enumerate()
        .map(|(j, &i)| pair.sim[(i, j)])
        .collect();

    Ok(Alignment {
        mapping,
        flip,
        matched_similarity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivmf_linalg::norms::cosine_similarity;
    use ivmf_linalg::random::uniform_matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_alignment_for_identical_factors() {
        let v = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        for matcher in [Matcher::Greedy, Matcher::Hungarian, Matcher::StableMarriage] {
            let a = ilsa(&v, &v, matcher).unwrap();
            assert_eq!(a.mapping, vec![0, 1]);
            assert_eq!(a.flip, vec![false, false]);
            assert!((a.mean_similarity() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn recovers_permutation_and_sign_flip() {
        let v_min = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        // Max factor: column 0 = second min column, column 1 = -first min column.
        let v_max = Matrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]]);
        let a = ilsa(&v_min, &v_max, Matcher::Hungarian).unwrap();
        assert_eq!(a.mapping, vec![1, 0]);
        assert_eq!(a.flip, vec![false, true]);

        // Applying the alignment to v_min makes its columns match v_max.
        let aligned = a.apply_to_columns(&v_min).unwrap();
        for j in 0..2 {
            let c = cosine_similarity(&aligned.col(j), &v_max.col(j));
            assert!(c > 0.999, "column {j} not aligned, cos = {c}");
        }
    }

    #[test]
    fn alignment_never_decreases_mean_matched_cosine_on_random_factors() {
        let mut rng = SmallRng::seed_from_u64(81);
        for _ in 0..20 {
            let r = rng.gen_range(2..8);
            let v_min = uniform_matrix(&mut rng, 12, r, -1.0, 1.0);
            // v_max: randomly permuted, randomly flipped, noisy copy.
            let mut perm: Vec<usize> = (0..r).collect();
            for i in (1..r).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            let mut v_max = Matrix::zeros(12, r);
            for j in 0..r {
                let sign = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
                for i in 0..12 {
                    v_max[(i, j)] = sign * v_min[(i, perm[j])] + rng.gen_range(-0.05..0.05);
                }
            }
            let before: f64 = (0..r)
                .map(|j| cosine_similarity(&v_min.col(j), &v_max.col(j)))
                .sum::<f64>()
                / r as f64;
            let a = ilsa(&v_min, &v_max, Matcher::Hungarian).unwrap();
            let aligned = a.apply_to_columns(&v_min).unwrap();
            let after: f64 = (0..r)
                .map(|j| cosine_similarity(&aligned.col(j), &v_max.col(j)))
                .sum::<f64>()
                / r as f64;
            assert!(
                after >= before - 1e-9,
                "alignment decreased mean cosine: {before} -> {after}"
            );
            assert!(after > 0.9, "aligned cosine too low: {after}");
        }
    }

    #[test]
    fn hungarian_is_at_least_as_good_as_greedy_and_stable() {
        let mut rng = SmallRng::seed_from_u64(82);
        for _ in 0..20 {
            let r = rng.gen_range(2..7);
            let v_min = uniform_matrix(&mut rng, 10, r, -1.0, 1.0);
            let v_max = uniform_matrix(&mut rng, 10, r, -1.0, 1.0);
            let hung = ilsa(&v_min, &v_max, Matcher::Hungarian).unwrap();
            let greedy = ilsa(&v_min, &v_max, Matcher::Greedy).unwrap();
            let stable = ilsa(&v_min, &v_max, Matcher::StableMarriage).unwrap();
            let sum = |a: &Alignment| a.matched_similarity.iter().sum::<f64>();
            assert!(sum(&hung) >= sum(&greedy) - 1e-9);
            assert!(sum(&hung) >= sum(&stable) - 1e-9);
        }
    }

    #[test]
    fn apply_to_diag_permutes_entries() {
        let a = Alignment {
            mapping: vec![2, 0, 1],
            flip: vec![false, true, false],
            matched_similarity: vec![1.0; 3],
        };
        assert_eq!(
            a.apply_to_diag(&[10.0, 20.0, 30.0]).unwrap(),
            vec![30.0, 10.0, 20.0]
        );
        assert!(a.apply_to_diag(&[1.0]).is_err());
    }

    #[test]
    fn shape_errors_are_reported() {
        let v = Matrix::zeros(3, 2);
        assert!(matches!(
            ilsa(&v, &Matrix::zeros(3, 3), Matcher::Hungarian),
            Err(AlignError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            ilsa(
                &Matrix::zeros(3, 0),
                &Matrix::zeros(3, 0),
                Matcher::Hungarian
            ),
            Err(AlignError::Empty)
        ));
        let a = Alignment::identity(3);
        assert!(a.apply_to_columns(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn identity_helper() {
        let a = Alignment::identity(4);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        let m = Matrix::identity(4);
        assert_eq!(a.apply_to_columns(&m).unwrap(), m);
    }
}
