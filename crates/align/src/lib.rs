//! # ivmf-align
//!
//! Interval-valued Latent Semantic Alignment (ILSA), Section 3.3 of the
//! paper.
//!
//! When an interval-valued matrix is decomposed by factorizing its minimum
//! and maximum bound matrices independently, the two factorizations are not
//! coordinated: the `j`-th latent vector of the minimum matrix need not
//! correspond to the `j`-th latent vector of the maximum matrix, and even a
//! matched pair may point in opposite directions. ILSA repairs this by
//!
//! 1. computing the pairwise `|cos|` similarity between minimum and maximum
//!    latent vectors ([`cosine::similarity_matrix`]),
//! 2. solving an assignment problem over that similarity matrix — either
//!    with the paper's greedy conflict-resolving heuristic (supplementary
//!    Algorithm 6, [`Matcher::Greedy`]), the optimal Hungarian assignment of
//!    Problem 2 ([`Matcher::Hungarian`]), or the Gale–Shapley stable
//!    matching of Problem 1 ([`Matcher::StableMarriage`]),
//! 3. flagging matched pairs whose cosine is negative so that the caller can
//!    flip the direction of the minimum-side vector.
//!
//! The [`ilsa`] entry point returns an [`Alignment`] describing the
//! permutation and the direction flags; [`Alignment::apply_to_columns`] and
//! [`Alignment::apply_to_diag`] apply it to factor matrices and singular
//! value vectors.
//!
//! ```
//! use ivmf_align::{ilsa, Matcher};
//! use ivmf_linalg::Matrix;
//!
//! // The max factor's columns are a permuted, sign-flipped copy of the min
//! // factor's columns: ILSA recovers the permutation and the flip.
//! let v_min = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
//! let v_max = Matrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]]);
//! let a = ilsa(&v_min, &v_max, Matcher::Hungarian).unwrap();
//! assert_eq!(a.mapping, vec![1, 0]);
//! assert_eq!(a.flip, vec![false, true]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cosine;
pub mod greedy;
pub mod hungarian;
pub mod stable;

mod ilsa_impl;

pub use ilsa_impl::{ilsa, Alignment, Matcher};

use ivmf_linalg::LinalgError;

/// Errors produced by the alignment routines.
#[derive(Debug, Clone, PartialEq)]
pub enum AlignError {
    /// The two factor matrices have different shapes.
    ShapeMismatch {
        /// Shape of the minimum-side factor.
        min_shape: (usize, usize),
        /// Shape of the maximum-side factor.
        max_shape: (usize, usize),
    },
    /// The factors have zero columns.
    Empty,
    /// A lower-level linear algebra failure.
    Linalg(LinalgError),
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::ShapeMismatch {
                min_shape,
                max_shape,
            } => write!(
                f,
                "factor shapes differ: min is {}x{}, max is {}x{}",
                min_shape.0, min_shape.1, max_shape.0, max_shape.1
            ),
            AlignError::Empty => write!(f, "factors must have at least one column"),
            AlignError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for AlignError {}

impl From<LinalgError> for AlignError {
    fn from(e: LinalgError) -> Self {
        AlignError::Linalg(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, AlignError>;
