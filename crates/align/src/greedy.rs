//! The paper's greedy conflict-resolving mapping (supplementary Algorithm 6,
//! procedure `MAPPING`).
//!
//! For every maximum-side vector `j`, the best minimum-side vector
//! `argmax_i sim[i, j]` is chosen. When two columns claim the same
//! minimum-side vector, the claimant with the higher similarity keeps it and
//! the others are reassigned to the best still-unassigned ("spare")
//! minimum-side vectors.

use ivmf_linalg::Matrix;

/// Computes the greedy mapping over the `r x r` similarity matrix.
///
/// Returns `mapping` where `mapping[j]` is the index of the minimum-side
/// vector assigned to maximum-side vector `j`. The result is always a
/// permutation of `0..r`.
pub fn greedy_mapping(sim: &Matrix) -> Vec<usize> {
    let r = sim.cols();
    let mut mapping = vec![0usize; r];

    // First pass: every column picks its best row.
    for j in 0..r {
        let mut best = 0usize;
        let mut best_sim = f64::NEG_INFINITY;
        for i in 0..r {
            if sim[(i, j)] > best_sim {
                best_sim = sim[(i, j)];
                best = i;
            }
        }
        mapping[j] = best;
    }

    // Detect conflicts: rows claimed by more than one column.
    let mut claimed: Vec<Vec<usize>> = vec![Vec::new(); r];
    for (j, &i) in mapping.iter().enumerate() {
        claimed[i].push(j);
    }
    let mut spare: Vec<usize> = (0..r).filter(|&i| claimed[i].is_empty()).collect();
    if spare.is_empty() {
        return mapping;
    }

    for i in 0..r {
        if claimed[i].len() <= 1 {
            continue;
        }
        // Keep the best claimant, reassign the rest to spares.
        let mut claimants = claimed[i].clone();
        claimants.sort_by(|&a, &b| {
            sim[(i, b)]
                .partial_cmp(&sim[(i, a)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &j in claimants.iter().skip(1) {
            // Pick the spare row with the highest similarity to column j.
            let (pos, &best_spare) = spare
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    sim[(a, j)]
                        .partial_cmp(&sim[(b, j)])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("a spare row exists for every excess claimant");
            mapping[j] = best_spare;
            spare.swap_remove(pos);
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(mapping: &[usize]) -> bool {
        let mut seen = vec![false; mapping.len()];
        for &m in mapping {
            if m >= mapping.len() || seen[m] {
                return false;
            }
            seen[m] = true;
        }
        true
    }

    #[test]
    fn identity_similarity_gives_identity_mapping() {
        let sim = Matrix::identity(4);
        assert_eq!(greedy_mapping(&sim), vec![0, 1, 2, 3]);
    }

    #[test]
    fn permuted_similarity_recovers_permutation() {
        // Column j is most similar to row (j + 1) mod 3.
        let mut sim = Matrix::zeros(3, 3);
        sim[(1, 0)] = 0.9;
        sim[(2, 1)] = 0.8;
        sim[(0, 2)] = 0.95;
        assert_eq!(greedy_mapping(&sim), vec![1, 2, 0]);
    }

    #[test]
    fn conflict_resolution_keeps_best_claimant() {
        // Both columns prefer row 0, but column 1 has the stronger claim.
        let sim = Matrix::from_rows(&[vec![0.6, 0.9], vec![0.5, 0.1]]);
        let m = greedy_mapping(&sim);
        assert_eq!(m, vec![1, 0]);
        assert!(is_permutation(&m));
    }

    #[test]
    fn always_produces_a_permutation() {
        // All-equal similarities: any permutation is fine, but it must be a
        // permutation.
        let sim = Matrix::filled(5, 5, 0.5);
        assert!(is_permutation(&greedy_mapping(&sim)));
        // Similarity with many conflicts.
        let mut sim2 = Matrix::zeros(4, 4);
        for j in 0..4 {
            sim2[(0, j)] = 1.0 - j as f64 * 0.01;
        }
        assert!(is_permutation(&greedy_mapping(&sim2)));
    }

    #[test]
    fn single_column() {
        let sim = Matrix::from_rows(&[vec![0.3]]);
        assert_eq!(greedy_mapping(&sim), vec![0]);
    }
}
