//! Singular value decomposition.
//!
//! The SVD is computed through the symmetric eigendecomposition of the
//! smaller Gram matrix:
//!
//! * if `cols <= rows`, we factorize `MᵀM = V Λ Vᵀ`, set `Σ = Λ^{1/2}` and
//!   recover `U = M V Σ⁻¹` column by column;
//! * otherwise we factorize `M Mᵀ` and recover `V` symmetrically.
//!
//! This mirrors exactly the eigen-decomposition route the paper itself uses
//! for ISVD2–ISVD4 (Section 4.3: "the columns of V are the eigenvectors of
//! MᵀM and the singular values are the square roots of its eigenvalues"),
//! keeps the implementation compact and reuses the heavily-tested
//! [`sym_eigen`] kernel. The trade-off is that
//! singular values below roughly `√ε · σ_max` are resolved less accurately
//! than a Golub–Kahan bidiagonalization would give; for the decomposition
//! *accuracy* experiments in the paper (relative errors well above 1e-6)
//! this is irrelevant.
//!
//! Columns corresponding to (numerically) zero singular values are filled
//! with zero vectors rather than an arbitrary orthonormal completion; all
//! consumers in this workspace either truncate to ranks below the numerical
//! rank or multiply by the corresponding zero singular value.

use crate::eigen_sym::sym_eigen;
use crate::eigen_topk::sym_eigen_topk;
use crate::{LinalgError, Matrix, Result};

/// Result of a singular value decomposition `M ≈ U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `rows x k` where `k = min(rows, cols)`.
    pub u: Matrix,
    /// Singular values in descending order, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `cols x k`.
    pub v: Matrix,
}

impl Svd {
    /// Number of retained singular triplets.
    pub fn k(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstructs `U Σ Vᵀ`.
    ///
    /// `U Σ` is formed by scaling the columns of `U` directly
    /// ([`Matrix::scale_cols`], `O(n·k)`) instead of materializing the
    /// diagonal matrix and paying an `O(n·k²)` product, and the trailing
    /// `· Vᵀ` runs transpose-free on [`Matrix::matmul_nt`].
    pub fn reconstruct(&self) -> Matrix {
        self.u
            .scale_cols(&self.singular_values)
            .and_then(|us| us.matmul_nt(&self.v))
            .expect("shapes are consistent by construction")
    }

    /// Truncates the decomposition to the leading `r` triplets.
    pub fn truncate(&self, r: usize) -> Svd {
        let r = r.min(self.k());
        Svd {
            u: self.u.take_cols(r),
            singular_values: self.singular_values[..r].to_vec(),
            v: self.v.take_cols(r),
        }
    }

    /// The numerical rank: the number of singular values larger than
    /// `tol * σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * smax)
            .count()
    }
}

/// Computes the full (thin) SVD of `m`.
///
/// # Errors
///
/// * [`LinalgError::Empty`] for a zero-sized matrix.
/// * Propagates eigensolver convergence failures.
pub fn svd(m: &Matrix) -> Result<Svd> {
    if m.is_empty() {
        return Err(LinalgError::Empty);
    }
    let (n, c) = m.shape();
    if c <= n {
        // Eigen-decompose the c x c Gram matrix MᵀM.
        let eig = sym_eigen(&m.gram())?;
        let singular_values: Vec<f64> =
            eig.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.eigenvectors;
        let u = recover_other_factor(m, &v, &singular_values);
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    } else {
        // Eigen-decompose the n x n Gram matrix MMᵀ.
        let eig = sym_eigen(&m.outer_gram())?;
        let singular_values: Vec<f64> =
            eig.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let u = eig.eigenvectors;
        let v = recover_other_factor(&m.transpose(), &u, &singular_values);
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    }
}

/// Computes the rank-`r` truncated SVD of `m`.
///
/// `r` is clamped to `min(rows, cols)`; `r == 0` is rejected.
///
/// Unlike [`svd`], the truncated form never needs the trailing spectrum,
/// so the smaller Gram matrix goes through the certified top-k eigensolver
/// ([`sym_eigen_topk`]): `IVMF_TOPK_EIGEN` picks the kernel
/// (`auto`/`full`/`forced`) and every accepted eigenpair — hence every
/// singular triplet — is certified to the oracle tolerance
/// ([`crate::eigen_topk::DEFAULT_TOPK_TOL`]) with automatic fallback to
/// the dense solver. Right-factor column signs are canonicalized by that
/// path, so truncated decompositions from different kernels agree up to
/// the certified tolerance rather than up to sign.
pub fn svd_truncated(m: &Matrix, r: usize) -> Result<Svd> {
    if r == 0 {
        return Err(LinalgError::InvalidArgument(
            "target rank must be at least 1".to_string(),
        ));
    }
    if m.is_empty() {
        return Err(LinalgError::Empty);
    }
    let (n, c) = m.shape();
    let k = r.min(n.min(c));
    if c <= n {
        // Top-k of the c x c Gram matrix MᵀM gives V and Σ.
        let eig = sym_eigen_topk(&m.gram(), k)?;
        let singular_values: Vec<f64> =
            eig.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.eigenvectors;
        let u = recover_other_factor(m, &v, &singular_values);
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    } else {
        // Top-k of the n x n Gram matrix MMᵀ gives U and Σ.
        let eig = sym_eigen_topk(&m.outer_gram(), k)?;
        let singular_values: Vec<f64> =
            eig.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let u = eig.eigenvectors;
        let v = recover_other_factor(&m.transpose(), &u, &singular_values);
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    }
}

/// Given `m` (n x c) and the right factor `v` (c x k) together with the
/// singular values, recovers the left factor `u = M V Σ⁻¹`, using zero
/// columns where the singular value is numerically zero.
fn recover_other_factor(m: &Matrix, v: &Matrix, singular_values: &[f64]) -> Matrix {
    let mv = m.matmul(v).expect("shapes agree by construction");
    let mut u = mv;
    let smax = singular_values.first().copied().unwrap_or(0.0);
    let tol = smax * 1e-13;
    for (j, &s) in singular_values.iter().enumerate() {
        if s > tol && s > 0.0 {
            u.scale_col(j, 1.0 / s);
        } else {
            for i in 0..u.rows() {
                u[(i, j)] = 0.0;
            }
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{low_rank_matrix, uniform_matrix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_reconstruction(m: &Matrix, tol: f64) {
        let f = svd(m).unwrap();
        let rec = f.reconstruct();
        let denom = m.frobenius_norm().max(1.0);
        let err = m.sub(&rec).unwrap().frobenius_norm() / denom;
        assert!(
            err < tol,
            "reconstruction error {err} for shape {:?}",
            m.shape()
        );
    }

    fn check_orthonormal_leading(q: &Matrix, count: usize, tol: f64) {
        for a in 0..count {
            for b in 0..count {
                let dot = q.col_dot(a, b);
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!(
                    (dot - expected).abs() < tol,
                    "column dot ({a},{b}) = {dot}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn svd_of_known_matrix() {
        // [[3,1],[1,3],[0,0]] has singular values 4 and 2.
        let m = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 3.0], vec![0.0, 0.0]]);
        let f = svd(&m).unwrap();
        assert!((f.singular_values[0] - 4.0).abs() < 1e-10);
        assert!((f.singular_values[1] - 2.0).abs() < 1e-10);
        check_reconstruction(&m, 1e-10);
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let m = Matrix::from_diag(&[5.0, 3.0, 1.0]);
        let f = svd(&m).unwrap();
        assert!((f.singular_values[0] - 5.0).abs() < 1e-10);
        assert!((f.singular_values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn svd_reconstructs_random_matrices_of_various_shapes() {
        let mut rng = SmallRng::seed_from_u64(21);
        for &(r, c) in &[
            (1usize, 1usize),
            (5, 3),
            (3, 5),
            (10, 10),
            (40, 25),
            (25, 40),
            (60, 7),
        ] {
            let m = uniform_matrix(&mut rng, r, c, -3.0, 3.0);
            check_reconstruction(&m, 1e-8);
        }
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(22);
        let m = uniform_matrix(&mut rng, 30, 12, -1.0, 1.0);
        let f = svd(&m).unwrap();
        check_orthonormal_leading(&f.u, f.rank(1e-10), 1e-8);
        check_orthonormal_leading(&f.v, f.rank(1e-10), 1e-8);
        // Wide matrix exercises the other code path.
        let m2 = uniform_matrix(&mut rng, 12, 30, -1.0, 1.0);
        let f2 = svd(&m2).unwrap();
        check_orthonormal_leading(&f2.u, f2.rank(1e-10), 1e-8);
        check_orthonormal_leading(&f2.v, f2.rank(1e-10), 1e-8);
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let mut rng = SmallRng::seed_from_u64(23);
        let m = uniform_matrix(&mut rng, 20, 15, -2.0, 2.0);
        let f = svd(&m).unwrap();
        for w in f.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(f.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn truncated_svd_gives_best_low_rank_error_shape() {
        let mut rng = SmallRng::seed_from_u64(24);
        let m = low_rank_matrix(&mut rng, 20, 14, 4);
        // Rank-4 truncation reconstructs a rank-4 matrix (almost) exactly.
        let f = svd_truncated(&m, 4).unwrap();
        assert_eq!(f.k(), 4);
        let rec = f.reconstruct();
        let err = m.sub(&rec).unwrap().frobenius_norm() / m.frobenius_norm();
        assert!(err < 1e-6, "low-rank reconstruction error {err}");
        // Lower ranks must not reconstruct better than higher ranks.
        let e2 = m
            .sub(&svd_truncated(&m, 2).unwrap().reconstruct())
            .unwrap()
            .frobenius_norm();
        let e3 = m
            .sub(&svd_truncated(&m, 3).unwrap().reconstruct())
            .unwrap()
            .frobenius_norm();
        assert!(e2 >= e3 - 1e-9);
    }

    #[test]
    fn rank_detection() {
        let mut rng = SmallRng::seed_from_u64(25);
        let m = low_rank_matrix(&mut rng, 15, 15, 5);
        let f = svd(&m).unwrap();
        // Gram-based singular values resolve "zero" only down to ~√ε·σ_max,
        // so the rank tolerance must sit above that (documented trade-off).
        assert_eq!(f.rank(1e-6), 5);
    }

    #[test]
    fn zero_rank_request_is_rejected() {
        let m = Matrix::identity(3);
        assert!(svd_truncated(&m, 0).is_err());
        assert!(svd(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rank_request_above_min_dimension_is_clamped() {
        let m = Matrix::identity(3);
        let f = svd_truncated(&m, 10).unwrap();
        assert_eq!(f.k(), 3);
    }

    #[test]
    fn svd_of_zero_matrix() {
        let m = Matrix::zeros(4, 3);
        let f = svd(&m).unwrap();
        assert!(f.singular_values.iter().all(|&s| s == 0.0));
        assert!(f.reconstruct().approx_eq(&m, 1e-15));
    }

    #[test]
    fn svd_matches_transpose_relationship() {
        let mut rng = SmallRng::seed_from_u64(26);
        let m = uniform_matrix(&mut rng, 9, 17, -1.0, 1.0);
        let f = svd(&m).unwrap();
        let ft = svd(&m.transpose()).unwrap();
        for (a, b) in f.singular_values.iter().zip(ft.singular_values.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
