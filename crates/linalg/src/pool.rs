//! A small global pool of reusable `Vec<f64>` / `Vec<usize>` buffers for
//! the streaming ingest path.
//!
//! The out-of-core Gram route allocates the same handful of buffer shapes
//! over and over: one decoded shard's bounds, one 128-row chunk copy per
//! fold, one `m×m` upper-triangle scratch per drain. At the bench's
//! 160k×1024 scale that is hundreds of multi-megabyte allocations per
//! pass, and on a single core the page-faulting of fresh zeroed pages
//! costs a measurable slice of the wall clock. This pool turns the
//! steady-state loop allocation-free: producers *take* a cleared buffer
//! (reusing retained capacity when a previous round returned one),
//! consumers *recycle* the backing `Vec` once the values have been folded.
//!
//! ## Lifetime rules
//!
//! * [`take_f64`]/[`take_usize`] hand out an **empty** vector with at
//!   least the requested capacity — the caller fills it completely before
//!   use, so stale contents of a recycled buffer can never leak into
//!   results. [`take_zeroed_f64`] resizes the cleared buffer with exact
//!   `0.0` fill for callers that need fresh-zero semantics (accumulator
//!   scratch); clearing before resizing is what makes the fill exact.
//! * [`recycle_f64`]/[`recycle_usize`] accept any vector; ownership
//!   transfers to the pool. Recycling is always optional — a dropped
//!   buffer is merely a missed reuse, never a leak or a correctness
//!   problem.
//! * The pool is a bounded cache, not an arena: it retains at most
//!   [`MAX_POOLED_BUFFERS`] buffers and [`MAX_RETAINED_ELEMS`] total
//!   elements of capacity per element type, dropping the excess. Peak
//!   memory therefore stays proportional to the working set, and
//!   [`clear`] releases everything (used by tests and memory-sensitive
//!   callers).
//!
//! Pooling never changes results: buffers only carry values between the
//! same writes and reads that fresh allocations would, and the
//! accumulator fold order is untouched. [`stats`] exposes hit/miss
//! counters so tests can assert the steady-state loop actually reuses
//! buffers instead of silently regressing to the allocator.

use std::sync::Mutex;

/// Maximum number of buffers retained per element type.
pub const MAX_POOLED_BUFFERS: usize = 32;

/// Maximum total retained capacity (in elements) per element type —
/// 2²⁵ f64 elements is 256 MiB, comfortably above the ingest path's
/// working set (a few shards plus an `m×m` scratch) and far below the
/// matrices it exists to stream.
pub const MAX_RETAINED_ELEMS: usize = 1 << 25;

/// One element type's shelf: retained buffers plus reuse counters.
struct Shelf<T> {
    bufs: Vec<Vec<T>>,
    retained_elems: usize,
    hits: u64,
    misses: u64,
}

impl<T> Shelf<T> {
    const fn new() -> Self {
        Shelf {
            bufs: Vec::new(),
            retained_elems: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Best-fit take: the smallest retained buffer with at least
    /// `min_cap` capacity, or a fresh allocation when none fits.
    fn take(&mut self, min_cap: usize) -> Vec<T> {
        let mut best: Option<usize> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            if b.capacity() >= min_cap
                && best.map_or(true, |j| b.capacity() < self.bufs[j].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let buf = self.bufs.swap_remove(i);
                self.retained_elems -= buf.capacity();
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(min_cap)
            }
        }
    }

    fn recycle(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() == 0
            || self.bufs.len() >= MAX_POOLED_BUFFERS
            || self.retained_elems + buf.capacity() > MAX_RETAINED_ELEMS
        {
            return; // dropped: the pool is a bounded cache
        }
        self.retained_elems += buf.capacity();
        self.bufs.push(buf);
    }

    fn clear(&mut self) {
        self.bufs.clear();
        self.retained_elems = 0;
    }
}

static F64_SHELF: Mutex<Shelf<f64>> = Mutex::new(Shelf::new());
static USIZE_SHELF: Mutex<Shelf<usize>> = Mutex::new(Shelf::new());

fn f64_shelf() -> std::sync::MutexGuard<'static, Shelf<f64>> {
    F64_SHELF.lock().unwrap_or_else(|e| e.into_inner())
}

fn usize_shelf() -> std::sync::MutexGuard<'static, Shelf<usize>> {
    USIZE_SHELF.lock().unwrap_or_else(|e| e.into_inner())
}

/// An **empty** `Vec<f64>` with at least `min_cap` capacity, reusing a
/// recycled buffer when one is large enough. The caller owns it; filling
/// is the caller's job.
pub fn take_f64(min_cap: usize) -> Vec<f64> {
    f64_shelf().take(min_cap)
}

/// A `Vec<f64>` of exactly `len` zeros (bit pattern `0.0`), reusing a
/// recycled buffer when possible — the pooled replacement for
/// `vec![0.0; len]` in accumulator scratch, where fresh-zero semantics
/// are load-bearing.
pub fn take_zeroed_f64(len: usize) -> Vec<f64> {
    let mut buf = take_f64(len);
    buf.resize(len, 0.0);
    buf
}

/// Returns a `Vec<f64>` to the pool (contents are discarded).
pub fn recycle_f64(buf: Vec<f64>) {
    f64_shelf().recycle(buf);
}

/// An **empty** `Vec<usize>` with at least `min_cap` capacity — the
/// integer twin of [`take_f64`] for CSR index buffers.
pub fn take_usize(min_cap: usize) -> Vec<usize> {
    usize_shelf().take(min_cap)
}

/// Returns a `Vec<usize>` to the pool (contents are discarded).
pub fn recycle_usize(buf: Vec<usize>) {
    usize_shelf().recycle(buf);
}

/// Snapshot of the pool's reuse counters and retained footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a retained buffer.
    pub f64_hits: u64,
    /// Takes that fell back to a fresh allocation.
    pub f64_misses: u64,
    /// Retained `f64` capacity, in elements.
    pub f64_retained_elems: usize,
    /// Takes served from a retained buffer.
    pub usize_hits: u64,
    /// Takes that fell back to a fresh allocation.
    pub usize_misses: u64,
    /// Retained `usize` capacity, in elements.
    pub usize_retained_elems: usize,
}

/// Current pool counters (cumulative for the process; see [`clear`]).
pub fn stats() -> PoolStats {
    let f = f64_shelf();
    let u = usize_shelf();
    PoolStats {
        f64_hits: f.hits,
        f64_misses: f.misses,
        f64_retained_elems: f.retained_elems,
        usize_hits: u.hits,
        usize_misses: u.misses,
        usize_retained_elems: u.retained_elems,
    }
}

/// Drops every retained buffer (counters keep accumulating).
pub fn clear() {
    f64_shelf().clear();
    usize_shelf().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_recycled_capacity_best_fit() {
        clear();
        let before = stats();
        let mut big = take_f64(1024);
        big.extend(std::iter::repeat(3.5).take(1024));
        let small = {
            let mut v = take_f64(16);
            v.push(1.0);
            v
        };
        let (big_cap, small_cap) = (big.capacity(), small.capacity());
        recycle_f64(big);
        recycle_f64(small);
        // A 10-element request prefers the small buffer (best fit)...
        let took = take_f64(10);
        assert!(took.is_empty(), "pooled buffers come back cleared");
        assert_eq!(took.capacity(), small_cap);
        // ...and a 1024-element request still finds the big one.
        let took_big = take_f64(1024);
        assert_eq!(took_big.capacity(), big_cap);
        let after = stats();
        assert_eq!(after.f64_hits, before.f64_hits + 2);
        recycle_f64(took);
        recycle_f64(took_big);
    }

    #[test]
    fn take_zeroed_is_exactly_zero_after_dirty_recycle() {
        let mut dirty = take_f64(64);
        dirty.extend(std::iter::repeat(f64::NAN).take(64));
        recycle_f64(dirty);
        let z = take_zeroed_f64(64);
        assert_eq!(z.len(), 64);
        assert!(
            z.iter().all(|v| v.to_bits() == 0.0f64.to_bits()),
            "pooled zeroed buffers must be bit-exact 0.0"
        );
        recycle_f64(z);
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        // Over-large buffers are dropped rather than retained.
        recycle_f64(Vec::with_capacity(MAX_RETAINED_ELEMS + 1));
        assert_eq!(stats().f64_retained_elems, 0);
        // Zero-capacity buffers are not worth retaining.
        recycle_usize(Vec::new());
        assert_eq!(stats().usize_retained_elems, 0);
        // The buffer count cap holds.
        for _ in 0..(MAX_POOLED_BUFFERS + 10) {
            recycle_usize(Vec::with_capacity(8));
        }
        let s = stats();
        assert!(s.usize_retained_elems <= MAX_POOLED_BUFFERS * 8);
        clear();
        assert_eq!(stats().f64_retained_elems, 0);
        assert_eq!(stats().usize_retained_elems, 0);
    }
}
