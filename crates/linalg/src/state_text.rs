//! Bit-exact, line-oriented text serialization helpers for accumulator
//! state.
//!
//! The streaming Gram accumulators ([`crate::GramAccumulator`] and
//! friends) are the only pipeline state that cannot be recomputed from a
//! cached result: their pending row buffers hold a partial chunk whose
//! future rounding depends on every buffered bit. Snapshotting them
//! therefore needs a serialization that round-trips `f64` values
//! **exactly**. These helpers provide that on top of plain text: values
//! are written with Rust's `{:?}` formatting (the shortest decimal that
//! parses back to the identical bits, including `inf`/`-inf`/`NaN`) and
//! read back with `str::parse`, one whitespace-separated line per
//! logical vector. Bulk `f64` payloads use raw little-endian binary
//! runs instead ([`write_f64_run`]/[`read_f64_run`]) — headers stay
//! greppable text, but the hundreds of thousands of values a snapshot
//! restore loads must decode much faster than recomputing them.
//!
//! Readers validate everything they consume — token counts, numeric
//! parses, declared lengths — and report problems as
//! [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors rather
//! than panicking, because the snapshot layer upstream treats every
//! error here as "drop this entry and recompute". Declared lengths also
//! bound the initial allocation, so a corrupted header cannot trigger a
//! huge up-front reservation.

use std::io::{self, BufRead, Write};

/// Cap on speculative `Vec` pre-allocation from untrusted declared
/// lengths: allocate at most this many elements up front and let the
/// vector grow organically past it (the token count check still enforces
/// the exact final length).
const PREALLOC_CAP: usize = 1 << 20;

/// An [`io::ErrorKind::InvalidData`] error for malformed state text.
pub fn bad_state(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one line (without its terminator). A missing line — end of the
/// stream where state was still expected — is an `UnexpectedEof` error,
/// so truncated snapshots surface as errors instead of empty vectors.
pub fn read_line(r: &mut dyn BufRead) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "unexpected end of stream while reading state",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Writes `vals` as one space-separated line of `{:?}`-formatted floats
/// (an empty slice writes an empty line).
pub fn write_f64_line(w: &mut dyn Write, vals: &[f64]) -> io::Result<()> {
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            w.write_all(b" ")?;
        }
        write!(w, "{v:?}")?;
    }
    w.write_all(b"\n")
}

/// Writes `vals` as one space-separated line of integers.
pub fn write_usize_line(w: &mut dyn Write, vals: &[usize]) -> io::Result<()> {
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            w.write_all(b" ")?;
        }
        write!(w, "{v}")?;
    }
    w.write_all(b"\n")
}

/// Parses a line written by [`write_f64_line`], requiring exactly
/// `expected` values.
pub fn parse_f64_line(line: &str, expected: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(expected.min(PREALLOC_CAP));
    for tok in line.split_ascii_whitespace() {
        if out.len() == expected {
            return Err(bad_state(format!(
                "expected {expected} float values, found more"
            )));
        }
        let v: f64 = tok
            .parse()
            .map_err(|_| bad_state(format!("malformed float value {tok:?}")))?;
        out.push(v);
    }
    if out.len() != expected {
        return Err(bad_state(format!(
            "expected {expected} float values, found {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Parses a line written by [`write_usize_line`], requiring exactly
/// `expected` values.
pub fn parse_usize_line(line: &str, expected: usize) -> io::Result<Vec<usize>> {
    let mut out = Vec::with_capacity(expected.min(PREALLOC_CAP));
    for tok in line.split_ascii_whitespace() {
        if out.len() == expected {
            return Err(bad_state(format!(
                "expected {expected} integer values, found more"
            )));
        }
        let v: usize = tok
            .parse()
            .map_err(|_| bad_state(format!("malformed integer value {tok:?}")))?;
        out.push(v);
    }
    if out.len() != expected {
        return Err(bad_state(format!(
            "expected {expected} integer values, found {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Writes `vals` as a raw little-endian run of `f64` bit patterns — 8
/// bytes per value, terminated by one `\n`. The binary twin of
/// [`write_f64_line`] for bulk payloads (snapshot restores must load
/// state far faster than recomputing it, and text formatting dominates
/// at matrix sizes); bit-exactness is structural, since
/// [`f64::to_bits`] round-trips every pattern including NaN payloads.
pub fn write_f64_run(w: &mut dyn Write, vals: &[f64]) -> io::Result<()> {
    // Convert block-wise into a fixed staging buffer: the inner loop is a
    // plain 8-byte store per value (no per-value capacity bookkeeping),
    // and the staging cost stays bounded regardless of the run length.
    let mut bytes = vec![0u8; vals.len().min(PREALLOC_CAP) * 8];
    for block in vals.chunks(PREALLOC_CAP.max(1)) {
        let staged = &mut bytes[..block.len() * 8];
        for (dst, v) in staged.chunks_exact_mut(8).zip(block) {
            dst.copy_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(staged)?;
    }
    w.write_all(b"\n")
}

/// Reads a run written by [`write_f64_run`], requiring exactly
/// `expected` values plus the terminator. Truncation surfaces as
/// `UnexpectedEof`; the allocation grows with the bytes actually read,
/// so a corrupted declared length cannot trigger a huge up-front
/// reservation.
pub fn read_f64_run(r: &mut dyn BufRead, expected: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(expected.min(PREALLOC_CAP));
    read_f64_run_into(r, expected, &mut out)?;
    Ok(out)
}

/// [`read_f64_run`] appending into a caller-supplied buffer — the
/// allocation-free variant the pooled ingest path uses (the buffer
/// typically comes from [`crate::pool::take_f64`] and already has the
/// capacity from a previous round). Appends exactly `expected` values or
/// returns an error with `out` in an unspecified (but valid) state.
pub fn read_f64_run_into(
    r: &mut dyn BufRead,
    expected: usize,
    out: &mut Vec<f64>,
) -> io::Result<()> {
    let nbytes = checked_len(expected, 8)?;
    out.reserve(expected.min(PREALLOC_CAP));
    let mut chunk = [0u8; 8192];
    let mut remaining = nbytes;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        for c in chunk[..take].chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            out.push(f64::from_bits(u64::from_le_bytes(b)));
        }
        remaining -= take;
    }
    let mut sep = [0u8; 1];
    r.read_exact(&mut sep)?;
    if sep[0] != b'\n' {
        return Err(bad_state("missing terminator after binary f64 run"));
    }
    Ok(())
}

/// Writes `vals` as a raw little-endian run of `u64`-encoded `usize`
/// values terminated by one `\n` — the integer twin of
/// [`write_f64_run`], for CSR index payloads that would be needlessly
/// slow as text.
pub fn write_usize_run(w: &mut dyn Write, vals: &[usize]) -> io::Result<()> {
    let mut bytes = vec![0u8; vals.len().min(PREALLOC_CAP) * 8];
    for block in vals.chunks(PREALLOC_CAP.max(1)) {
        let staged = &mut bytes[..block.len() * 8];
        for (dst, &v) in staged.chunks_exact_mut(8).zip(block) {
            dst.copy_from_slice(&(v as u64).to_le_bytes());
        }
        w.write_all(staged)?;
    }
    w.write_all(b"\n")
}

/// Reads a run written by [`write_usize_run`], requiring exactly
/// `expected` values plus the terminator.
pub fn read_usize_run(r: &mut dyn BufRead, expected: usize) -> io::Result<Vec<usize>> {
    let mut out = Vec::with_capacity(expected.min(PREALLOC_CAP));
    read_usize_run_into(r, expected, &mut out)?;
    Ok(out)
}

/// [`read_usize_run`] appending into a caller-supplied buffer — the
/// integer twin of [`read_f64_run_into`] for pooled index buffers.
/// Values that overflow `usize` are malformed data, not a panic.
pub fn read_usize_run_into(
    r: &mut dyn BufRead,
    expected: usize,
    out: &mut Vec<usize>,
) -> io::Result<()> {
    let nbytes = checked_len(expected, 8)?;
    out.reserve(expected.min(PREALLOC_CAP));
    let mut chunk = [0u8; 8192];
    let mut remaining = nbytes;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        for c in chunk[..take].chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            let v = u64::from_le_bytes(b);
            out.push(usize::try_from(v).map_err(|_| bad_state("usize value overflows"))?);
        }
        remaining -= take;
    }
    let mut sep = [0u8; 1];
    r.read_exact(&mut sep)?;
    if sep[0] != b'\n' {
        return Err(bad_state("missing terminator after binary usize run"));
    }
    Ok(())
}

/// `a * b` with overflow reported as malformed data (a corrupted header
/// must not wrap a length computation into a small, "valid" value).
pub fn checked_len(a: usize, b: usize) -> io::Result<usize> {
    a.checked_mul(b)
        .ok_or_else(|| bad_state(format!("dimension product {a}*{b} overflows")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_line_round_trips_every_bit_pattern_class() {
        let vals = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            1e-300,
            -2.2250738585072014e-308,
        ];
        let mut buf = Vec::new();
        write_f64_line(&mut buf, &vals).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let back = parse_f64_line(line.trim_end(), vals.len()).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-trips");
        }
    }

    #[test]
    fn parse_rejects_wrong_counts_and_garbage() {
        assert!(parse_f64_line("1.0 2.0", 3).is_err());
        assert!(parse_f64_line("1.0 2.0 3.0 4.0", 3).is_err());
        assert!(parse_f64_line("1.0 abc", 2).is_err());
        assert!(parse_usize_line("1 2 junk", 3).is_err());
        assert!(parse_usize_line("-1", 1).is_err());
        assert!(parse_f64_line("", 0).is_ok());
        assert!(parse_usize_line("7", 1).is_ok());
    }

    #[test]
    fn read_line_reports_eof_and_strips_terminators() {
        let mut r = io::BufReader::new(&b"abc\r\ndef"[..]);
        assert_eq!(read_line(&mut r).unwrap(), "abc");
        assert_eq!(read_line(&mut r).unwrap(), "def");
        let err = read_line(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn f64_run_round_trips_every_bit_pattern_class_and_detects_truncation() {
        let vals = [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE / 8.0,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let mut buf = Vec::new();
        write_f64_run(&mut buf, &vals).unwrap();
        assert_eq!(buf.len(), vals.len() * 8 + 1);
        let back = read_f64_run(&mut &buf[..], vals.len()).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-trips");
        }
        // Truncated run → UnexpectedEof, never a short vector.
        let err = read_f64_run(&mut &buf[..buf.len() - 5], vals.len()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Wrong terminator → InvalidData.
        let mut mangled = buf.clone();
        *mangled.last_mut().unwrap() = b'x';
        let err = read_f64_run(&mut &mangled[..], vals.len()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn usize_run_round_trips_and_appends_into_existing_buffers() {
        let vals = [0usize, 1, 7, usize::MAX, 1 << 40];
        let mut buf = Vec::new();
        write_usize_run(&mut buf, &vals).unwrap();
        assert_eq!(buf.len(), vals.len() * 8 + 1);
        assert_eq!(read_usize_run(&mut &buf[..], vals.len()).unwrap(), vals);
        // The _into variant appends after existing contents.
        let mut out = vec![99usize];
        read_usize_run_into(&mut &buf[..], vals.len(), &mut out).unwrap();
        assert_eq!(out[0], 99);
        assert_eq!(&out[1..], &vals);
        // Truncation → UnexpectedEof; wrong terminator → InvalidData.
        let err = read_usize_run(&mut &buf[..buf.len() - 3], vals.len()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let mut mangled = buf.clone();
        *mangled.last_mut().unwrap() = b'x';
        let err = read_usize_run(&mut &mangled[..], vals.len()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn f64_run_into_appends_after_existing_contents() {
        let vals = [1.5f64, -0.25, f64::NAN];
        let mut buf = Vec::new();
        write_f64_run(&mut buf, &vals).unwrap();
        let mut out = vec![7.0f64];
        read_f64_run_into(&mut &buf[..], vals.len(), &mut out).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 7.0);
        for (a, b) in vals.iter().zip(&out[1..]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn checked_len_rejects_overflow() {
        assert_eq!(checked_len(3, 4).unwrap(), 12);
        assert!(checked_len(usize::MAX, 2).is_err());
    }
}
