//! LU factorization with partial pivoting, linear solves and matrix
//! inversion.
//!
//! ISVD3/ISVD4 need the inverse of the averaged factor matrix `V_avg`
//! (Section 4.4.2.2); the Doolittle LU factorization with partial pivoting
//! implemented here is the workhorse behind [`invert`] and [`solve`].

use crate::{LinalgError, Matrix, Result};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: `U` on and above the diagonal, `L` (unit diagonal
    /// implied) strictly below.
    lu: Matrix,
    /// Row permutation: `pivots[i]` is the original row index now in row `i`.
    pivots: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used for determinants.
    sign: f64,
}

/// Relative pivot threshold below which the matrix is declared singular.
const SINGULARITY_TOL: f64 = 1e-13;

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square inputs.
    /// * [`LinalgError::Singular`] when a pivot collapses below the
    ///   singularity threshold relative to the matrix scale.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.is_empty() {
            return Err(LinalgError::Empty);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < SINGULARITY_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                pivots.swap(k, p);
                sign = -sign;
            }
            // Eliminate below the pivot.
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }

        Ok(Lu { lu, pivots, sign })
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let (solved, rest) = x.split_at_mut(i);
            let mut sum = rest[0];
            for (j, &xj) in solved.iter().enumerate() {
                sum -= self.lu[(i, j)] * xj;
            }
            rest[0] = sum;
        }
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut(i + 1);
            let mut sum = head[i];
            for (k, &xj) in tail.iter().enumerate() {
                sum -= self.lu[(i, i + 1 + k)] * xj;
            }
            head[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            out.set_col(j, &x)?;
        }
        Ok(out)
    }

    /// The determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.sign
    }
}

/// Inverts a square matrix via LU factorization.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] for (numerically) singular inputs.
pub fn invert(a: &Matrix) -> Result<Matrix> {
    let lu = Lu::new(a)?;
    lu.solve(&Matrix::identity(a.rows()))
}

/// Solves the linear system `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve_vec(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::uniform_matrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut rng = SmallRng::seed_from_u64(31);
        for &n in &[1usize, 2, 3, 8, 20] {
            let a = uniform_matrix(&mut rng, n, n, -2.0, 2.0)
                .add(&Matrix::identity(n).scale(3.0))
                .unwrap();
            let inv = invert(&a).unwrap();
            let prod = a.matmul(&inv).unwrap();
            assert!(
                prod.approx_eq(&Matrix::identity(n), 1e-8),
                "A * A^-1 != I for n = {n}"
            );
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(invert(&a), Err(LinalgError::Singular)));
        let zero = Matrix::zeros(3, 3);
        assert!(matches!(invert(&zero), Err(LinalgError::Singular)));
    }

    #[test]
    fn non_square_is_rejected() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Lu::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_with_pivoting() {
        // Requires a row swap to factorize.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_rhs_solve() {
        let mut rng = SmallRng::seed_from_u64(32);
        let a = uniform_matrix(&mut rng, 6, 6, -1.0, 1.0)
            .add(&Matrix::identity(6).scale(4.0))
            .unwrap();
        let b = uniform_matrix(&mut rng, 6, 3, -1.0, 1.0);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-9));
    }

    #[test]
    fn solve_rejects_bad_rhs_shape() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve_vec(&[1.0, 2.0]).is_err());
        assert!(lu.solve(&Matrix::zeros(2, 2)).is_err());
    }
}
