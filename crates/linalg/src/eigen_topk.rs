//! Certified top-k symmetric eigendecomposition.
//!
//! The truncating consumers in this workspace — `bound_eigen` in
//! `ivmf-core`, the Gram-route SVD, the pipeline's MidpointSvd / BoundSvd /
//! BoundEigenLo / BoundEigenHi stages — only keep the leading `r` eigenpairs
//! of an `m×m` Gram(-bound) matrix, yet the dense [`sym_eigen`] oracle
//! always pays for the full spectrum: `O(m³)` for `r ≪ m` worth of output.
//! [`sym_eigen_topk`] computes just the top-k pairs with a Lanczos
//! iteration and certifies every answer against the oracle's tolerance
//! before returning it:
//!
//! 1. **Lanczos with full reorthogonalization.** The (symmetrized) input is
//!    projected onto a Krylov basis built one matrix–vector product at a
//!    time; each new direction is re-orthogonalized against the whole
//!    basis, with a second pass whenever the first reveals cancellation
//!    (the Daniel–Gragg–Kaufman–Stewart "twice is enough" criterion), so
//!    the projection `T = Qᵀ A Q` stays tridiagonal to working
//!    precision. The small problem `T` is solved by the same implicit-QL
//!    sweep as the dense oracle ([`crate::eigen_sym`] shares its backend).
//! 2. **Deterministic, seed-free start vectors.** Start and restart
//!    directions come from a fixed splitmix64 recurrence keyed only by the
//!    restart ordinal — no RNG state, no time, no thread identity — so
//!    results are reproducible run-to-run and bitwise invariant to
//!    `IVMF_THREADS` (every kernel the iteration touches already carries
//!    that contract: [`Matrix::matvec`] is serial, [`Matrix::matmul`] is
//!    panel-split-invariant, the QL sweep is rotation-order-invariant).
//! 3. **Residual certification.** A candidate answer is accepted only if
//!    every returned pair satisfies `‖A v − λ v‖ ≤ tol · ‖A‖_F` with
//!    `tol =` [`DEFAULT_TOPK_TOL`] (per-pair, checked with an explicit
//!    matrix–vector product — not just the Lanczos recurrence estimate).
//! 4. **Fallback to the oracle.** If the basis hits its cap before the
//!    certificate holds, the call transparently falls back to the full
//!    [`sym_eigen`] solve (truncated to `k`), so callers never trade
//!    accuracy for speed. [`TopkOptions::with_fallback`]`(false)` surfaces
//!    the typed [`LinalgError::NoConvergence`] instead, for callers that
//!    want to observe the failure.
//!
//! Breakdown (`β ≈ 0`, an exact invariant subspace) restarts the iteration
//! with the next deterministic direction orthogonalized against the basis,
//! which is how repeated eigenvalues of low-distinct-count spectra (e.g.
//! `c·I`, clustered Grams, rank-deficient matrices) are recovered copy by
//! copy. Because one Krylov block sees exactly one copy per eigenspace, a
//! breakdown-triggered answer is accepted only once its top-k Ritz values
//! survive a whole extra restart block unchanged — otherwise
//! `diag(5, 5, 5, 2, …)` could certify `[5, 5, 2, 2]` after two blocks
//! while the third copy of `5` still waits in the next one.
//!
//! ## Caveat: multiplicities in large simple-spectrum matrices
//!
//! Like every single-vector Lanczos scheme (ARPACK included), a run that
//! never breaks down explores one Krylov direction per *distinct*
//! eigenvalue: an eigenvalue of multiplicity > 1 buried in an otherwise
//! large simple spectrum can be reported once, with the next distinct
//! eigenvalue taking its slot. Every returned pair is still a certified
//! eigenpair within tolerance. The random Gram(-bound) matrices of the
//! decomposition pipeline have simple spectra almost surely; callers that
//! need exact multiplicity semantics pin `IVMF_TOPK_EIGEN=full`.
//!
//! ## Mode selection
//!
//! [`sym_eigen_topk`] reads `IVMF_TOPK_EIGEN` (via
//! [`ivmf_env::topk_eigen_mode`]) on every call: `full` pins the oracle,
//! `forced` always attempts the Lanczos path, and the default `auto` uses
//! [`topk_profitable`] — the iteration wins once the matrix is big enough
//! (`n ≥ 96`) and the basis cap is at most half the dimension. Because
//! every accepted answer is certified against the same tolerance, the mode
//! is a kernel choice, not a semantic one — which is why the decomposition
//! pipeline's `StageCache` keys deliberately exclude it.
//!
//! All modes (including `full`) canonicalize eigenvector column signs
//! (largest-magnitude component positive), so answers computed by
//! different solvers agree up to the certified tolerance instead of up to
//! sign.

use crate::eigen_sym::{eigen_tridiagonal, eigen_tridiagonal_values, sym_eigen, SymEigen};
use crate::{LinalgError, Matrix, Result};
use ivmf_env::TopkEigenMode;

/// Relative residual tolerance certified by [`sym_eigen_topk`]: every
/// returned pair satisfies `‖A v − λ v‖ ≤ DEFAULT_TOPK_TOL · ‖A‖_F`.
pub const DEFAULT_TOPK_TOL: f64 = 1e-8;

/// Below this dimension the dense oracle is at least as fast as the
/// iteration (basis bookkeeping dominates): `auto` mode never iterates.
const TOPK_MIN_DIM: usize = 96;

/// A convergence check runs every this-many basis extensions once the
/// basis passed its minimum size.
const BASIS_CHECK_STRIDE: usize = 8;

/// Smallest basis worth checking: `2k + 8` directions give the Ritz values
/// one Lanczos "ghost" interval of slack before the first small solve.
fn default_min_basis(n: usize, k: usize) -> usize {
    (2 * k + 8).min(n)
}

/// Default basis cap: `4k + 32` directions (clamped to `n`).
fn default_max_basis(n: usize, k: usize) -> usize {
    (4 * k + 32).min(n)
}

/// True when `auto` mode attempts the Lanczos path for an `n×n` input and
/// `k` requested pairs: the matrix must be at least `TOPK_MIN_DIM` (`96`)
/// wide and the default basis cap at most `n / 2`, so the iteration
/// touches a strict fraction of the work the dense oracle would.
pub fn topk_profitable(n: usize, k: usize) -> bool {
    n >= TOPK_MIN_DIM && 2 * default_max_basis(n, k) <= n
}

/// Tuning knobs for [`sym_eigen_topk_with`]. The defaults are what
/// [`sym_eigen_topk`] uses; tests and benches override them to pin a
/// specific path.
#[derive(Debug, Clone)]
pub struct TopkOptions {
    /// Relative residual tolerance (× `‖A‖_F`) certified per returned
    /// pair. Default [`DEFAULT_TOPK_TOL`].
    pub tol: f64,
    /// Basis cap override; `None` uses `min(4k + 32, n)`. Clamped to
    /// `[k, n]`.
    pub max_basis: Option<usize>,
    /// Fall back to the dense oracle when the iteration fails to certify
    /// (default `true`); `false` surfaces [`LinalgError::NoConvergence`].
    pub fallback: bool,
    /// Skip the [`topk_profitable`] heuristic and always attempt the
    /// iteration (default `false`). `k == n` still short-circuits to the
    /// oracle — there is nothing to truncate.
    pub force: bool,
}

impl Default for TopkOptions {
    fn default() -> Self {
        TopkOptions {
            tol: DEFAULT_TOPK_TOL,
            max_basis: None,
            fallback: true,
            force: false,
        }
    }
}

impl TopkOptions {
    /// Returns the options with the residual tolerance replaced.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Returns the options with the basis cap replaced.
    pub fn with_max_basis(mut self, max_basis: usize) -> Self {
        self.max_basis = Some(max_basis);
        self
    }

    /// Returns the options with the fallback switch replaced.
    pub fn with_fallback(mut self, fallback: bool) -> Self {
        self.fallback = fallback;
        self
    }

    /// Returns the options with the force switch replaced.
    pub fn with_force(mut self, force: bool) -> Self {
        self.force = force;
        self
    }
}

/// How a [`sym_eigen_topk_report`] answer was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkReport {
    /// True when the dense oracle produced the answer — heuristic
    /// dispatch, `k == n`, or fallback after a failed iteration.
    pub used_dense: bool,
    /// True when the dense path was entered *because* the iteration failed
    /// to converge or certify (a strict subset of `used_dense`).
    pub used_fallback: bool,
    /// Krylov basis size at acceptance (`0` on the dense path).
    pub basis_size: usize,
    /// Certified per-pair residual norms `‖A v − λ v‖`, in eigenvalue
    /// order (empty on the dense path — the oracle is its own
    /// certificate).
    pub residuals: Vec<f64>,
}

/// Computes the top-`k` eigenpairs (largest eigenvalues first) of a
/// symmetric matrix, choosing the solver according to `IVMF_TOPK_EIGEN`
/// (`auto`/`full`/`forced`, see [`ivmf_env::topk_eigen_mode`]).
///
/// Whatever the mode, every returned pair is certified to
/// `‖A v − λ v‖ ≤ tol · ‖A‖_F` with `tol =` [`DEFAULT_TOPK_TOL`] (the
/// dense oracle is its own certificate), eigenvalues are sorted
/// descending, and eigenvector column signs are canonicalized. `k` is
/// clamped to `n`.
///
/// # Errors
///
/// * [`LinalgError::Empty`] / [`LinalgError::NotSquare`] for malformed
///   inputs, [`LinalgError::InvalidArgument`] for `k == 0`.
/// * Propagates oracle convergence failures (fallback is enabled, so an
///   error means even the dense solver failed).
pub fn sym_eigen_topk(a: &Matrix, k: usize) -> Result<SymEigen> {
    let opts = match ivmf_env::topk_eigen_mode() {
        TopkEigenMode::Full => {
            validate(a, k)?;
            return dense_truncated(a, k.min(a.rows()));
        }
        TopkEigenMode::Auto => TopkOptions::default(),
        TopkEigenMode::Forced => TopkOptions::default().with_force(true),
    };
    sym_eigen_topk_with(a, k, &opts)
}

/// [`sym_eigen_topk`] with explicit [`TopkOptions`] instead of the
/// environment knob — the environment is not consulted at all, so the call
/// is reproducible regardless of `IVMF_TOPK_EIGEN`.
pub fn sym_eigen_topk_with(a: &Matrix, k: usize, opts: &TopkOptions) -> Result<SymEigen> {
    sym_eigen_topk_report(a, k, opts).map(|(eig, _)| eig)
}

/// [`sym_eigen_topk_with`] additionally reporting which solver produced
/// the answer and the certified residuals (see [`TopkReport`]).
pub fn sym_eigen_topk_report(
    a: &Matrix,
    k: usize,
    opts: &TopkOptions,
) -> Result<(SymEigen, TopkReport)> {
    validate(a, k)?;
    let n = a.rows();
    let k = k.min(n);

    let dense = |used_fallback: bool| -> Result<(SymEigen, TopkReport)> {
        let eig = dense_truncated(a, k)?;
        Ok((
            eig,
            TopkReport {
                used_dense: true,
                used_fallback,
                basis_size: 0,
                residuals: Vec::new(),
            },
        ))
    };

    if k == n || (!opts.force && !topk_profitable(n, k)) {
        return dense(false);
    }

    // Symmetrize exactly as the dense oracle does, so both paths see the
    // same operator. (Addition commutes bitwise, so `b` is exactly
    // symmetric.) An already-symmetric input — every Gram(-bound) matrix
    // the pipeline sends here — is its own symmetrization bitwise
    // (`(x + x) / 2 == x`), so skip the three-allocation copy for it.
    let symmetrized;
    let b: &Matrix = if is_exactly_symmetric(a) {
        a
    } else {
        symmetrized = a.add(&a.transpose())?.scale(0.5);
        &symmetrized
    };
    let scale = b.frobenius_norm();
    if scale == 0.0 {
        // Zero matrix: the spectrum is all zeros and the canonical
        // eigenvectors are the leading identity columns — exactly what the
        // dense path returns.
        return Ok((
            SymEigen {
                eigenvalues: vec![0.0; k],
                eigenvectors: Matrix::identity(n).take_cols(k),
            },
            TopkReport {
                used_dense: false,
                used_fallback: false,
                basis_size: 0,
                residuals: vec![0.0; k],
            },
        ));
    }

    match lanczos_topk(b, k, scale, opts) {
        Ok((eig, basis_size, residuals)) => Ok((
            eig,
            TopkReport {
                used_dense: false,
                used_fallback: false,
                basis_size,
                residuals,
            },
        )),
        Err(LinalgError::NoConvergence { .. }) if opts.fallback => dense(true),
        Err(e) => Err(e),
    }
}

/// Canonicalizes eigenvector column signs in place: each column is negated
/// if needed so its largest-magnitude component (first one on ties) is
/// positive. Negation is exact in floating point, so this never moves an
/// answer — it only picks one representative of each `±v` pair, letting
/// answers from different solvers be compared directly. All-zero columns
/// are left untouched.
pub fn canonicalize_column_signs(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for j in 0..cols {
        let mut pivot = 0.0f64;
        for i in 0..rows {
            let x = m[(i, j)];
            if x.abs() > pivot.abs() {
                pivot = x;
            }
        }
        if pivot < 0.0 {
            m.scale_col(j, -1.0);
        }
    }
}

/// True when `a[(i, j)]` equals `a[(j, i)]` bitwise for every pair — the
/// case where the oracle's `(A + Aᵀ) / 2` symmetrization is the identity.
fn is_exactly_symmetric(a: &Matrix) -> bool {
    let n = a.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            if a[(i, j)].to_bits() != a[(j, i)].to_bits() {
                return false;
            }
        }
    }
    true
}

fn validate(a: &Matrix, k: usize) -> Result<()> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if k == 0 {
        return Err(LinalgError::InvalidArgument(
            "requested eigenpair count must be at least 1".to_string(),
        ));
    }
    Ok(())
}

/// Full oracle solve truncated to the leading `k` pairs, signs
/// canonicalized.
fn dense_truncated(a: &Matrix, k: usize) -> Result<SymEigen> {
    let eig = sym_eigen(a)?;
    let mut eigenvectors = eig.eigenvectors.take_cols(k);
    canonicalize_column_signs(&mut eigenvectors);
    Ok(SymEigen {
        eigenvalues: eig.eigenvalues[..k].to_vec(),
        eigenvectors,
    })
}

fn no_convergence(iterations: usize) -> LinalgError {
    LinalgError::NoConvergence {
        algorithm: "lanczos_topk",
        iterations,
    }
}

/// The Lanczos iteration proper, on the already-symmetrized `b` with
/// `‖b‖_F = scale > 0` and `0 < k < n`. Returns the certified eigensystem,
/// the basis size at acceptance and the per-pair residual norms.
fn lanczos_topk(
    b: &Matrix,
    k: usize,
    scale: f64,
    opts: &TopkOptions,
) -> Result<(SymEigen, usize, Vec<f64>)> {
    let n = b.rows();
    let tol_abs = opts.tol * scale;
    let max_basis = opts
        .max_basis
        .unwrap_or_else(|| default_max_basis(n, k))
        .clamp(k, n);
    let min_basis = default_min_basis(n, k).min(max_basis);
    // Below this a new direction is an exact invariant subspace to working
    // precision: normalizing it would amplify rounding noise, so restart
    // with a fresh direction instead.
    let breakdown_tol = scale * f64::EPSILON * 64.0 * (n as f64).sqrt();

    let mut qs: Vec<Vec<f64>> = Vec::with_capacity(max_basis);
    let mut alpha: Vec<f64> = Vec::with_capacity(max_basis);
    // Committed couplings: beta[j] ties basis vectors j and j+1; a zero
    // entry marks a restart joint (T splits into independent blocks).
    let mut beta: Vec<f64> = Vec::with_capacity(max_basis);
    let mut restart_seq: u64 = 0;
    // Top-k Ritz values at the previous breakdown extraction: a
    // breakdown-triggered answer is only accepted once the top-k survived
    // a whole extra restart block unchanged (see below).
    let mut stash: Option<Vec<f64>> = None;
    let mut q = fresh_orthonormal(n, &qs, &mut restart_seq).ok_or_else(|| no_convergence(0))?;

    loop {
        qs.push(q);
        let j = qs.len() - 1;
        let mut w = b.matvec(&qs[j])?;
        let aj = dot(&w, &qs[j]);
        alpha.push(aj);
        // Classical three-term recurrence first, then a full
        // reorthogonalization pass to hold the basis orthonormal to working
        // precision. A second pass runs only when the first one cancelled
        // away more than `1 − 1/√2` of the norm (the
        // Daniel–Gragg–Kaufman–Stewart criterion — "twice is enough"):
        // steady-state Lanczos directions are already near-orthogonal, so
        // the extra pass is usually pure overhead, and the explicit residual
        // certification below backstops any orthogonality this heuristic
        // could ever give up.
        axpy(&mut w, -aj, &qs[j]);
        if j > 0 && beta[j - 1] != 0.0 {
            axpy(&mut w, -beta[j - 1], &qs[j - 1]);
        }
        let before = norm(&w);
        let mut pending = reorthogonalize(&mut w, &qs);
        if pending < std::f64::consts::FRAC_1_SQRT_2 * before {
            pending = reorthogonalize(&mut w, &qs);
        }

        let p = qs.len();
        let broke_down = pending <= breakdown_tol;
        let at_cap = p == max_basis;
        let due = p >= min_basis && (p - min_basis) % BASIS_CHECK_STRIDE == 0;
        let mut certified: Option<(SymEigen, Vec<f64>)> = None;
        if p >= k && (broke_down || at_cap || due) {
            if let Some(ok) = try_extract(b, &qs, &alpha, &beta, pending, k, tol_abs)? {
                // A breakdown means an exact invariant subspace — the
                // certificate holds per pair, but further copies of a
                // repeated eigenvalue may still live *outside* the basis
                // (each Krylov block sees one copy per eigenspace). So a
                // breakdown-triggered answer is accepted only once the
                // top-k Ritz values survive a whole extra restart block
                // unchanged; a genuine Krylov-convergence answer (no
                // breakdown) is accepted directly.
                let stable = stash.as_ref().is_some_and(|prev: &Vec<f64>| {
                    prev.iter()
                        .zip(&ok.0.eigenvalues)
                        .all(|(a, b)| (a - b).abs() <= tol_abs)
                });
                if !broke_down || stable {
                    return Ok((ok.0, p, ok.1));
                }
                stash = Some(ok.0.eigenvalues.clone());
                certified = Some(ok);
            }
        }
        if at_cap {
            return Err(no_convergence(p));
        }
        if broke_down {
            beta.push(0.0);
            match fresh_orthonormal(n, &qs, &mut restart_seq) {
                Some(next) => q = next,
                None => {
                    // No numerically independent direction is left: the
                    // basis spans the space, so a certified extraction is
                    // the complete answer.
                    return match certified {
                        Some((eig, residuals)) => Ok((eig, p, residuals)),
                        None => Err(no_convergence(p)),
                    };
                }
            }
        } else {
            beta.push(pending);
            for x in w.iter_mut() {
                *x /= pending;
            }
            q = w;
        }
    }
}

/// Solves the current tridiagonal projection and — if the cheap Lanczos
/// residual bound `|β_pending · y[p−1, i]|` clears the tolerance for all
/// top-k pairs — forms the Ritz vectors and certifies each one with an
/// explicit `‖A v − λ v‖` product. `None` means "not converged yet".
fn try_extract(
    b: &Matrix,
    qs: &[Vec<f64>],
    alpha: &[f64],
    beta: &[f64],
    pending: f64,
    k: usize,
    tol_abs: f64,
) -> Result<Option<(SymEigen, Vec<f64>)>> {
    let p = alpha.len();
    // The prefilter needs only the Ritz values and the eigenvector last
    // row — an O(p²) single-row rotation pass, bitwise identical to the
    // full backend's last row. The O(p³) eigenvector accumulation runs
    // only once the prefilter passes, so the repeated not-yet-converged
    // probes along the iteration stay cheap.
    let (vals, last_row) = eigen_tridiagonal_values(alpha, beta)?;
    for &y_last in &last_row[..k] {
        if (pending * y_last).abs() > tol_abs {
            return Ok(None);
        }
    }
    // With the Ritz values in hand, the needed `k` eigenvectors of `T`
    // come from O(k·p) inverse iteration when the top of the spectrum is
    // well separated (the generic case for the pipeline's random Gram
    // bounds). Clustered or exhausted spectra take the full O(p³) rotation
    // accumulation instead: inverse iteration converges to the eigenvector
    // nearest each shift, so near-equal shifts could yield nearly-parallel
    // columns. Either way the explicit certification below has the final
    // word.
    let t_scale = vals[0].abs().max(vals[p - 1].abs());
    let separated = p > k && vals[..=k].windows(2).all(|w| w[0] - w[1] > 1e-6 * t_scale);
    let y_k = if separated {
        crate::eigen_sym::tridiagonal_eigenvectors(alpha, beta, &vals[..k])?
    } else {
        eigen_tridiagonal(alpha, beta)?.eigenvectors.take_cols(k)
    };

    let n = qs[0].len();
    let qmat = Matrix::from_fn(n, p, |i, j| qs[j][i]);
    let mut vecs = qmat.matmul(&y_k)?;
    // One batched product certifies all k candidates: `matmul` is
    // panel-split-invariant, so the residuals stay deterministic across
    // thread counts while costing a packed GEMM instead of k strided
    // matrix–vector products.
    let av = b.matmul(&vecs)?;
    let mut residuals = Vec::with_capacity(k);
    for i in 0..k {
        let lambda = vals[i];
        let mut r2 = 0.0;
        for row in 0..n {
            let d = av[(row, i)] - lambda * vecs[(row, i)];
            r2 += d * d;
        }
        let r = r2.sqrt();
        if r > tol_abs {
            return Ok(None);
        }
        residuals.push(r);
    }
    canonicalize_column_signs(&mut vecs);
    Ok(Some((
        SymEigen {
            eigenvalues: vals[..k].to_vec(),
            eigenvectors: vecs,
        },
        residuals,
    )))
}

/// One splitmix64 step — the standard finalizer, fixed constants.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `sequence`-th deterministic direction: components in `[-0.5, 0.5)`
/// from a splitmix64 stream keyed only by the sequence ordinal. No seeds,
/// no time, no thread identity — the same call always produces the same
/// vector.
fn deterministic_direction(n: usize, sequence: u64) -> Vec<f64> {
    let mut state = 0x51ED_2701_89AB_CDEF_u64 ^ sequence.wrapping_mul(0xA076_1D64_78BD_642F);
    (0..n)
        .map(|_| (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect()
}

/// Produces the next deterministic unit vector orthogonal to the current
/// basis, advancing `restart_seq`. `None` when the basis already spans the
/// space (or no numerically independent direction is found in a few
/// attempts — callers treat that as non-convergence).
fn fresh_orthonormal(n: usize, qs: &[Vec<f64>], restart_seq: &mut u64) -> Option<Vec<f64>> {
    if qs.len() >= n {
        return None;
    }
    for _ in 0..8 {
        let mut v = deterministic_direction(n, *restart_seq);
        *restart_seq += 1;
        let m = norm(&v);
        if m == 0.0 {
            continue;
        }
        for x in v.iter_mut() {
            *x /= m;
        }
        for _ in 0..2 {
            for qi in qs {
                let c = dot(&v, qi);
                if c != 0.0 {
                    axpy(&mut v, -c, qi);
                }
            }
        }
        let m = norm(&v);
        if m > 1e-6 {
            for x in v.iter_mut() {
                *x /= m;
            }
            return Some(v);
        }
    }
    None
}

/// One classical-Gram-Schmidt pass of `w` against the whole basis,
/// returning the norm of the result — the ARPACK scheme: all projection
/// coefficients are computed against the *same* `w`, then subtracted in
/// one sweep (the DGKS criterion at the call sites repeats the pass when
/// this reveals cancellation). Computing the coefficients against a fixed
/// `w` lets both sweeps walk the basis in pairs that share each load of
/// `w`, which is where a serial reorthogonalization spends its time.
fn reorthogonalize(w: &mut [f64], qs: &[Vec<f64>]) -> f64 {
    let mut coeffs = vec![0.0; qs.len()];
    let mut i = 0;
    while i + 1 < qs.len() {
        let (c0, c1) = crate::matrix::dot2_unrolled(&qs[i], &qs[i + 1], w);
        coeffs[i] = c0;
        coeffs[i + 1] = c1;
        i += 2;
    }
    if i < qs.len() {
        coeffs[i] = dot(w, &qs[i]);
    }
    let mut i = 0;
    while i + 1 < qs.len() {
        axpy2(w, -coeffs[i], &qs[i], -coeffs[i + 1], &qs[i + 1]);
        i += 2;
    }
    if i < qs.len() {
        axpy(w, -coeffs[i], &qs[i]);
    }
    norm(w)
}

/// Serial dot product — single-threaded with a fixed (8-lane unrolled)
/// summation order, so bitwise reproducible across runs and thread
/// counts. The independent accumulators break the additive dependency
/// chain that keeps a strictly sequential reduction scalar.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::matrix::dot_unrolled(a, b)
}

/// Serial Euclidean norm.
fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`, serial.
fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y += a0 * x0 + a1 * x1` in one pass, serial. Each element updates as
/// `(y + a0·x0) + a1·x1` — the same order as two consecutive [`axpy`]
/// calls, so pairing is a traffic optimization, not a different sum.
fn axpy2(y: &mut [f64], a0: f64, x0: &[f64], a1: f64, x1: &[f64]) {
    for ((yi, &v0), &v1) in y.iter_mut().zip(x0.iter()).zip(x1.iter()) {
        *yi = (*yi + a0 * v0) + a1 * v1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{symmetric_matrix, uniform_matrix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_certified(a: &Matrix, eig: &SymEigen, tol: f64) {
        let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
        for i in 0..eig.eigenvalues.len() {
            let v = eig.eigenvectors.col(i);
            let av = a.matvec(&v).unwrap();
            let r: f64 = av
                .iter()
                .zip(v.iter())
                .map(|(&x, &y)| (x - eig.eigenvalues[i] * y).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(r <= tol * scale, "pair {i}: residual {r} > {tol}·‖A‖");
        }
    }

    #[test]
    fn forced_iteration_matches_oracle_on_random_symmetric() {
        let mut rng = SmallRng::seed_from_u64(31);
        let a = symmetric_matrix(&mut rng, 60, -2.0, 2.0);
        let opts = TopkOptions::default().with_force(true);
        let (eig, report) = sym_eigen_topk_report(&a, 6, &opts).unwrap();
        assert!(!report.used_dense, "iteration must run when forced");
        assert!(report.basis_size >= 6);
        assert_eq!(report.residuals.len(), 6);
        let full = sym_eigen(&a).unwrap();
        for i in 0..6 {
            assert!(
                (eig.eigenvalues[i] - full.eigenvalues[i]).abs() <= 1e-7 * a.frobenius_norm(),
                "eigenvalue {i} off: {} vs {}",
                eig.eigenvalues[i],
                full.eigenvalues[i]
            );
        }
        assert_certified(&a, &eig, DEFAULT_TOPK_TOL);
    }

    #[test]
    fn small_inputs_dispatch_to_the_oracle_in_auto_mode() {
        let mut rng = SmallRng::seed_from_u64(32);
        let a = symmetric_matrix(&mut rng, 12, -1.0, 1.0);
        let (eig, report) = sym_eigen_topk_report(&a, 3, &TopkOptions::default()).unwrap();
        assert!(report.used_dense);
        assert!(!report.used_fallback);
        let full = sym_eigen(&a).unwrap();
        assert_eq!(eig.eigenvalues, full.eigenvalues[..3].to_vec());
    }

    #[test]
    fn k_equal_n_short_circuits_to_the_oracle_even_when_forced() {
        let mut rng = SmallRng::seed_from_u64(33);
        let a = symmetric_matrix(&mut rng, 10, -1.0, 1.0);
        let opts = TopkOptions::default().with_force(true);
        let (eig, report) = sym_eigen_topk_report(&a, 10, &opts).unwrap();
        assert!(report.used_dense);
        assert_eq!(eig.eigenvalues, sym_eigen(&a).unwrap().eigenvalues);
    }

    #[test]
    fn starved_basis_without_fallback_yields_typed_no_convergence() {
        let mut rng = SmallRng::seed_from_u64(34);
        let a = symmetric_matrix(&mut rng, 40, -2.0, 2.0);
        let opts = TopkOptions::default()
            .with_force(true)
            .with_fallback(false)
            .with_max_basis(10);
        let err = sym_eigen_topk_with(&a, 10, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                LinalgError::NoConvergence {
                    algorithm: "lanczos_topk",
                    ..
                }
            ),
            "expected lanczos_topk NoConvergence, got {err:?}"
        );
    }

    #[test]
    fn starved_basis_with_fallback_returns_the_oracle_answer() {
        let mut rng = SmallRng::seed_from_u64(34);
        let a = symmetric_matrix(&mut rng, 40, -2.0, 2.0);
        let opts = TopkOptions::default().with_force(true).with_max_basis(10);
        let (eig, report) = sym_eigen_topk_report(&a, 10, &opts).unwrap();
        assert!(report.used_fallback, "starved basis must fall back");
        // The fallback is the very same dense solve, so eigenvalues are
        // bitwise equal to the truncated oracle's.
        assert_eq!(eig.eigenvalues, sym_eigen(&a).unwrap().eigenvalues[..10]);
    }

    #[test]
    fn zero_matrix_returns_certified_null_pairs() {
        let (eig, report) = sym_eigen_topk_report(
            &Matrix::zeros(9, 9),
            4,
            &TopkOptions::default().with_force(true),
        )
        .unwrap();
        assert_eq!(eig.eigenvalues, vec![0.0; 4]);
        assert!(report.residuals.iter().all(|&r| r == 0.0));
        // Orthonormal columns.
        assert!(eig
            .eigenvectors
            .gram()
            .approx_eq(&Matrix::identity(4), 1e-14));
    }

    #[test]
    fn rank_deficient_gram_with_k_past_rank_pads_with_null_pairs() {
        let mut rng = SmallRng::seed_from_u64(35);
        // 120-dim Gram of rank <= 5.
        let m = uniform_matrix(&mut rng, 5, 120, -1.0, 1.0);
        let g = m.gram();
        let opts = TopkOptions::default().with_force(true);
        let (eig, report) = sym_eigen_topk_report(&g, 9, &opts).unwrap();
        assert!(!report.used_dense);
        assert_certified(&g, &eig, DEFAULT_TOPK_TOL);
        let full = sym_eigen(&g).unwrap();
        for i in 0..9 {
            assert!(
                (eig.eigenvalues[i] - full.eigenvalues[i]).abs() <= 1e-7 * g.frobenius_norm(),
                "eigenvalue {i}"
            );
        }
        // Pairs past the rank are numerically null.
        for i in 5..9 {
            assert!(eig.eigenvalues[i].abs() <= 1e-7 * g.frobenius_norm());
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            sym_eigen_topk_with(&Matrix::zeros(0, 0), 1, &TopkOptions::default()),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            sym_eigen_topk_with(&Matrix::zeros(2, 3), 1, &TopkOptions::default()),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            sym_eigen_topk_with(&Matrix::identity(3), 0, &TopkOptions::default()),
            Err(LinalgError::InvalidArgument(_))
        ));
    }

    #[test]
    fn canonicalization_makes_solvers_comparable() {
        let mut rng = SmallRng::seed_from_u64(36);
        let a = symmetric_matrix(&mut rng, 100, -1.0, 1.0);
        let forced = sym_eigen_topk_with(&a, 5, &TopkOptions::default().with_force(true)).unwrap();
        let full = dense_truncated(&a, 5).unwrap();
        let err = forced
            .eigenvectors
            .sub(&full.eigenvectors)
            .unwrap()
            .frobenius_norm();
        assert!(
            err <= 1e-4,
            "canonicalized eigenvectors should agree across solvers, diff {err}"
        );
    }

    #[test]
    fn repeated_runs_are_bitwise_identical() {
        let mut rng = SmallRng::seed_from_u64(37);
        let a = symmetric_matrix(&mut rng, 110, -3.0, 3.0);
        let opts = TopkOptions::default().with_force(true);
        let x = sym_eigen_topk_with(&a, 7, &opts).unwrap();
        let y = sym_eigen_topk_with(&a, 7, &opts).unwrap();
        assert_eq!(x.eigenvalues, y.eigenvalues);
        assert_eq!(x.eigenvectors.as_slice(), y.eigenvectors.as_slice());
    }
}
