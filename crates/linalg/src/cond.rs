//! Condition-number estimation.
//!
//! ISVD3 and ISVD4 check whether the averaged factor matrix `V_avg` is
//! "well-conditioned" before inverting it directly, otherwise they fall back
//! to the Moore–Penrose pseudo-inverse (Section 4.4.2.2 and Algorithms
//! 10–11, which take a `condThr` parameter). The spectral condition number
//! `κ₂ = σ_max / σ_min` computed here is the quantity compared against that
//! threshold.

use crate::svd::svd;
use crate::{Matrix, Result};

/// Condition-number threshold used by the ISVD3/ISVD4 drivers when the
/// caller does not specify one; values above it trigger the pseudo-inverse
/// fallback.
pub const DEFAULT_CONDITION_THRESHOLD: f64 = 1e8;

/// Computes the spectral (2-norm) condition number `σ_max / σ_min`.
///
/// Returns `f64::INFINITY` when the smallest singular value is numerically
/// zero (relative to `σ_max`), which callers treat as "ill-conditioned".
///
/// # Errors
///
/// Propagates SVD failures (empty input, non-convergence).
pub fn condition_number(a: &Matrix) -> Result<f64> {
    let f = svd(a)?;
    let smax = f.singular_values.first().copied().unwrap_or(0.0);
    let smin = f.singular_values.last().copied().unwrap_or(0.0);
    if smax == 0.0 {
        // The zero matrix: conventionally infinitely ill-conditioned.
        return Ok(f64::INFINITY);
    }
    if smin <= smax * 1e-15 {
        return Ok(f64::INFINITY);
    }
    Ok(smax / smin)
}

/// Convenience helper: true when `a` is well-conditioned with respect to
/// `threshold` (and square, so that a direct inverse exists).
pub fn is_well_conditioned(a: &Matrix, threshold: f64) -> bool {
    a.is_square() && matches!(condition_number(a), Ok(c) if c.is_finite() && c <= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_condition_one() {
        assert!((condition_number(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_condition_number() {
        let a = Matrix::from_diag(&[10.0, 2.0, 1.0]);
        assert!((condition_number(&a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_infinitely_conditioned() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(condition_number(&a).unwrap().is_infinite());
        assert!(condition_number(&Matrix::zeros(3, 3))
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn well_conditioned_check() {
        assert!(is_well_conditioned(&Matrix::identity(4), 100.0));
        let bad = Matrix::from_diag(&[1.0, 1e-12]);
        assert!(!is_well_conditioned(&bad, 100.0));
        // Rectangular matrices are never "well conditioned" for direct
        // inversion purposes.
        assert!(!is_well_conditioned(&Matrix::zeros(3, 2), 100.0));
    }

    #[test]
    fn rectangular_condition_number_still_computable() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]]);
        assert!((condition_number(&a).unwrap() - 2.0).abs() < 1e-9);
    }
}
