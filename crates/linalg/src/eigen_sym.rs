//! Symmetric eigendecomposition.
//!
//! The decomposition is computed with the classic two-phase dense approach:
//!
//! 1. **Householder tridiagonalization** (`tred2`): the symmetric input `A`
//!    is reduced to a tridiagonal matrix `T = Qᵀ A Q` while accumulating the
//!    orthogonal transformation `Q`.
//! 2. **Implicit QL with Wilkinson shifts** (`tql2`): the tridiagonal matrix
//!    is iteratively diagonalized, rotations being applied to `Q` so its
//!    columns become the eigenvectors of `A`.
//!
//! This is the standard EISPACK/`tred2`+`tql2` pair; it is `O(n³)` with a
//! small constant, numerically robust for the symmetric (Gram) matrices the
//! interval SVD algorithms produce, and has no external dependencies.
//!
//! ## Memory layout and parallelism
//!
//! The classic EISPACK loops walk *columns* of the accumulated
//! transformation — a stride-`n` access pattern that thrashes the cache as
//! soon as the matrix outgrows L2. The `O(n³)` passes here are therefore
//! restructured **row-wise** (same per-element operations in the same
//! order, so the results match the textbook formulation bitwise):
//!
//! * `tred2`'s symmetric product, rank-2 update and transformation
//!   accumulation sweep contiguous rows of `v`,
//! * `tql2` records each QL iteration's Givens rotations `(c, s)` first
//!   and then applies the whole batch row by row, instead of dragging
//!   every rotation down a column pair.
//!
//! The purely element-wise passes (the rank-2 update, the accumulation
//! update and the batched rotation application) additionally split their
//! row panels across the `IVMF_THREADS` worker pool once a pass touches at
//! least [`EIGEN_PAR_MIN_WORK`] elements; per-element arithmetic does not
//! depend on the panel split, so results stay bitwise identical for every
//! thread count.

use crate::{LinalgError, Matrix, Result};

/// Maximum QL iterations per eigenvalue before giving up.
const MAX_QL_ITERATIONS: usize = 64;

/// Minimum number of touched matrix elements before an element-wise
/// eigensolver pass is split across the worker pool: below this the pass is
/// cheaper than spawning the scoped workers (the pool spawns per call).
pub const EIGEN_PAR_MIN_WORK: usize = 32 * 1024;

/// Worker count for one element-wise pass over `work` matrix elements.
fn pass_threads(work: usize) -> usize {
    if work >= EIGEN_PAR_MIN_WORK {
        ivmf_par::configured_threads()
    } else {
        1
    }
}

/// Result of a symmetric eigendecomposition `A = Q Λ Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, sorted in **descending** order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose `j`-th column is the eigenvector for `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl SymEigen {
    /// Reconstructs `Q Λ Qᵀ`; useful for testing the factorization.
    ///
    /// `Q Λ` is formed by scaling the columns of `Q` directly
    /// ([`Matrix::scale_cols`], `O(n²)`) rather than materializing the
    /// diagonal matrix and paying an `O(n³)` product for it.
    pub fn reconstruct(&self) -> Matrix {
        let q = &self.eigenvectors;
        q.scale_cols(&self.eigenvalues)
            .and_then(|ql| ql.matmul_nt(q))
            .expect("shapes are consistent by construction")
    }
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input is **symmetrized** (`(A + Aᵀ)/2`) before factorization so
/// that tiny asymmetries caused by floating-point round-off in upstream
/// products (e.g. interval Gram matrices) do not disturb the algorithm.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] when `a` is not square.
/// * [`LinalgError::Empty`] when `a` has zero size.
/// * [`LinalgError::NoConvergence`] if the QL sweep fails to converge.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Symmetrize defensively.
    let mut v = a.add(&a.transpose())?.scale(0.5);
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;

    // Sort eigenpairs in descending order of eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let eigenvectors = v.permute_cols(&order)?;

    Ok(SymEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Householder reduction of the symmetric matrix stored in `v` to
/// tridiagonal form. On exit `d` holds the diagonal, `e` the sub-diagonal
/// (with `e[0] == 0`), and `v` the accumulated orthogonal transformation.
fn tred2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = v[(n - 1, j)];
    }

    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        } else {
            // Generate Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }

            // Apply the similarity transformation to the remaining columns:
            // e[0..i] becomes the product of the symmetric matrix (stored in
            // the lower triangle of v) with the Householder vector d. Swept
            // row-wise — row k contributes its below-diagonal entries to
            // both e[k] (dot with d) and e[j], j < k (scatter) — in the same
            // per-element order as the column-walking EISPACK loop, so the
            // results match it bitwise.
            for j in 0..i {
                v[(j, i)] = d[j];
            }
            for k in 0..i {
                let dk = d[k];
                let mut s = 0.0;
                let row = &v.row(k)[..=k];
                for (j, &vkj) in row[..k].iter().enumerate() {
                    s += vkj * d[j];
                    e[j] += vkj * dk;
                }
                e[k] = s + row[k] * dk;
            }
            let mut f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            // Rank-2 update A ← A − d·eᵀ − e·dᵀ on the lower triangle,
            // row-wise; each element is touched exactly once, so the row
            // panels split across the worker pool without changing the
            // arithmetic.
            {
                let cols = v.cols();
                let d_ro: &[f64] = d;
                let e_ro: &[f64] = e;
                let threads = pass_threads(i * i / 2);
                ivmf_par::par_row_panels(
                    &mut v.as_mut_slice()[..i * cols],
                    cols,
                    threads,
                    |first_row, panel| {
                        for (r, row) in panel.chunks_mut(cols).enumerate() {
                            let k = first_row + r;
                            let (ek, dk) = (e_ro[k], d_ro[k]);
                            for (j, x) in row[..=k].iter_mut().enumerate() {
                                *x -= d_ro[j] * ek + e_ro[j] * dk;
                            }
                        }
                    },
                );
            }
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }

    // Accumulate transformations: for each stored Householder vector
    // (column i+1), project the leading block onto it and subtract the
    // rank-1 correction. The projection coefficients g[j] accumulate row by
    // row (k ascending per coefficient, matching the column walk bitwise)
    // and the element-wise rank-1 update splits its row panels across the
    // worker pool.
    let mut w = vec![0.0; n];
    let mut g = vec![0.0; n];
    for i in 0..(n - 1) {
        v[(n - 1, i)] = v[(i, i)];
        v[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                w[k] = v[(k, i + 1)];
                d[k] = w[k] / h;
            }
            for x in g[..=i].iter_mut() {
                *x = 0.0;
            }
            for (k, &wk) in w[..=i].iter().enumerate() {
                for (x, &vkj) in g[..=i].iter_mut().zip(&v.row(k)[..=i]) {
                    *x += wk * vkj;
                }
            }
            let cols = v.cols();
            let d_ro: &[f64] = d;
            let g_ro: &[f64] = &g;
            let threads = pass_threads((i + 1) * (i + 1));
            ivmf_par::par_row_panels(
                &mut v.as_mut_slice()[..(i + 1) * cols],
                cols,
                threads,
                |first_row, panel| {
                    for (r, row) in panel.chunks_mut(cols).enumerate() {
                        let dk = d_ro[first_row + r];
                        for (x, &gj) in row[..=i].iter_mut().zip(&g_ro[..=i]) {
                            *x -= gj * dk;
                        }
                    }
                },
            );
        }
        for k in 0..=i {
            v[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[(n - 1, j)];
        v[(n - 1, j)] = 0.0;
    }
    v[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Applies one QL iteration's recorded Givens rotations to the eigenvector
/// matrix: `rotations[idx]` rotates the column pair `(i, i+1)` with
/// `i = m − 1 − idx` (the order the scalar recurrence produced them).
///
/// The batch is applied to one cache-resident block of rows at a time,
/// with the rotation loop *outside* the row loop: successive rotations on
/// one row form a serial dependency chain (rotation `i` reads what rotation
/// `i+1` wrote), so iterating rows innermost keeps the updates independent
/// and superscalar while the block's column window stays L1-resident —
/// unlike the textbook full-height column walk, which streams a stride-`n`
/// pair through the whole matrix per rotation. Per element the rotations
/// still apply in the recorded order, so the result is bitwise identical to
/// the column walk, for any row-panel split across the worker pool.
fn apply_rotations(v: &mut Matrix, m: usize, rotations: &[(f64, f64)]) {
    /// Rows rotated together: enough independent updates per rotation to
    /// saturate the FP units, few enough that the block's active column
    /// pair stays in L1.
    const ROTATION_ROW_BLOCK: usize = 32;
    if rotations.is_empty() {
        return;
    }
    let cols = v.cols();
    let threads = pass_threads(v.rows() * rotations.len());
    ivmf_par::par_row_panels(v.as_mut_slice(), cols, threads, |_, panel| {
        for block in panel.chunks_mut(ROTATION_ROW_BLOCK * cols) {
            let rows = block.len() / cols;
            for (idx, &(c, s)) in rotations.iter().enumerate() {
                let i = m - 1 - idx;
                for r in 0..rows {
                    let base = r * cols + i;
                    let (lo, hi) = (block[base], block[base + 1]);
                    block[base + 1] = s * lo + c * hi;
                    block[base] = c * lo - s * hi;
                }
            }
        }
    });
}

/// Implicit QL algorithm with shifts applied to the tridiagonal matrix
/// `(d, e)`, accumulating rotations into `v`.
fn tql2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    let mut rotations: Vec<(f64, f64)> = Vec::with_capacity(n);
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0;
    let mut tst1: f64 = 0.0;
    let eps = f64::EPSILON;

    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m == n {
            m = n - 1;
        }

        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                if iter > MAX_QL_ITERATIONS {
                    return Err(LinalgError::NoConvergence {
                        algorithm: "tql2",
                        iterations: MAX_QL_ITERATIONS,
                    });
                }

                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = hypot(p, 1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;

                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                rotations.clear();
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    h = c * p;
                    r = hypot(p, e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    rotations.push((c, s));
                }
                // Accumulate the recorded rotations into the eigenvector
                // matrix in one row-wise batch.
                apply_rotations(v, m, &rotations);
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;

                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

#[inline]
fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::symmetric_matrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_orthonormal(q: &Matrix, tol: f64) {
        let qtq = q.gram();
        assert!(
            qtq.approx_eq(&Matrix::identity(q.cols()), tol),
            "columns are not orthonormal"
        );
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_of_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for eigenvalue 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.eigenvectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_random_symmetric_matrices() {
        let mut rng = SmallRng::seed_from_u64(11);
        for &n in &[1usize, 2, 3, 5, 10, 25, 60] {
            let a = symmetric_matrix(&mut rng, n, -5.0, 5.0);
            let e = sym_eigen(&a).unwrap();
            let rec = e.reconstruct();
            let err = a.sub(&rec).unwrap().frobenius_norm() / a.frobenius_norm().max(1.0);
            assert!(err < 1e-9, "reconstruction error {err} for n={n}");
            assert_orthonormal(&e.eigenvectors, 1e-9);
        }
    }

    #[test]
    fn eigenvalues_are_sorted_descending() {
        let mut rng = SmallRng::seed_from_u64(12);
        let a = symmetric_matrix(&mut rng, 20, -1.0, 1.0);
        let e = sym_eigen(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigen_satisfies_definition() {
        let mut rng = SmallRng::seed_from_u64(13);
        let a = symmetric_matrix(&mut rng, 15, -2.0, 2.0);
        let e = sym_eigen(&a).unwrap();
        for j in 0..15 {
            let v = e.eigenvectors.col(j);
            let av = a.matvec(&v).unwrap();
            for i in 0..15 {
                assert!(
                    (av[i] - e.eigenvalues[j] * v[i]).abs() < 1e-8,
                    "A v != lambda v at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn eigen_of_positive_semidefinite_gram_is_nonnegative() {
        let mut rng = SmallRng::seed_from_u64(14);
        let m = crate::random::uniform_matrix(&mut rng, 12, 6, -1.0, 1.0);
        let g = m.gram();
        let e = sym_eigen(&g).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-9, "gram eigenvalue should be >= 0, got {l}");
        }
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            sym_eigen(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            sym_eigen(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn handles_1x1_matrix() {
        let e = sym_eigen(&Matrix::from_rows(&[vec![7.5]])).unwrap();
        assert_eq!(e.eigenvalues, vec![7.5]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn handles_zero_matrix() {
        let e = sym_eigen(&Matrix::zeros(4, 4)).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l.abs() < 1e-15));
        assert_orthonormal(&e.eigenvectors, 1e-12);
    }

    #[test]
    fn parallel_eigensolver_is_bitwise_deterministic_across_thread_counts() {
        // n chosen so the gated element-wise passes (rank-2 update,
        // accumulation update, batched rotations) actually cross
        // EIGEN_PAR_MIN_WORK and engage the worker pool. The contract
        // matches the packed matmul kernels: panel splits never change the
        // arithmetic, so IVMF_THREADS=1 and IVMF_THREADS=4 agree bitwise.
        let n = 260;
        assert!(n * n / 2 >= EIGEN_PAR_MIN_WORK);
        let mut rng = SmallRng::seed_from_u64(77);
        let a = symmetric_matrix(&mut rng, n, -3.0, 3.0);
        let _guard = crate::test_env::THREADS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
        let single = sym_eigen(&a).unwrap();
        std::env::set_var(ivmf_par::THREADS_ENV, "4");
        let quad = sym_eigen(&a).unwrap();
        match prev {
            Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
            None => std::env::remove_var(ivmf_par::THREADS_ENV),
        }
        assert_eq!(single.eigenvalues, quad.eigenvalues);
        assert_eq!(
            single.eigenvectors.as_slice(),
            quad.eigenvectors.as_slice(),
            "eigenvectors must agree bitwise across thread counts"
        );
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        // 2 * I has eigenvalue 2 with multiplicity 3.
        let e = sym_eigen(&Matrix::identity(3).scale(2.0)).unwrap();
        for &l in &e.eigenvalues {
            assert!((l - 2.0).abs() < 1e-12);
        }
        assert_orthonormal(&e.eigenvectors, 1e-12);
    }
}
