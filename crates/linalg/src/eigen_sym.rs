//! Symmetric eigendecomposition.
//!
//! The decomposition is computed with the classic two-phase dense approach:
//!
//! 1. **Householder tridiagonalization** (`tred2`): the symmetric input `A`
//!    is reduced to a tridiagonal matrix `T = Qᵀ A Q` while accumulating the
//!    orthogonal transformation `Q`.
//! 2. **Implicit QL with Wilkinson shifts** (`tql2`): the tridiagonal matrix
//!    is iteratively diagonalized, rotations being applied to `Q` so its
//!    columns become the eigenvectors of `A`.
//!
//! This is the standard EISPACK/`tred2`+`tql2` pair; it is `O(n³)` with a
//! small constant, numerically robust for the symmetric (Gram) matrices the
//! interval SVD algorithms produce, and has no external dependencies.
//!
//! ## Memory layout and parallelism
//!
//! The classic EISPACK loops walk *columns* of the accumulated
//! transformation — a stride-`n` access pattern that thrashes the cache as
//! soon as the matrix outgrows L2. The `O(n³)` passes here are therefore
//! restructured **row-wise** (same per-element operations in the same
//! order, so the results match the textbook formulation bitwise):
//!
//! * `tred2`'s symmetric product, rank-2 update and transformation
//!   accumulation sweep contiguous rows of `v`,
//! * `tql2` records each QL iteration's Givens rotations `(c, s)` first
//!   and then applies the whole batch row by row, instead of dragging
//!   every rotation down a column pair.
//!
//! The purely element-wise passes (the rank-2 update, the accumulation
//! update and the batched rotation application) additionally split their
//! row panels across the `IVMF_THREADS` worker pool once a pass touches at
//! least [`EIGEN_PAR_MIN_WORK`] elements; per-element arithmetic does not
//! depend on the panel split, so results stay bitwise identical for every
//! thread count.

use crate::{LinalgError, Matrix, Result};

/// Maximum QL iterations per eigenvalue before giving up.
const MAX_QL_ITERATIONS: usize = 64;

/// Minimum number of touched matrix elements before an element-wise
/// eigensolver pass is split across the worker pool: below this the pass is
/// cheaper than spawning the scoped workers (the pool spawns per call).
pub const EIGEN_PAR_MIN_WORK: usize = 32 * 1024;

/// Worker count for one element-wise pass over `work` matrix elements.
fn pass_threads(work: usize) -> usize {
    if work >= EIGEN_PAR_MIN_WORK {
        ivmf_par::configured_threads()
    } else {
        1
    }
}

/// Result of a symmetric eigendecomposition `A = Q Λ Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, sorted in **descending** order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose `j`-th column is the eigenvector for `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl SymEigen {
    /// Reconstructs `Q Λ Qᵀ`; useful for testing the factorization.
    ///
    /// `Q Λ` is formed by scaling the columns of `Q` directly
    /// ([`Matrix::scale_cols`], `O(n²)`) rather than materializing the
    /// diagonal matrix and paying an `O(n³)` product for it.
    pub fn reconstruct(&self) -> Matrix {
        let q = &self.eigenvectors;
        q.scale_cols(&self.eigenvalues)
            .and_then(|ql| ql.matmul_nt(q))
            .expect("shapes are consistent by construction")
    }
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input is **symmetrized** (`(A + Aᵀ)/2`) before factorization so
/// that tiny asymmetries caused by floating-point round-off in upstream
/// products (e.g. interval Gram matrices) do not disturb the algorithm.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] when `a` is not square.
/// * [`LinalgError::Empty`] when `a` has zero size.
/// * [`LinalgError::NoConvergence`] if the QL sweep fails to converge.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Symmetrize defensively.
    let mut v = a.add(&a.transpose())?.scale(0.5);
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;

    into_sorted_descending(d, v)
}

/// Packages a raw `(d, v)` eigensystem as a [`SymEigen`] sorted in
/// descending eigenvalue order. The sort is stable, so equal eigenvalues
/// keep their original relative column order.
fn into_sorted_descending(d: Vec<f64>, v: Matrix) -> Result<SymEigen> {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let eigenvectors = v.permute_cols(&order)?;
    Ok(SymEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` and sub-diagonal `sub` (`sub.len() == diag.len() - 1`; a zero
/// entry splits the matrix into independent blocks).
///
/// This is the shared QL backend: [`sym_eigen`] reaches it through a dense
/// Householder reduction, while the top-k Lanczos solver in
/// [`crate::eigen_topk`] produces its tridiagonal projection directly and
/// only needs the sweep plus the descending sort.
pub(crate) fn eigen_tridiagonal(diag: &[f64], sub: &[f64]) -> Result<SymEigen> {
    let p = diag.len();
    if p == 0 {
        return Err(LinalgError::Empty);
    }
    debug_assert_eq!(sub.len(), p - 1, "sub-diagonal must have length n - 1");
    let mut v = Matrix::identity(p);
    let mut d = diag.to_vec();
    // tql2 takes the sub-diagonal in e[1..] (it shifts it down itself).
    let mut e = vec![0.0; p];
    e[1..].copy_from_slice(sub);
    tql2(&mut v, &mut d, &mut e)?;
    into_sorted_descending(d, v)
}

/// Eigenvalues of the symmetric tridiagonal matrix `(diag, sub)` together
/// with the **last row** of its eigenvector matrix, both in descending
/// eigenvalue order.
///
/// `tql2` only ever touches its rotation target through column rotations,
/// so accumulating them into a single row seeded with the last identity
/// row reproduces row `p − 1` of [`eigen_tridiagonal`]'s eigenvector
/// matrix bitwise — at `O(p²)` instead of `O(p³)`. The Lanczos solver uses
/// this for its cheap convergence prefilter `|β · y[p−1, i]|`, paying for
/// full eigenvectors only once the prefilter passes.
pub(crate) fn eigen_tridiagonal_values(diag: &[f64], sub: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
    let p = diag.len();
    if p == 0 {
        return Err(LinalgError::Empty);
    }
    debug_assert_eq!(sub.len(), p - 1, "sub-diagonal must have length n - 1");
    let mut v = Matrix::from_fn(1, p, |_, j| if j == p - 1 { 1.0 } else { 0.0 });
    let mut d = diag.to_vec();
    let mut e = vec![0.0; p];
    e[1..].copy_from_slice(sub);
    tql2(&mut v, &mut d, &mut e)?;
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let last_row: Vec<f64> = order.iter().map(|&i| v[(0, i)]).collect();
    Ok((eigenvalues, last_row))
}

/// Eigenvectors of the symmetric tridiagonal `(diag, sub)` for the given
/// precomputed eigenvalues, by inverse iteration — `O(p)` per vector
/// instead of the `O(p³)` rotation accumulation of [`eigen_tridiagonal`].
///
/// Returns a `p × lambdas.len()` matrix whose column `i` is a unit
/// eigenvector for `lambdas[i]`. The caller is responsible for only
/// passing **well-separated** eigenvalues: inverse iteration converges to
/// the eigenvector nearest each shift, so clustered eigenvalues would
/// yield nearly-parallel columns (the top-k Lanczos extraction gates on
/// separation and falls back to the full accumulation otherwise, and its
/// explicit residual certification rejects any vector this produces that
/// is not an eigenvector to tolerance).
///
/// Deterministic by construction: fixed start vectors, a fixed two-solve
/// iteration, serial arithmetic.
pub(crate) fn tridiagonal_eigenvectors(
    diag: &[f64],
    sub: &[f64],
    lambdas: &[f64],
) -> Result<Matrix> {
    let p = diag.len();
    if p == 0 {
        return Err(LinalgError::Empty);
    }
    debug_assert_eq!(sub.len(), p - 1, "sub-diagonal must have length n - 1");
    let t_scale = diag
        .iter()
        .chain(sub.iter())
        .fold(0.0_f64, |m, &x| m.max(x.abs()))
        .max(f64::MIN_POSITIVE);
    let mut out = Matrix::zeros(p, lambdas.len());
    let mut x = vec![0.0; p];
    for (col, &lambda) in lambdas.iter().enumerate() {
        // Fixed full-support start vector, varied per column so a shift
        // whose eigenvector happens to be orthogonal to one start still
        // sees a component in another.
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = 1.0 + 0.5 * (((j * 7 + col * 13 + 3) % 11) as f64 - 5.0) / 5.0;
        }
        // Two solves of `(T − λI) y = x` are enough: the first amplifies
        // the target component by ~1/(eps·‖T‖), the second washes out any
        // unlucky start. Normalize between solves to avoid overflow.
        for _ in 0..2 {
            solve_shifted_tridiagonal(diag, sub, lambda, t_scale, &mut x);
            let m = x.iter().fold(0.0_f64, |s, &v| s + v * v).sqrt();
            if m == 0.0 {
                // Solve annihilated the vector (cannot happen with the
                // pivot floor, but stay defensive): restart from ones.
                x.iter_mut().for_each(|v| *v = 1.0);
                continue;
            }
            x.iter_mut().for_each(|v| *v /= m);
        }
        for (j, &xj) in x.iter().enumerate() {
            out[(j, col)] = xj;
        }
    }
    Ok(out)
}

/// Floors a pivot away from zero: inverse iteration wants an exact
/// eigenvalue shift to *amplify*, not divide by zero.
#[inline]
fn floored(pivot: f64, floor: f64) -> f64 {
    if pivot.abs() >= floor {
        pivot
    } else if pivot < 0.0 {
        -floor
    } else {
        floor
    }
}

/// Solves `(T − λI) y = x` in place for a symmetric tridiagonal `T`, by
/// Gaussian elimination with partial pivoting (the one-superdiagonal
/// fill-in variant LAPACK's `dstein` uses). Pivots smaller than
/// `eps · t_scale` are floored to that magnitude.
///
/// Row `i` is carried through elimination as `(d, s1)` — its diagonal and
/// first-superdiagonal entries; a second superdiagonal (`sup2`) only fills
/// in when a pivot swap pulls the longer row `i + 1` up.
fn solve_shifted_tridiagonal(diag: &[f64], sub: &[f64], lambda: f64, t_scale: f64, x: &mut [f64]) {
    let p = diag.len();
    let floor = f64::EPSILON * t_scale;
    if p == 1 {
        x[0] /= floored(diag[0] - lambda, floor);
        return;
    }
    let mut main = vec![0.0; p];
    let mut sup1 = vec![0.0; p];
    let mut sup2 = vec![0.0; p];
    let mut cur_d = diag[0] - lambda;
    let mut cur_s1 = sub[0];
    for i in 0..p - 1 {
        let below = sub[i];
        let mut nxt_d = diag[i + 1] - lambda;
        let mut nxt_s1 = if i + 1 < p - 1 { sub[i + 1] } else { 0.0 };
        let to_eliminate;
        if below.abs() > cur_d.abs() {
            // Swap rows i and i+1: the pristine lower row becomes the
            // pivot row (it extends one column further right), the carried
            // row drops down to be eliminated.
            main[i] = below;
            sup1[i] = nxt_d;
            sup2[i] = nxt_s1;
            to_eliminate = cur_d;
            nxt_d = cur_s1;
            nxt_s1 = 0.0;
            x.swap(i, i + 1);
        } else {
            main[i] = cur_d;
            sup1[i] = cur_s1;
            to_eliminate = below;
        }
        main[i] = floored(main[i], floor);
        let m = to_eliminate / main[i];
        nxt_d -= m * sup1[i];
        nxt_s1 -= m * sup2[i];
        x[i + 1] -= m * x[i];
        cur_d = nxt_d;
        cur_s1 = nxt_s1;
    }
    main[p - 1] = floored(cur_d, floor);
    // Back substitution over the three-band upper triangle.
    x[p - 1] /= main[p - 1];
    if p >= 2 {
        x[p - 2] = (x[p - 2] - sup1[p - 2] * x[p - 1]) / main[p - 2];
    }
    for i in (0..p - 2).rev() {
        x[i] = (x[i] - sup1[i] * x[i + 1] - sup2[i] * x[i + 2]) / main[i];
    }
}

/// Householder reduction of the symmetric matrix stored in `v` to
/// tridiagonal form. On exit `d` holds the diagonal, `e` the sub-diagonal
/// (with `e[0] == 0`), and `v` the accumulated orthogonal transformation.
fn tred2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = v[(n - 1, j)];
    }

    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        } else {
            // Generate Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }

            // Apply the similarity transformation to the remaining columns:
            // e[0..i] becomes the product of the symmetric matrix (stored in
            // the lower triangle of v) with the Householder vector d. Swept
            // row-wise — row k contributes its below-diagonal entries to
            // both e[k] (dot with d) and e[j], j < k (scatter) — in the same
            // per-element order as the column-walking EISPACK loop, so the
            // results match it bitwise.
            for j in 0..i {
                v[(j, i)] = d[j];
            }
            for k in 0..i {
                let dk = d[k];
                let mut s = 0.0;
                let row = &v.row(k)[..=k];
                for (j, &vkj) in row[..k].iter().enumerate() {
                    s += vkj * d[j];
                    e[j] += vkj * dk;
                }
                e[k] = s + row[k] * dk;
            }
            let mut f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            // Rank-2 update A ← A − d·eᵀ − e·dᵀ on the lower triangle,
            // row-wise; each element is touched exactly once, so the row
            // panels split across the worker pool without changing the
            // arithmetic.
            {
                let cols = v.cols();
                let d_ro: &[f64] = d;
                let e_ro: &[f64] = e;
                let threads = pass_threads(i * i / 2);
                ivmf_par::par_row_panels(
                    &mut v.as_mut_slice()[..i * cols],
                    cols,
                    threads,
                    |first_row, panel| {
                        for (r, row) in panel.chunks_mut(cols).enumerate() {
                            let k = first_row + r;
                            let (ek, dk) = (e_ro[k], d_ro[k]);
                            for (j, x) in row[..=k].iter_mut().enumerate() {
                                *x -= d_ro[j] * ek + e_ro[j] * dk;
                            }
                        }
                    },
                );
            }
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }

    // Accumulate transformations: for each stored Householder vector
    // (column i+1), project the leading block onto it and subtract the
    // rank-1 correction. The projection coefficients g[j] accumulate row by
    // row (k ascending per coefficient, matching the column walk bitwise)
    // and the element-wise rank-1 update splits its row panels across the
    // worker pool.
    let mut w = vec![0.0; n];
    let mut g = vec![0.0; n];
    for i in 0..(n - 1) {
        v[(n - 1, i)] = v[(i, i)];
        v[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                w[k] = v[(k, i + 1)];
                d[k] = w[k] / h;
            }
            for x in g[..=i].iter_mut() {
                *x = 0.0;
            }
            for (k, &wk) in w[..=i].iter().enumerate() {
                for (x, &vkj) in g[..=i].iter_mut().zip(&v.row(k)[..=i]) {
                    *x += wk * vkj;
                }
            }
            let cols = v.cols();
            let d_ro: &[f64] = d;
            let g_ro: &[f64] = &g;
            let threads = pass_threads((i + 1) * (i + 1));
            ivmf_par::par_row_panels(
                &mut v.as_mut_slice()[..(i + 1) * cols],
                cols,
                threads,
                |first_row, panel| {
                    for (r, row) in panel.chunks_mut(cols).enumerate() {
                        let dk = d_ro[first_row + r];
                        for (x, &gj) in row[..=i].iter_mut().zip(&g_ro[..=i]) {
                            *x -= gj * dk;
                        }
                    }
                },
            );
        }
        for k in 0..=i {
            v[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[(n - 1, j)];
        v[(n - 1, j)] = 0.0;
    }
    v[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Applies one QL iteration's recorded Givens rotations to the eigenvector
/// matrix: `rotations[idx]` rotates the column pair `(i, i+1)` with
/// `i = m − 1 − idx` (the order the scalar recurrence produced them).
///
/// The batch is applied to one cache-resident block of rows at a time,
/// with the rotation loop *outside* the row loop: successive rotations on
/// one row form a serial dependency chain (rotation `i` reads what rotation
/// `i+1` wrote), so iterating rows innermost keeps the updates independent
/// and superscalar while the block's column window stays L1-resident —
/// unlike the textbook full-height column walk, which streams a stride-`n`
/// pair through the whole matrix per rotation. Per element the rotations
/// still apply in the recorded order, so the result is bitwise identical to
/// the column walk, for any row-panel split across the worker pool.
fn apply_rotations(v: &mut Matrix, m: usize, rotations: &[(f64, f64)]) {
    /// Rows rotated together: enough independent updates per rotation to
    /// saturate the FP units, few enough that the block's active column
    /// pair stays in L1.
    const ROTATION_ROW_BLOCK: usize = 32;
    if rotations.is_empty() {
        return;
    }
    let cols = v.cols();
    let threads = pass_threads(v.rows() * rotations.len());
    let rotate_blocks = |panel: &mut [f64]| {
        for block in panel.chunks_mut(ROTATION_ROW_BLOCK * cols) {
            let rows = block.len() / cols;
            for (idx, &(c, s)) in rotations.iter().enumerate() {
                let i = m - 1 - idx;
                for r in 0..rows {
                    let base = r * cols + i;
                    let (lo, hi) = (block[base], block[base + 1]);
                    block[base + 1] = s * lo + c * hi;
                    block[base] = c * lo - s * hi;
                }
            }
        }
    };
    if threads == 1 {
        // Inline single-panel path: tql2 calls this once per QL iteration
        // (hundreds of times for the Lanczos prefilter's 1×p target), so
        // skipping the worker-pool dispatch is a real win. Identical block
        // walk, so the result is bitwise the same as the pooled path.
        rotate_blocks(v.as_mut_slice());
        return;
    }
    ivmf_par::par_row_panels(v.as_mut_slice(), cols, threads, |_, panel| {
        rotate_blocks(panel)
    });
}

/// Implicit QL algorithm with shifts applied to the tridiagonal matrix
/// `(d, e)`, accumulating rotations into `v`.
fn tql2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    let mut rotations: Vec<(f64, f64)> = Vec::with_capacity(n);
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0;
    let mut tst1: f64 = 0.0;
    let eps = f64::EPSILON;

    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m == n {
            m = n - 1;
        }

        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                if iter > MAX_QL_ITERATIONS {
                    return Err(LinalgError::NoConvergence {
                        algorithm: "tql2",
                        iterations: MAX_QL_ITERATIONS,
                    });
                }

                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = hypot(p, 1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;

                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                rotations.clear();
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    h = c * p;
                    r = hypot(p, e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    rotations.push((c, s));
                }
                // Accumulate the recorded rotations into the eigenvector
                // matrix in one row-wise batch.
                apply_rotations(v, m, &rotations);
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;

                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

/// `√(a² + b²)` for the QL shift and rotation magnitudes.
///
/// The naive form is exact to a couple of ulps and compiles to two
/// multiplies and a hardware square root; the libm `hypot` it replaces is
/// an out-of-line call that dominated the whole tridiagonal sweep (it runs
/// once per recorded rotation — `O(p²)` times per solve). Inputs whose
/// squares could overflow or fully underflow still take the libm path, so
/// the result stays finite and nonzero exactly when `hypot`'s would be.
#[inline]
fn hypot(a: f64, b: f64) -> f64 {
    const SAFE_MAX: f64 = 1e150;
    const SAFE_MIN: f64 = 1e-150;
    let (aa, ab) = (a.abs(), b.abs());
    let big = aa.max(ab);
    if big < SAFE_MAX && big > SAFE_MIN {
        (a * a + b * b).sqrt()
    } else {
        a.hypot(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::symmetric_matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_orthonormal(q: &Matrix, tol: f64) {
        let qtq = q.gram();
        assert!(
            qtq.approx_eq(&Matrix::identity(q.cols()), tol),
            "columns are not orthonormal"
        );
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_of_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for eigenvalue 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.eigenvectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_random_symmetric_matrices() {
        let mut rng = SmallRng::seed_from_u64(11);
        for &n in &[1usize, 2, 3, 5, 10, 25, 60] {
            let a = symmetric_matrix(&mut rng, n, -5.0, 5.0);
            let e = sym_eigen(&a).unwrap();
            let rec = e.reconstruct();
            let err = a.sub(&rec).unwrap().frobenius_norm() / a.frobenius_norm().max(1.0);
            assert!(err < 1e-9, "reconstruction error {err} for n={n}");
            assert_orthonormal(&e.eigenvectors, 1e-9);
        }
    }

    #[test]
    fn eigenvalues_are_sorted_descending() {
        let mut rng = SmallRng::seed_from_u64(12);
        let a = symmetric_matrix(&mut rng, 20, -1.0, 1.0);
        let e = sym_eigen(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigen_satisfies_definition() {
        let mut rng = SmallRng::seed_from_u64(13);
        let a = symmetric_matrix(&mut rng, 15, -2.0, 2.0);
        let e = sym_eigen(&a).unwrap();
        for j in 0..15 {
            let v = e.eigenvectors.col(j);
            let av = a.matvec(&v).unwrap();
            for i in 0..15 {
                assert!(
                    (av[i] - e.eigenvalues[j] * v[i]).abs() < 1e-8,
                    "A v != lambda v at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn eigen_of_positive_semidefinite_gram_is_nonnegative() {
        let mut rng = SmallRng::seed_from_u64(14);
        let m = crate::random::uniform_matrix(&mut rng, 12, 6, -1.0, 1.0);
        let g = m.gram();
        let e = sym_eigen(&g).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-9, "gram eigenvalue should be >= 0, got {l}");
        }
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            sym_eigen(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            sym_eigen(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn handles_1x1_matrix() {
        let e = sym_eigen(&Matrix::from_rows(&[vec![7.5]])).unwrap();
        assert_eq!(e.eigenvalues, vec![7.5]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn handles_zero_matrix() {
        let e = sym_eigen(&Matrix::zeros(4, 4)).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l.abs() < 1e-15));
        assert_orthonormal(&e.eigenvectors, 1e-12);
    }

    #[test]
    fn parallel_eigensolver_is_bitwise_deterministic_across_thread_counts() {
        // n chosen so the gated element-wise passes (rank-2 update,
        // accumulation update, batched rotations) actually cross
        // EIGEN_PAR_MIN_WORK and engage the worker pool. The contract
        // matches the packed matmul kernels: panel splits never change the
        // arithmetic, so IVMF_THREADS=1 and IVMF_THREADS=4 agree bitwise.
        let n = 260;
        assert!(n * n / 2 >= EIGEN_PAR_MIN_WORK);
        let mut rng = SmallRng::seed_from_u64(77);
        let a = symmetric_matrix(&mut rng, n, -3.0, 3.0);
        let _guard = crate::test_env::THREADS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
        let single = sym_eigen(&a).unwrap();
        std::env::set_var(ivmf_par::THREADS_ENV, "4");
        let quad = sym_eigen(&a).unwrap();
        match prev {
            Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
            None => std::env::remove_var(ivmf_par::THREADS_ENV),
        }
        assert_eq!(single.eigenvalues, quad.eigenvalues);
        assert_eq!(
            single.eigenvectors.as_slice(),
            quad.eigenvectors.as_slice(),
            "eigenvectors must agree bitwise across thread counts"
        );
    }

    #[test]
    fn tridiagonal_backend_matches_dense_solver() {
        // Compare the direct (diag, sub) entry point against sym_eigen on
        // the equivalent dense tridiagonal matrix.
        let diag = [2.0, -1.0, 0.5, 3.0, 1.0];
        let sub = [0.7, 0.0, -0.4, 1.2]; // a zero entry splits into blocks
        let n = diag.len();
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                diag[i]
            } else if j + 1 == i || i + 1 == j {
                sub[i.min(j)]
            } else {
                0.0
            }
        });
        let direct = eigen_tridiagonal(&diag, &sub).unwrap();
        let via_dense = sym_eigen(&dense).unwrap();
        for (a, b) in direct.eigenvalues.iter().zip(&via_dense.eigenvalues) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let rec = direct.reconstruct();
        assert!(rec.approx_eq(&dense, 1e-12), "QΛQᵀ must rebuild T");
        assert_orthonormal(&direct.eigenvectors, 1e-12);
    }

    #[test]
    fn tridiagonal_values_backend_matches_full_backend_bitwise() {
        // The single-row rotation target must reproduce the eigenvalues
        // and the eigenvector last row of the full backend bit for bit —
        // the Lanczos prefilter depends on the decisions being identical.
        let mut rng = SmallRng::seed_from_u64(21);
        for &p in &[1usize, 2, 5, 17, 48] {
            let diag: Vec<f64> = (0..p).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let sub: Vec<f64> = (0..p.saturating_sub(1))
                .map(|i| {
                    if i % 5 == 3 {
                        0.0
                    } else {
                        rng.gen_range(-2.0..2.0)
                    }
                })
                .collect();
            let full = eigen_tridiagonal(&diag, &sub).unwrap();
            let (vals, last_row) = eigen_tridiagonal_values(&diag, &sub).unwrap();
            assert_eq!(vals, full.eigenvalues, "p={p}: eigenvalues differ");
            let full_last: Vec<f64> = (0..p).map(|j| full.eigenvectors[(p - 1, j)]).collect();
            assert_eq!(last_row, full_last, "p={p}: last row differs");
        }
        assert!(matches!(
            eigen_tridiagonal_values(&[], &[]),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn inverse_iteration_matches_full_backend_on_separated_spectra() {
        // The inverse-iteration path only runs on well-separated leading
        // eigenvalues; check it against the rotation-accumulating backend
        // on random tridiagonals whose leading gaps are forced open.
        let mut rng = SmallRng::seed_from_u64(33);
        for &(p, k) in &[(1usize, 1usize), (2, 1), (8, 3), (31, 6), (64, 12)] {
            let diag: Vec<f64> = (0..p).map(|i| 2.0 * (p - i) as f64).collect();
            let sub: Vec<f64> = (0..p.saturating_sub(1))
                .map(|_| rng.gen_range(-0.3..0.3))
                .collect();
            let full = eigen_tridiagonal(&diag, &sub).unwrap();
            let vecs = tridiagonal_eigenvectors(&diag, &sub, &full.eigenvalues[..k]).unwrap();
            for col in 0..k {
                let lambda = full.eigenvalues[col];
                // Residual ‖T v − λ v‖ must certify the eigenpair.
                let mut res = 0.0f64;
                for i in 0..p {
                    let mut tv = diag[i] * vecs[(i, col)];
                    if i > 0 {
                        tv += sub[i - 1] * vecs[(i - 1, col)];
                    }
                    if i + 1 < p {
                        tv += sub[i] * vecs[(i + 1, col)];
                    }
                    res += (tv - lambda * vecs[(i, col)]).powi(2);
                }
                assert!(
                    res.sqrt() < 1e-10 * diag[0],
                    "p={p} col={col}: residual {}",
                    res.sqrt()
                );
                // And agree with the full backend up to sign.
                let dot: f64 = (0..p)
                    .map(|i| vecs[(i, col)] * full.eigenvectors[(i, col)])
                    .sum();
                assert!(
                    (dot.abs() - 1.0).abs() < 1e-9,
                    "p={p} col={col}: |<v, v_full>| = {}",
                    dot.abs()
                );
            }
        }
    }

    #[test]
    fn tridiagonal_backend_handles_1x1_and_rejects_empty() {
        let e = eigen_tridiagonal(&[4.5], &[]).unwrap();
        assert_eq!(e.eigenvalues, vec![4.5]);
        assert!(matches!(
            eigen_tridiagonal(&[], &[]),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        // 2 * I has eigenvalue 2 with multiplicity 3.
        let e = sym_eigen(&Matrix::identity(3).scale(2.0)).unwrap();
        for &l in &e.eigenvalues {
            assert!((l - 2.0).abs() < 1e-12);
        }
        assert_orthonormal(&e.eigenvectors, 1e-12);
    }
}
