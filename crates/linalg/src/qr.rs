//! Householder QR factorization.
//!
//! Used for orthonormalization checks and as an independent cross-check of
//! the SVD-based routines in tests; also exposed publicly because a
//! downstream user of a linear-algebra substrate legitimately expects it.

use crate::{LinalgError, Matrix, Result};

/// A thin QR factorization `A = Q R` with `Q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct Qr {
    /// `rows x k` matrix with orthonormal columns, `k = min(rows, cols)`.
    pub q: Matrix,
    /// `k x cols` upper-triangular matrix.
    pub r: Matrix,
}

/// Computes the thin QR factorization of `a` using Householder reflections.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for zero-sized input.
pub fn qr(a: &Matrix) -> Result<Qr> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut r = a.clone();
    // Accumulate Q as a product of Householder reflectors applied to I.
    let mut q_full = Matrix::identity(m);

    for j in 0..k {
        // Build the Householder vector for column j, rows j..m.
        let mut norm = 0.0;
        for i in j..m {
            norm += r[(i, j)] * r[(i, j)];
        }
        let norm = norm.sqrt();
        if norm <= f64::EPSILON {
            continue;
        }
        let alpha = if r[(j, j)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = r[(i, j)];
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|&x| x * x).sum();
        if vnorm2 <= f64::EPSILON {
            continue;
        }

        // Apply reflector to R: R -= 2 v (vᵀ R) / (vᵀ v) on rows j..m.
        for col in j..n {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * r[(i, col)];
            }
            let factor = 2.0 * dot / vnorm2;
            for i in j..m {
                r[(i, col)] -= factor * v[i - j];
            }
        }
        // Apply reflector to Q (from the right of the accumulated product):
        // Q -= (Q v) 2 vᵀ / (vᵀ v) on columns j..m.
        for row in 0..m {
            let mut dot = 0.0;
            for i in j..m {
                dot += q_full[(row, i)] * v[i - j];
            }
            let factor = 2.0 * dot / vnorm2;
            for i in j..m {
                q_full[(row, i)] -= factor * v[i - j];
            }
        }
    }

    // Thin factors.
    let q = q_full.take_cols(k);
    let r_thin = r.take_rows(k);
    Ok(Qr { q, r: r_thin })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::uniform_matrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check(a: &Matrix) {
        let f = qr(a).unwrap();
        let rec = f.q.matmul(&f.r).unwrap();
        assert!(
            rec.approx_eq(a, 1e-9 * a.frobenius_norm().max(1.0)),
            "QR does not reconstruct the input"
        );
        // Q has orthonormal columns.
        let qtq = f.q.gram();
        assert!(qtq.approx_eq(&Matrix::identity(f.q.cols()), 1e-9));
        // R is upper triangular.
        for i in 0..f.r.rows() {
            for j in 0..i.min(f.r.cols()) {
                assert!(f.r[(i, j)].abs() < 1e-9, "R is not upper triangular");
            }
        }
    }

    #[test]
    fn qr_of_square_matrix() {
        let mut rng = SmallRng::seed_from_u64(41);
        check(&uniform_matrix(&mut rng, 8, 8, -1.0, 1.0));
    }

    #[test]
    fn qr_of_tall_matrix() {
        let mut rng = SmallRng::seed_from_u64(42);
        check(&uniform_matrix(&mut rng, 12, 5, -1.0, 1.0));
    }

    #[test]
    fn qr_of_wide_matrix() {
        let mut rng = SmallRng::seed_from_u64(43);
        check(&uniform_matrix(&mut rng, 5, 12, -1.0, 1.0));
    }

    #[test]
    fn qr_of_identity() {
        // Householder sign conventions may negate columns; the factorization
        // itself must still be exact with unit-magnitude diagonal.
        check(&Matrix::identity(4));
        let f = qr(&Matrix::identity(4)).unwrap();
        for i in 0..4 {
            assert!((f.r[(i, i)].abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn qr_handles_rank_deficient_input() {
        // Two identical columns.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let f = qr(&a).unwrap();
        let rec = f.q.matmul(&f.r).unwrap();
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_rejects_empty() {
        assert!(qr(&Matrix::zeros(0, 0)).is_err());
    }
}
