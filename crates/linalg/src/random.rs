//! Random matrix constructors used by tests, property tests and workload
//! generators.

use rand::Rng;

use crate::Matrix;

/// A matrix with entries drawn uniformly from `[lo, hi)`.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// A matrix with i.i.d. standard normal entries (Box–Muller transform so we
/// only rely on the `rand` core API).
pub fn gaussian_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    mean: f64,
    std: f64,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A random symmetric matrix `(A + Aᵀ) / 2` with entries in `[lo, hi)`.
pub fn symmetric_matrix<R: Rng + ?Sized>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Matrix {
    let a = uniform_matrix(rng, n, n, lo, hi);
    a.add(&a.transpose()).expect("same shape").scale(0.5)
}

/// A random low-rank matrix `A = L * Rᵀ` where `L` is `rows x rank` and `R`
/// is `cols x rank`, with factor entries uniform in `[0, 1)`.
///
/// Useful for generating matrices with a controlled spectrum, e.g. rating
/// matrices that genuinely have low-rank latent structure.
pub fn low_rank_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    rank: usize,
) -> Matrix {
    let l = uniform_matrix(rng, rows, rank, 0.0, 1.0);
    let r = uniform_matrix(rng, cols, rank, 0.0, 1.0);
    l.matmul(&r.transpose()).expect("shapes agree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_entries_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = uniform_matrix(&mut rng, 10, 10, 2.0, 3.0);
        assert!(m.as_slice().iter().all(|&x| (2.0..3.0).contains(&x)));
    }

    #[test]
    fn gaussian_mean_roughly_correct() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = gaussian_matrix(&mut rng, 50, 50, 10.0, 1.0);
        let mean = m.sum() / 2500.0;
        assert!((mean - 10.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn symmetric_matrix_is_symmetric() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = symmetric_matrix(&mut rng, 8, -1.0, 1.0);
        assert!(m.approx_eq(&m.transpose(), 1e-15));
    }

    #[test]
    fn low_rank_matrix_has_bounded_rank() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = low_rank_matrix(&mut rng, 12, 9, 3);
        let f = crate::svd::svd(&m).unwrap();
        // Singular values beyond the requested rank must vanish.
        for &s in &f.singular_values[3..] {
            assert!(s < 1e-6, "unexpected singular value {s}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(
            uniform_matrix(&mut a, 4, 4, 0.0, 1.0),
            uniform_matrix(&mut b, 4, 4, 0.0, 1.0)
        );
    }
}
