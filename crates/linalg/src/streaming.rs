//! Row-sharded storage and chunk-realigned streaming kernels.
//!
//! Every `O(nm²)` product in this workspace — the Gram matrices behind
//! ISVD2–4, the cross products of the exact interval Gram, the factor
//! recovery products — is algebraically a **sum over row blocks**:
//! `AᵀA = Σᵢ AᵢᵀAᵢ` for any partition of `A` into row blocks `Aᵢ`. That
//! makes the row dimension the natural seam for sharding (bounded peak
//! memory), out-of-core streaming (fold one shard at a time) and
//! incremental updates (new rows only *add* contributions).
//!
//! Floating-point addition is not associative, so naively folding per-shard
//! contributions would make results depend on where the shard boundaries
//! fall. The accumulators here avoid that by **re-aligning all arithmetic
//! to fixed global chunk boundaries** of [`STREAM_CHUNK_ROWS`] rows:
//! incoming blocks are buffered, full chunks (always starting at global row
//! indices `0, C, 2C, …`) are folded with the packed kernels, and the
//! remainder stays buffered until more rows arrive or the accumulator is
//! finished. Consequences:
//!
//! * the result is **bitwise identical for every shard layout** (one dense
//!   block, 1-row shards, anything in between) — the chunk sequence, and
//!   hence every intermediate rounding, is the same;
//! * it is bitwise identical for every `IVMF_THREADS` count — chunks are
//!   scheduled across the [`ivmf_par`] pool (several pending chunks run as
//!   parallel jobs, a lone chunk parallelizes inside the packed kernel),
//!   but the fold order is fixed and the kernels themselves are
//!   thread-count-deterministic;
//! * appending rows later and continuing the fold performs **exactly** the
//!   operation sequence of a cold recompute over the extended matrix, so
//!   incremental results are bitwise equal to recomputation (the
//!   decomposition pipeline's `append_rows` relies on this).
//!
//! For sources with at most [`STREAM_CHUNK_ROWS`] rows there is a single
//! chunk containing the whole matrix, so the streamed results coincide
//! bitwise with the one-shot kernels ([`Matrix::gram`], [`Matrix::matmul`])
//! on the same data.
//!
//! ## Two-level fold and distributed merge
//!
//! The Gram accumulators fold at **two levels**: chunk results fold
//! left-to-right into a *group* partial, and at every
//! [`MERGE_GROUP_CHUNKS`]-chunk boundary (= [`GROUP_ROWS`] rows) the group
//! folds into the *master* partial. [`GramAccumulator::finish`] combines
//! `master ⊕ (group ⊕ tail)` in that fixed order. For sources within one
//! group the two levels degenerate to the single flat fold, so results are
//! unchanged there; beyond one group the fold order is still a fixed
//! function of the global row index alone — every bitwise guarantee above
//! is preserved.
//!
//! The payoff is [`GramAccumulator::absorb_unit`]: a *unit* — the rows of
//! exactly one group (the final unit may be shorter) — can be folded by a
//! separate accumulator (another thread, another process, another machine)
//! and absorbed back in unit order, reproducing the single-accumulator
//! state **bit for bit**. The `ivmf-distrib` coordinator/worker fan-out is
//! built on this merge.

use crate::state_text::{
    bad_state, checked_len, parse_usize_line, read_f64_run, read_line, write_f64_run,
};
use crate::{LinalgError, Matrix, Result};
use std::io;

/// Number of rows per internal accumulation chunk. Part of the arithmetic
/// contract (chunk boundaries determine rounding order), so it is a fixed
/// constant rather than an environment knob — shard sizes and thread
/// counts are free to vary precisely because this is not.
pub const STREAM_CHUNK_ROWS: usize = 128;

/// Number of chunks per merge group: chunk partials fold into a group
/// partial, which folds into the master partial at every group boundary
/// (see the [module docs](self)). Like [`STREAM_CHUNK_ROWS`] this is part
/// of the arithmetic contract — group boundaries determine rounding order
/// — so it is a fixed constant, never a knob.
pub const MERGE_GROUP_CHUNKS: usize = 64;

/// Rows per merge group (`MERGE_GROUP_CHUNKS × STREAM_CHUNK_ROWS`): the
/// work-unit granularity of the distributed Gram fan-out.
pub const GROUP_ROWS: usize = MERGE_GROUP_CHUNKS * STREAM_CHUNK_ROWS;

/// A matrix presented as an ordered sequence of row blocks.
///
/// The common trait behind the dense [`Matrix`] (one block: itself), the
/// in-memory [`RowShardedMatrix`], and any lazy loader that materializes
/// one block at a time. Consumers — the streaming accumulators and the
/// decomposition pipeline — only ever fold blocks in order, so a source
/// never needs to hold more than one block in memory.
pub trait RowBlocks {
    /// Total number of rows across all blocks.
    fn rows(&self) -> usize;
    /// Number of columns (identical for every block).
    fn cols(&self) -> usize;
    /// `(rows, cols)` of the full (virtual) matrix.
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }
    /// Calls `f` once per row block, in row order.
    fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()>;
}

impl RowBlocks for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
        f(self)
    }
}

/// An ordered set of row-block shards forming one (virtual) matrix.
///
/// Shards may have any positive number of rows and need not be equally
/// sized; all share the same column count. Because every streaming kernel
/// re-aligns its arithmetic to global chunk boundaries, the shard layout
/// is *invisible* in results — it only bounds peak memory per block and
/// determines the granularity of [`RowShardedMatrix::append_shard`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowShardedMatrix {
    shards: Vec<Matrix>,
    rows: usize,
    cols: usize,
}

impl RowShardedMatrix {
    /// Builds a sharded matrix from explicit row blocks.
    ///
    /// Returns an error when the list is empty, any shard has zero rows,
    /// or the column counts disagree.
    pub fn from_shards(shards: Vec<Matrix>) -> Result<Self> {
        let Some(first) = shards.first() else {
            return Err(LinalgError::InvalidArgument(
                "a sharded matrix needs at least one shard".to_string(),
            ));
        };
        let cols = first.cols();
        let mut rows = 0;
        for (i, s) in shards.iter().enumerate() {
            if s.rows() == 0 {
                return Err(LinalgError::InvalidArgument(format!(
                    "shard {i} has zero rows"
                )));
            }
            if s.cols() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "shard {i} has {} columns, expected {cols}",
                    s.cols()
                )));
            }
            rows += s.rows();
        }
        Ok(RowShardedMatrix { shards, rows, cols })
    }

    /// Splits a dense matrix into shards of at most `shard_rows` rows
    /// (the last shard takes the remainder).
    pub fn from_matrix(m: &Matrix, shard_rows: usize) -> Result<Self> {
        if shard_rows == 0 {
            return Err(LinalgError::InvalidArgument(
                "shard_rows must be at least 1".to_string(),
            ));
        }
        if m.rows() == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot shard an empty matrix".to_string(),
            ));
        }
        let mut shards = Vec::new();
        let mut start = 0;
        while start < m.rows() {
            let end = (start + shard_rows).min(m.rows());
            let data = m.as_slice()[start * m.cols()..end * m.cols()].to_vec();
            shards.push(Matrix::from_vec(end - start, m.cols(), data)?);
            start = end;
        }
        RowShardedMatrix::from_shards(shards)
    }

    /// Appends a new row-block shard at the bottom.
    pub fn append_shard(&mut self, shard: Matrix) -> Result<()> {
        if shard.rows() == 0 {
            return Err(LinalgError::InvalidArgument(
                "appended shard has zero rows".to_string(),
            ));
        }
        if shard.cols() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "append_shard",
                lhs: (self.rows, self.cols),
                rhs: shard.shape(),
            });
        }
        self.rows += shard.rows();
        self.shards.push(shard);
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order.
    pub fn shards(&self) -> &[Matrix] {
        &self.shards
    }

    /// Materializes the dense matrix (row-order concatenation).
    pub fn to_dense(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for s in &self.shards {
            data.extend_from_slice(s.as_slice());
        }
        Matrix::from_vec(self.rows, self.cols, data).expect("shard shapes are validated")
    }
}

impl RowBlocks for RowShardedMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
        for s in &self.shards {
            f(s)?;
        }
        Ok(())
    }
}

/// Entry-wise in-place sum (shapes already validated by callers).
fn add_assign(acc: &mut Matrix, rhs: &Matrix) {
    for (a, &b) in acc.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
        *a += b;
    }
}

/// Upper bound on buffered full chunks: incoming blocks are consumed in
/// pieces of at most this many chunks, each piece drained before the next
/// is copied in. This caps every accumulator's transient buffer at
/// `PAR_FOLD_CHUNKS × STREAM_CHUNK_ROWS` rows — pushing a huge dense
/// block does *not* duplicate it in memory — while still handing
/// [`ivmf_par::par_map`] several chunks at a time to schedule. Purely a
/// memory/scheduling knob: chunk boundaries and fold order (and therefore
/// every bit of the results) are unaffected.
pub(crate) const PAR_FOLD_CHUNKS: usize = 8;

/// Row buffer that re-aligns arbitrary incoming blocks to the fixed global
/// chunk grid: rows accumulate in order, full [`STREAM_CHUNK_ROWS`]-row
/// chunks are handed out for folding, the tail stays buffered.
#[derive(Debug, Clone)]
struct PendingRows {
    cols: usize,
    rows: usize,
    data: Vec<f64>,
}

impl PendingRows {
    fn new(cols: usize) -> Self {
        PendingRows {
            cols,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Rows that fit before the buffer holds [`PAR_FOLD_CHUNKS`] full
    /// chunks. Strictly positive whenever the buffer's full chunks have
    /// been drained (the invariant every accumulator re-establishes after
    /// each piece), so the piece-wise push loops always make progress.
    fn capacity_rows(&self) -> usize {
        PAR_FOLD_CHUNKS * STREAM_CHUNK_ROWS - self.rows
    }

    /// Appends rows `start..start + n` of `block`.
    fn push_rows(&mut self, block: &Matrix, start: usize, n: usize) {
        self.data
            .extend_from_slice(&block.as_slice()[start * self.cols..(start + n) * self.cols]);
        self.rows += n;
    }

    fn full_chunks(&self) -> usize {
        self.rows / STREAM_CHUNK_ROWS
    }

    /// Copy of full chunk `i` (rows `i*C .. (i+1)*C` of the buffer). The
    /// backing buffer comes from the [`crate::pool`], so steady-state
    /// streaming recycles the same chunk-sized allocations instead of
    /// hitting the allocator once per chunk; the copied values are
    /// identical either way.
    fn chunk(&self, i: usize) -> Matrix {
        let len = STREAM_CHUNK_ROWS * self.cols;
        let mut buf = crate::pool::take_f64(len);
        buf.extend_from_slice(&self.data[i * len..(i + 1) * len]);
        Matrix::from_vec(STREAM_CHUNK_ROWS, self.cols, buf)
            .expect("chunk slicing preserves the shape")
    }

    fn drain_chunks(&mut self, n: usize) {
        self.data.drain(..n * STREAM_CHUNK_ROWS * self.cols);
        self.rows -= n * STREAM_CHUNK_ROWS;
    }

    /// The buffered tail (fewer than [`STREAM_CHUNK_ROWS`] rows), if any.
    fn remainder(&self) -> Option<Matrix> {
        if self.rows == 0 {
            return None;
        }
        Some(
            Matrix::from_vec(self.rows, self.cols, self.data.clone())
                .expect("buffer length is rows*cols by construction"),
        )
    }
}

/// Streaming accumulator for the Gram matrix `AᵀA` over a row-block
/// stream.
///
/// Push blocks in row order with [`GramAccumulator::push_block`]; read the
/// Gram of everything seen so far with [`GramAccumulator::finish`]
/// (non-consuming, so more rows can be appended afterwards — the
/// incremental-update path of the decomposition pipeline). See the
/// [module docs](self) for the bitwise guarantees.
#[derive(Debug, Clone)]
pub struct GramAccumulator {
    pending: PendingRows,
    /// Master partial: fold of the completed merge groups, in order.
    acc: Option<Matrix>,
    /// Group partial: fold of the chunks since the last group boundary.
    group: Option<Matrix>,
    rows_seen: usize,
}

impl GramAccumulator {
    /// An empty accumulator for a stream with `cols` columns.
    pub fn new(cols: usize) -> Self {
        GramAccumulator {
            pending: PendingRows::new(cols),
            acc: None,
            group: None,
            rows_seen: 0,
        }
    }

    /// Number of columns of the stream (and of the Gram output).
    pub fn cols(&self) -> usize {
        self.pending.cols
    }

    /// Total rows folded or buffered so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Feeds the next row block (row order across calls).
    pub fn push_block(&mut self, block: &Matrix) -> Result<()> {
        if block.cols() != self.pending.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "gram_accumulate",
                lhs: (self.rows_seen, self.pending.cols),
                rhs: block.shape(),
            });
        }
        // Consume the block in bounded pieces so the pending buffer never
        // exceeds PAR_FOLD_CHUNKS chunks (a huge block is folded, not
        // duplicated). Chunk boundaries and fold order are unchanged.
        let rows = block.rows();
        let mut start = 0;
        loop {
            let take = self.pending.capacity_rows().min(rows - start);
            self.pending.push_rows(block, start, take);
            start += take;
            self.rows_seen += take;
            self.drain_full_chunks();
            if start >= rows {
                break;
            }
        }
        Ok(())
    }

    fn drain_full_chunks(&mut self) {
        let full = self.pending.full_chunks();
        // `drain_chunks` runs only below, so the difference still counts
        // the chunks folded *before* this call — the global chunk index
        // the group-boundary check needs.
        let mut folded = (self.rows_seen - self.pending.rows) / STREAM_CHUNK_ROWS;
        if full == 1 {
            // A lone chunk parallelizes inside the SYRK kernel.
            let c = self.pending.chunk(0);
            let g = c.gram();
            crate::pool::recycle_f64(c.into_vec());
            self.fold(g, &mut folded);
        } else if full > 1 {
            // Several chunks: schedule them as jobs across the pool, each
            // running its kernel inline. Identical results either way —
            // the kernels are thread-count-deterministic and the fold
            // below is in chunk order.
            let pending = &self.pending;
            let grams = ivmf_par::par_map(full, ivmf_par::configured_threads(), |i| {
                let c = pending.chunk(i);
                let g = c.gram_impl(1);
                crate::pool::recycle_f64(c.into_vec());
                g
            });
            for g in grams {
                self.fold(g, &mut folded);
            }
        }
        self.pending.drain_chunks(full);
    }

    /// Folds one chunk result into the group partial, sealing the group
    /// into the master at every [`MERGE_GROUP_CHUNKS`] boundary.
    fn fold(&mut self, g: Matrix, folded_chunks: &mut usize) {
        match &mut self.group {
            None => self.group = Some(g),
            Some(a) => {
                add_assign(a, &g);
                crate::pool::recycle_f64(g.into_vec());
            }
        }
        *folded_chunks += 1;
        if *folded_chunks % MERGE_GROUP_CHUNKS == 0 {
            self.seal_group();
        }
    }

    /// Moves the completed group partial into the master fold.
    fn seal_group(&mut self) {
        if let Some(g) = self.group.take() {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => {
                    add_assign(a, &g);
                    crate::pool::recycle_f64(g.into_vec());
                }
            }
        }
    }

    /// The Gram matrix of every row seen so far. Non-consuming: the
    /// buffered tail is folded into a copy, so the accumulator keeps
    /// accepting blocks afterwards. Combination order is fixed:
    /// `master ⊕ (group ⊕ tail)`.
    pub fn finish(&self) -> Matrix {
        let mut tail = self.group.clone();
        if let Some(rem) = self.pending.remainder() {
            let g = rem.gram();
            match &mut tail {
                None => tail = Some(g),
                Some(t) => add_assign(t, &g),
            }
        }
        let mut acc = self.acc.clone();
        if let Some(t) = tail {
            match &mut acc {
                None => acc = Some(t),
                Some(a) => add_assign(a, &t),
            }
        }
        acc.unwrap_or_else(|| Matrix::zeros(self.pending.cols, self.pending.cols))
    }

    /// Absorbs the state of an accumulator that folded the *next* work
    /// unit of the same stream — at most [`GROUP_ROWS`] rows, starting at
    /// this accumulator's current row — reproducing bit for bit the state
    /// this accumulator would hold had it folded those rows itself (the
    /// distributed-merge contract; see the [module docs](self)).
    ///
    /// Requires `self` to sit exactly on a group boundary (no pending
    /// tail, no open group) and `other` to span at most one group, so only
    /// the final unit of a stream may be partial.
    pub fn absorb_unit(&mut self, other: GramAccumulator) -> Result<()> {
        if other.pending.cols != self.pending.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "absorb_unit",
                lhs: (self.rows_seen, self.pending.cols),
                rhs: (other.rows_seen, other.pending.cols),
            });
        }
        if self.pending.rows != 0 || self.group.is_some() || self.rows_seen % GROUP_ROWS != 0 {
            return Err(LinalgError::InvalidArgument(
                "absorb_unit target must sit on a merge-group boundary".to_string(),
            ));
        }
        if other.rows_seen > GROUP_ROWS {
            return Err(LinalgError::InvalidArgument(format!(
                "absorbed unit spans {} rows, more than one {GROUP_ROWS}-row merge group",
                other.rows_seen
            )));
        }
        // A ≤ GROUP_ROWS unit has at most one completed group (its `acc`),
        // which is exactly the next group of the combined stream.
        if let Some(g) = other.acc {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => add_assign(a, &g),
            }
        }
        self.group = other.group;
        self.pending = other.pending;
        self.rows_seen += other.rows_seen;
        Ok(())
    }

    /// Serializes the complete accumulator state — pending row buffer,
    /// partial fold and row count — as bit-exact state text (see
    /// [`crate::state_text`]). [`GramAccumulator::read_state`] restores an
    /// accumulator that continues the fold with exactly the operation
    /// sequence (and therefore exactly the bits) of the original.
    pub fn write_state(&self, w: &mut dyn io::Write) -> io::Result<()> {
        writeln!(
            w,
            "gram {} {} {} {} {}",
            self.pending.cols,
            self.rows_seen,
            self.pending.rows,
            self.acc.is_some() as u8,
            self.group.is_some() as u8
        )?;
        write_f64_run(w, &self.pending.data)?;
        if let Some(a) = &self.acc {
            write_f64_run(w, a.as_slice())?;
        }
        if let Some(g) = &self.group {
            write_f64_run(w, g.as_slice())?;
        }
        Ok(())
    }

    /// Restores an accumulator written by [`GramAccumulator::write_state`].
    /// Every structural invariant is revalidated — a corrupted or
    /// truncated stream yields an error, never a panic or a silently
    /// inconsistent accumulator.
    pub fn read_state(r: &mut dyn io::BufRead) -> io::Result<Self> {
        let header = read_line(r)?;
        let head = parse_state_header(&header, "gram", 5)?;
        let (cols, rows_seen, pending_rows, has_acc, has_group) =
            (head[0], head[1], head[2], head[3], head[4]);
        validate_fold_header(cols, rows_seen, pending_rows, has_acc, has_group)?;
        let data = read_f64_run(r, checked_len(pending_rows, cols)?)?;
        let acc = if has_acc == 1 {
            let vals = read_f64_run(r, checked_len(cols, cols)?)?;
            Some(Matrix::from_vec(cols, cols, vals).map_err(|e| bad_state(e.to_string()))?)
        } else {
            None
        };
        let group = if has_group == 1 {
            let vals = read_f64_run(r, checked_len(cols, cols)?)?;
            Some(Matrix::from_vec(cols, cols, vals).map_err(|e| bad_state(e.to_string()))?)
        } else {
            None
        };
        Ok(GramAccumulator {
            pending: PendingRows {
                cols,
                rows: pending_rows,
                data,
            },
            acc,
            group,
            rows_seen,
        })
    }
}

/// Parses a state header line: the expected tag followed by exactly
/// `fields` integers.
pub(crate) fn parse_state_header(line: &str, tag: &str, fields: usize) -> io::Result<Vec<usize>> {
    let rest = line
        .strip_prefix(tag)
        .filter(|r| r.starts_with(' '))
        .ok_or_else(|| bad_state(format!("expected {tag:?} state header, got {line:?}")))?;
    parse_usize_line(rest, fields)
}

/// Shared invariants of every chunk-realigned fold header: a non-empty
/// column count, a pending tail strictly below one chunk, folded rows on
/// a chunk boundary, a master partial present exactly when at least one
/// merge group has completed, and a group partial present exactly when
/// the folded chunk count sits off a group boundary. Violations mean the
/// state did not come from a healthy accumulator.
pub(crate) fn validate_fold_header(
    cols: usize,
    rows_seen: usize,
    pending_rows: usize,
    has_acc: usize,
    has_group: usize,
) -> io::Result<()> {
    if cols == 0 {
        return Err(bad_state("accumulator state has zero columns"));
    }
    if has_acc > 1 {
        return Err(bad_state(format!("malformed acc flag {has_acc}")));
    }
    if has_group > 1 {
        return Err(bad_state(format!("malformed group flag {has_group}")));
    }
    if pending_rows >= STREAM_CHUNK_ROWS || pending_rows > rows_seen {
        return Err(bad_state(format!(
            "pending tail of {pending_rows} rows is inconsistent with {rows_seen} rows seen"
        )));
    }
    let folded = rows_seen - pending_rows;
    if folded % STREAM_CHUNK_ROWS != 0 {
        return Err(bad_state(format!(
            "folded row count {folded} is not on a {STREAM_CHUNK_ROWS}-row chunk boundary"
        )));
    }
    let chunks = folded / STREAM_CHUNK_ROWS;
    if (has_acc == 1) != (chunks / MERGE_GROUP_CHUNKS > 0) {
        return Err(bad_state(format!(
            "acc flag {has_acc} contradicts {folded} folded rows"
        )));
    }
    if (has_group == 1) != (chunks % MERGE_GROUP_CHUNKS > 0) {
        return Err(bad_state(format!(
            "group flag {has_group} contradicts {folded} folded rows"
        )));
    }
    Ok(())
}

/// Streaming accumulator for the cross product `AᵀB` over a pair of
/// row-block streams fed in lockstep (the `loᵀ·hi` term of the exact
/// interval Gram). Same chunk re-alignment and bitwise guarantees as
/// [`GramAccumulator`].
#[derive(Debug, Clone)]
pub struct CrossGramAccumulator {
    pending_a: PendingRows,
    pending_b: PendingRows,
    /// Master partial: fold of the completed merge groups, in order.
    acc: Option<Matrix>,
    /// Group partial: fold of the chunks since the last group boundary.
    group: Option<Matrix>,
    rows_seen: usize,
}

impl CrossGramAccumulator {
    /// An empty accumulator for streams with `a_cols` / `b_cols` columns.
    pub fn new(a_cols: usize, b_cols: usize) -> Self {
        CrossGramAccumulator {
            pending_a: PendingRows::new(a_cols),
            pending_b: PendingRows::new(b_cols),
            acc: None,
            group: None,
            rows_seen: 0,
        }
    }

    /// Total rows folded or buffered so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Column count of the first stream (rows of the `AᵀB` output).
    pub fn a_cols(&self) -> usize {
        self.pending_a.cols
    }

    /// Column count of the second stream (columns of the `AᵀB` output).
    pub fn b_cols(&self) -> usize {
        self.pending_b.cols
    }

    /// Feeds the next row block of each stream; the blocks must cover the
    /// same rows (equal row counts).
    pub fn push_blocks(&mut self, a: &Matrix, b: &Matrix) -> Result<()> {
        if a.rows() != b.rows()
            || a.cols() != self.pending_a.cols
            || b.cols() != self.pending_b.cols
        {
            return Err(LinalgError::DimensionMismatch {
                op: "cross_gram_accumulate",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        // Same bounded piece-wise consumption as `GramAccumulator`, with
        // the two streams advanced in lockstep.
        let rows = a.rows();
        let mut start = 0;
        loop {
            let take = self.pending_a.capacity_rows().min(rows - start);
            self.pending_a.push_rows(a, start, take);
            self.pending_b.push_rows(b, start, take);
            start += take;
            self.rows_seen += take;
            self.drain_full_chunks()?;
            if start >= rows {
                break;
            }
        }
        Ok(())
    }

    fn drain_full_chunks(&mut self) -> Result<()> {
        let full = self.pending_a.full_chunks();
        let mut folded = (self.rows_seen - self.pending_a.rows) / STREAM_CHUNK_ROWS;
        if full == 1 {
            let ca = self.pending_a.chunk(0);
            let cb = self.pending_b.chunk(0);
            let p = ca.matmul_tn(&cb);
            crate::pool::recycle_f64(ca.into_vec());
            crate::pool::recycle_f64(cb.into_vec());
            self.fold(p?, &mut folded);
        } else if full > 1 {
            let (pa, pb) = (&self.pending_a, &self.pending_b);
            let products = ivmf_par::par_map(full, ivmf_par::configured_threads(), |i| {
                let ca = pa.chunk(i);
                let cb = pb.chunk(i);
                let p = ca.matmul_tn_impl(&cb, 1);
                crate::pool::recycle_f64(ca.into_vec());
                crate::pool::recycle_f64(cb.into_vec());
                p
            });
            for p in products {
                self.fold(p?, &mut folded);
            }
        }
        self.pending_a.drain_chunks(full);
        self.pending_b.drain_chunks(full);
        Ok(())
    }

    /// Chunk-into-group fold with group sealing, exactly as in
    /// [`GramAccumulator::fold`].
    fn fold(&mut self, p: Matrix, folded_chunks: &mut usize) {
        match &mut self.group {
            None => self.group = Some(p),
            Some(a) => {
                add_assign(a, &p);
                crate::pool::recycle_f64(p.into_vec());
            }
        }
        *folded_chunks += 1;
        if *folded_chunks % MERGE_GROUP_CHUNKS == 0 {
            self.seal_group();
        }
    }

    fn seal_group(&mut self) {
        if let Some(g) = self.group.take() {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => {
                    add_assign(a, &g);
                    crate::pool::recycle_f64(g.into_vec());
                }
            }
        }
    }

    /// The cross product `AᵀB` of every row pair seen so far
    /// (non-consuming, like [`GramAccumulator::finish`]; same
    /// `master ⊕ (group ⊕ tail)` order).
    pub fn finish(&self) -> Result<Matrix> {
        let mut tail = self.group.clone();
        if let (Some(ra), Some(rb)) = (self.pending_a.remainder(), self.pending_b.remainder()) {
            let p = ra.matmul_tn(&rb)?;
            match &mut tail {
                None => tail = Some(p),
                Some(t) => add_assign(t, &p),
            }
        }
        let mut acc = self.acc.clone();
        if let Some(t) = tail {
            match &mut acc {
                None => acc = Some(t),
                Some(a) => add_assign(a, &t),
            }
        }
        Ok(acc.unwrap_or_else(|| Matrix::zeros(self.pending_a.cols, self.pending_b.cols)))
    }

    /// Absorbs the state of an accumulator that folded the next
    /// ≤ [`GROUP_ROWS`]-row work unit of the same stream pair — the
    /// distributed-merge counterpart of [`GramAccumulator::absorb_unit`],
    /// with identical preconditions and the identical bitwise contract.
    pub fn absorb_unit(&mut self, other: CrossGramAccumulator) -> Result<()> {
        if other.pending_a.cols != self.pending_a.cols
            || other.pending_b.cols != self.pending_b.cols
        {
            return Err(LinalgError::DimensionMismatch {
                op: "absorb_unit",
                lhs: (self.pending_a.cols, self.pending_b.cols),
                rhs: (other.pending_a.cols, other.pending_b.cols),
            });
        }
        if self.pending_a.rows != 0 || self.group.is_some() || self.rows_seen % GROUP_ROWS != 0 {
            return Err(LinalgError::InvalidArgument(
                "absorb_unit target must sit on a merge-group boundary".to_string(),
            ));
        }
        if other.rows_seen > GROUP_ROWS {
            return Err(LinalgError::InvalidArgument(format!(
                "absorbed unit spans {} rows, more than one {GROUP_ROWS}-row merge group",
                other.rows_seen
            )));
        }
        if let Some(g) = other.acc {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => add_assign(a, &g),
            }
        }
        self.group = other.group;
        self.pending_a = other.pending_a;
        self.pending_b = other.pending_b;
        self.rows_seen += other.rows_seen;
        Ok(())
    }

    /// Serializes the complete accumulator state (both pending buffers,
    /// the partial fold and the row count) as bit-exact state text; the
    /// counterpart of [`GramAccumulator::write_state`].
    pub fn write_state(&self, w: &mut dyn io::Write) -> io::Result<()> {
        writeln!(
            w,
            "crossgram {} {} {} {} {} {}",
            self.pending_a.cols,
            self.pending_b.cols,
            self.rows_seen,
            self.pending_a.rows,
            self.acc.is_some() as u8,
            self.group.is_some() as u8
        )?;
        write_f64_run(w, &self.pending_a.data)?;
        write_f64_run(w, &self.pending_b.data)?;
        if let Some(a) = &self.acc {
            write_f64_run(w, a.as_slice())?;
        }
        if let Some(g) = &self.group {
            write_f64_run(w, g.as_slice())?;
        }
        Ok(())
    }

    /// Restores an accumulator written by
    /// [`CrossGramAccumulator::write_state`], revalidating every
    /// structural invariant (the two streams advance in lockstep, so one
    /// pending row count covers both buffers).
    pub fn read_state(r: &mut dyn io::BufRead) -> io::Result<Self> {
        let header = read_line(r)?;
        let head = parse_state_header(&header, "crossgram", 6)?;
        let (a_cols, b_cols, rows_seen, pending_rows, has_acc, has_group) =
            (head[0], head[1], head[2], head[3], head[4], head[5]);
        validate_fold_header(a_cols, rows_seen, pending_rows, has_acc, has_group)?;
        if b_cols == 0 {
            return Err(bad_state("accumulator state has zero columns"));
        }
        let data_a = read_f64_run(r, checked_len(pending_rows, a_cols)?)?;
        let data_b = read_f64_run(r, checked_len(pending_rows, b_cols)?)?;
        let acc = if has_acc == 1 {
            let vals = read_f64_run(r, checked_len(a_cols, b_cols)?)?;
            Some(Matrix::from_vec(a_cols, b_cols, vals).map_err(|e| bad_state(e.to_string()))?)
        } else {
            None
        };
        let group = if has_group == 1 {
            let vals = read_f64_run(r, checked_len(a_cols, b_cols)?)?;
            Some(Matrix::from_vec(a_cols, b_cols, vals).map_err(|e| bad_state(e.to_string()))?)
        } else {
            None
        };
        Ok(CrossGramAccumulator {
            pending_a: PendingRows {
                cols: a_cols,
                rows: pending_rows,
                data: data_a,
            },
            pending_b: PendingRows {
                cols: b_cols,
                rows: pending_rows,
                data: data_b,
            },
            acc,
            group,
            rows_seen,
        })
    }
}

/// Gram matrix `AᵀA` of a row-block source through the streaming
/// accumulator: bitwise identical for every shard layout and thread count,
/// and equal to [`Matrix::gram`] whenever the source fits in one chunk.
pub fn gram_streamed(source: &dyn RowBlocks) -> Result<Matrix> {
    let mut acc = GramAccumulator::new(source.cols());
    source.for_each_block(&mut |b| acc.push_block(b))?;
    if acc.rows_seen() != source.rows() {
        return Err(LinalgError::InvalidArgument(format!(
            "row-block source delivered {} of its declared {} rows",
            acc.rows_seen(),
            source.rows()
        )));
    }
    Ok(acc.finish())
}

/// Row-streamed product `source · rhs`: each global chunk of rows is
/// multiplied independently and written to its own output rows, so the
/// result is bitwise identical for every shard layout (and equal to
/// [`Matrix::matmul`] whenever the source fits in one chunk). Peak memory
/// is one chunk plus the output.
pub fn matmul_streamed(source: &dyn RowBlocks, rhs: &Matrix) -> Result<Matrix> {
    let (n, k) = source.shape();
    if k != rhs.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_streamed",
            lhs: (n, k),
            rhs: rhs.shape(),
        });
    }
    let m = rhs.cols();
    let mut out = Matrix::zeros(n, m);
    let mut pending = PendingRows::new(k);
    let mut next_row = 0usize;
    let write = |next_row: &mut usize, p: Matrix, out: &mut Matrix| -> Result<()> {
        if *next_row + p.rows() > n {
            // An over-delivering source (more rows than it declared).
            return Err(LinalgError::InvalidArgument(format!(
                "row-block source delivered more than its declared {n} rows"
            )));
        }
        let len = p.rows() * m;
        out.as_mut_slice()[*next_row * m..*next_row * m + len].copy_from_slice(p.as_slice());
        *next_row += p.rows();
        Ok(())
    };
    source.for_each_block(&mut |block| {
        if block.cols() != k {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_streamed",
                lhs: (n, k),
                rhs: block.shape(),
            });
        }
        // Bounded piece-wise consumption (see `PAR_FOLD_CHUNKS`).
        let rows = block.rows();
        let mut start = 0;
        loop {
            let take = pending.capacity_rows().min(rows - start);
            pending.push_rows(block, start, take);
            start += take;
            let full = pending.full_chunks();
            if full == 1 {
                let p = pending.chunk(0).matmul(rhs)?;
                write(&mut next_row, p, &mut out)?;
            } else if full > 1 {
                let pending_ref = &pending;
                let products = ivmf_par::par_map(full, ivmf_par::configured_threads(), |i| {
                    pending_ref.chunk(i).matmul_impl(rhs, 1)
                });
                for p in products {
                    write(&mut next_row, p?, &mut out)?;
                }
            }
            pending.drain_chunks(full);
            if start >= rows {
                break;
            }
        }
        Ok(())
    })?;
    if let Some(rem) = pending.remainder() {
        let p = rem.matmul(rhs)?;
        write(&mut next_row, p, &mut out)?;
    }
    if next_row != n {
        // An under-delivering source: the missing bottom rows of `out`
        // would otherwise be silently zero.
        return Err(LinalgError::InvalidArgument(format!(
            "row-block source delivered {next_row} of its declared {n} rows"
        )));
    }
    Ok(out)
}

/// Reduction-streamed product `lhs · source` for `lhs` of shape `p×n` and
/// a source of `n` rows: per global chunk, the matching column block of
/// `lhs` multiplies the chunk, and the partial products fold in chunk
/// order. Bitwise identical for every shard layout; equal to
/// [`Matrix::matmul`] whenever the source fits in one chunk.
pub fn matmul_left_streamed(lhs: &Matrix, source: &dyn RowBlocks) -> Result<Matrix> {
    let (n, m) = source.shape();
    if lhs.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_left_streamed",
            lhs: lhs.shape(),
            rhs: (n, m),
        });
    }
    let mut acc: Option<Matrix> = None;
    let mut pending = PendingRows::new(m);
    let mut offset = 0usize;
    let fold = |acc: &mut Option<Matrix>, offset: &mut usize, chunk: Matrix| -> Result<()> {
        let l = lhs.col_range(*offset, *offset + chunk.rows())?;
        let p = l.matmul(&chunk)?;
        match acc {
            None => *acc = Some(p),
            Some(a) => add_assign(a, &p),
        }
        *offset += chunk.rows();
        Ok(())
    };
    source.for_each_block(&mut |block| {
        if block.cols() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_left_streamed",
                lhs: (n, m),
                rhs: block.shape(),
            });
        }
        // Bounded piece-wise consumption (see `PAR_FOLD_CHUNKS`).
        let rows = block.rows();
        let mut start = 0;
        loop {
            let take = pending.capacity_rows().min(rows - start);
            pending.push_rows(block, start, take);
            start += take;
            let full = pending.full_chunks();
            for i in 0..full {
                fold(&mut acc, &mut offset, pending.chunk(i))?;
            }
            pending.drain_chunks(full);
            if start >= rows {
                break;
            }
        }
        Ok(())
    })?;
    if let Some(rem) = pending.remainder() {
        fold(&mut acc, &mut offset, rem)?;
    }
    if offset != n {
        // Under-delivery would silently truncate the reduction (an
        // over-delivering source already fails `lhs.col_range`).
        return Err(LinalgError::InvalidArgument(format!(
            "row-block source delivered {offset} of its declared {n} rows"
        )));
    }
    Ok(acc.unwrap_or_else(|| Matrix::zeros(lhs.rows(), m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill independent of the `rand` stub.
    fn lcg_matrix(rows: usize, cols: usize, mut state: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn assert_bitwise(a: &Matrix, b: &Matrix, context: &str) {
        assert_eq!(a.shape(), b.shape(), "{context}: shape mismatch");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: entry {i} differs ({x} vs {y})"
            );
        }
    }

    #[test]
    fn sharded_matrix_construction_and_round_trip() {
        let m = lcg_matrix(17, 5, 3);
        let sharded = RowShardedMatrix::from_matrix(&m, 4).unwrap();
        assert_eq!(sharded.num_shards(), 5); // 4+4+4+4+1
        assert_eq!(sharded.shape(), (17, 5));
        assert_eq!(sharded.to_dense(), m);
        // Whole-matrix shard and 1-row shards round-trip too.
        assert_eq!(
            RowShardedMatrix::from_matrix(&m, 17).unwrap().num_shards(),
            1
        );
        assert_eq!(
            RowShardedMatrix::from_matrix(&m, 1).unwrap().num_shards(),
            17
        );
        // Errors.
        assert!(RowShardedMatrix::from_matrix(&m, 0).is_err());
        assert!(RowShardedMatrix::from_shards(vec![]).is_err());
        assert!(RowShardedMatrix::from_shards(vec![Matrix::zeros(0, 3)]).is_err());
        assert!(
            RowShardedMatrix::from_shards(vec![Matrix::zeros(2, 3), Matrix::zeros(2, 4)]).is_err()
        );
    }

    #[test]
    fn append_shard_extends_rows() {
        let m = lcg_matrix(6, 4, 9);
        let mut sharded = RowShardedMatrix::from_matrix(&m, 3).unwrap();
        sharded.append_shard(lcg_matrix(2, 4, 10)).unwrap();
        assert_eq!(sharded.shape(), (8, 4));
        assert_eq!(sharded.num_shards(), 3);
        assert!(sharded.append_shard(Matrix::zeros(0, 4)).is_err());
        assert!(sharded.append_shard(Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn streamed_gram_is_shard_layout_invariant_bitwise() {
        // Rows straddling several chunk boundaries (> 2 * STREAM_CHUNK_ROWS)
        // so chunks genuinely interleave with shard boundaries.
        let n = 2 * STREAM_CHUNK_ROWS + 37;
        let m = lcg_matrix(n, 23, 11);
        let dense = gram_streamed(&m).unwrap();
        for shard_rows in [
            1usize,
            3,
            7,
            STREAM_CHUNK_ROWS - 1,
            STREAM_CHUNK_ROWS + 5,
            n,
        ] {
            let sharded = RowShardedMatrix::from_matrix(&m, shard_rows).unwrap();
            let streamed = gram_streamed(&sharded).unwrap();
            assert_bitwise(&streamed, &dense, &format!("gram shard_rows={shard_rows}"));
        }
    }

    #[test]
    fn streamed_gram_matches_one_shot_kernel_below_one_chunk() {
        let m = lcg_matrix(STREAM_CHUNK_ROWS, 40, 13);
        assert_bitwise(&gram_streamed(&m).unwrap(), &m.gram(), "single chunk");
        let small = lcg_matrix(9, 6, 14);
        assert_bitwise(&gram_streamed(&small).unwrap(), &small.gram(), "small");
    }

    #[test]
    fn streamed_gram_is_thread_count_invariant_bitwise() {
        let n = 3 * STREAM_CHUNK_ROWS + 11;
        let m = lcg_matrix(n, 31, 17);
        let sharded = RowShardedMatrix::from_matrix(&m, 50).unwrap();
        let _guard = crate::test_env::THREADS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
        let single = gram_streamed(&sharded).unwrap();
        std::env::set_var(ivmf_par::THREADS_ENV, "4");
        let quad = gram_streamed(&sharded).unwrap();
        match prev {
            Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
            None => std::env::remove_var(ivmf_par::THREADS_ENV),
        }
        assert_bitwise(&single, &quad, "threads 1 vs 4");
    }

    #[test]
    fn gram_accumulator_is_incremental_bitwise() {
        // Folding rows in two sessions (finish in between) must equal one
        // cold pass over everything — the append_rows contract.
        let head = lcg_matrix(200, 19, 21);
        let tail = lcg_matrix(77, 19, 22);
        let mut acc = GramAccumulator::new(19);
        acc.push_block(&head).unwrap();
        let _intermediate = acc.finish(); // non-consuming
        acc.push_block(&tail).unwrap();
        let incremental = acc.finish();
        assert_eq!(acc.rows_seen(), 277);

        let mut cold = GramAccumulator::new(19);
        cold.push_block(&head).unwrap();
        cold.push_block(&tail).unwrap();
        assert_bitwise(&incremental, &cold.finish(), "incremental vs cold");
        assert!(acc.push_block(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn cross_gram_accumulator_matches_one_shot_and_is_layout_invariant() {
        let n = STREAM_CHUNK_ROWS + 61;
        let a = lcg_matrix(n, 13, 31);
        let b = lcg_matrix(n, 9, 32);
        let mut reference = CrossGramAccumulator::new(13, 9);
        reference.push_blocks(&a, &b).unwrap();
        let reference = reference.finish().unwrap();
        // Against the plain kernel, within tolerance (different chunking).
        let oracle = a.matmul_tn(&b).unwrap();
        assert!(reference.approx_eq(&oracle, 1e-12 * n as f64));
        // Layout invariance is bitwise.
        for shard_rows in [1usize, 5, 64, n] {
            let sa = RowShardedMatrix::from_matrix(&a, shard_rows).unwrap();
            let sb = RowShardedMatrix::from_matrix(&b, shard_rows).unwrap();
            let mut acc = CrossGramAccumulator::new(13, 9);
            for (xa, xb) in sa.shards().iter().zip(sb.shards()) {
                acc.push_blocks(xa, xb).unwrap();
            }
            assert_eq!(acc.rows_seen(), n);
            assert_bitwise(
                &acc.finish().unwrap(),
                &reference,
                &format!("cross shard_rows={shard_rows}"),
            );
        }
        // Mismatched row counts are rejected.
        let mut acc = CrossGramAccumulator::new(13, 9);
        assert!(acc
            .push_blocks(&lcg_matrix(3, 13, 1), &lcg_matrix(4, 9, 2))
            .is_err());
    }

    #[test]
    fn matmul_streamed_is_layout_invariant_and_matches_small_dense() {
        let n = 2 * STREAM_CHUNK_ROWS + 19;
        let m = lcg_matrix(n, 21, 41);
        let rhs = lcg_matrix(21, 8, 42);
        let dense = matmul_streamed(&m, &rhs).unwrap();
        for shard_rows in [1usize, 30, STREAM_CHUNK_ROWS, n] {
            let sharded = RowShardedMatrix::from_matrix(&m, shard_rows).unwrap();
            let streamed = matmul_streamed(&sharded, &rhs).unwrap();
            assert_bitwise(
                &streamed,
                &dense,
                &format!("matmul shard_rows={shard_rows}"),
            );
        }
        // One-chunk source: bitwise equal to the one-shot kernel.
        let small = lcg_matrix(40, 21, 43);
        assert_bitwise(
            &matmul_streamed(&small, &rhs).unwrap(),
            &small.matmul(&rhs).unwrap(),
            "one-chunk matmul",
        );
        assert!(matmul_streamed(&m, &lcg_matrix(5, 5, 1)).is_err());
    }

    #[test]
    fn matmul_left_streamed_is_layout_invariant_and_matches_small_dense() {
        let n = STREAM_CHUNK_ROWS + 83;
        let m = lcg_matrix(n, 17, 51);
        let lhs = lcg_matrix(6, n, 52);
        let dense = matmul_left_streamed(&lhs, &m).unwrap();
        for shard_rows in [1usize, 29, n] {
            let sharded = RowShardedMatrix::from_matrix(&m, shard_rows).unwrap();
            let streamed = matmul_left_streamed(&lhs, &sharded).unwrap();
            assert_bitwise(
                &streamed,
                &dense,
                &format!("left matmul shard_rows={shard_rows}"),
            );
        }
        // Within tolerance of the plain kernel.
        let oracle = lhs.matmul(&m).unwrap();
        assert!(dense.approx_eq(&oracle, 1e-12 * n as f64));
        // One-chunk source: bitwise equal to the one-shot kernel.
        let small = lcg_matrix(33, 17, 53);
        let small_lhs = lcg_matrix(6, 33, 54);
        assert_bitwise(
            &matmul_left_streamed(&small_lhs, &small).unwrap(),
            &small_lhs.matmul(&small).unwrap(),
            "one-chunk left matmul",
        );
        assert!(matmul_left_streamed(&lcg_matrix(2, 3, 1), &m).is_err());
    }

    #[test]
    fn huge_blocks_fold_with_bounded_buffering_and_identical_bits() {
        // A block spanning more than PAR_FOLD_CHUNKS chunks is consumed
        // piece-wise; the results must match feeding the same rows in
        // 1-row shards (and the buffer invariant must hold after a push).
        let n = PAR_FOLD_CHUNKS * STREAM_CHUNK_ROWS + 200;
        let m = lcg_matrix(n, 5, 61);
        let mut monolithic = GramAccumulator::new(5);
        monolithic.push_block(&m).unwrap();
        assert!(
            monolithic.pending.rows < STREAM_CHUNK_ROWS,
            "full chunks must be drained after every push"
        );
        let sharded = RowShardedMatrix::from_matrix(&m, 1).unwrap();
        assert_bitwise(
            &monolithic.finish(),
            &gram_streamed(&sharded).unwrap(),
            "huge block vs 1-row shards",
        );
        let rhs = lcg_matrix(5, 3, 62);
        assert_bitwise(
            &matmul_streamed(&m, &rhs).unwrap(),
            &matmul_streamed(&sharded, &rhs).unwrap(),
            "huge block matmul",
        );
    }

    #[test]
    fn two_level_fold_is_layout_and_increment_invariant_past_a_group() {
        // Inputs spanning several merge groups exercise the group→master
        // seal; layout and incremental invariance must survive it.
        let n = 2 * GROUP_ROWS + 3 * STREAM_CHUNK_ROWS + 41;
        let m = lcg_matrix(n, 4, 91);
        let reference = gram_streamed(&m).unwrap();
        for shard_rows in [GROUP_ROWS - 1, GROUP_ROWS, GROUP_ROWS + 129, 997] {
            let sharded = RowShardedMatrix::from_matrix(&m, shard_rows).unwrap();
            assert_bitwise(
                &gram_streamed(&sharded).unwrap(),
                &reference,
                &format!("group-spanning gram shard_rows={shard_rows}"),
            );
        }
        // Incremental continuation across a group boundary.
        let mut acc = GramAccumulator::new(4);
        let head_rows = GROUP_ROWS + 77;
        let head = Matrix::from_vec(head_rows, 4, m.as_slice()[..head_rows * 4].to_vec()).unwrap();
        let tail =
            Matrix::from_vec(n - head_rows, 4, m.as_slice()[head_rows * 4..].to_vec()).unwrap();
        acc.push_block(&head).unwrap();
        let _ = acc.finish();
        acc.push_block(&tail).unwrap();
        assert_bitwise(&acc.finish(), &reference, "incremental across a group");
    }

    #[test]
    fn absorb_unit_reproduces_the_single_accumulator_bits() {
        // Cut a multi-group stream into GROUP_ROWS units, fold each in its
        // own accumulator (the worker side), absorb in unit order (the
        // coordinator side): state and finish must equal one accumulator
        // that saw everything — including after continued pushes.
        let n = 3 * GROUP_ROWS + 205;
        let m = lcg_matrix(n, 5, 92);
        let mut single = GramAccumulator::new(5);
        single.push_block(&m).unwrap();

        let mut merged = GramAccumulator::new(5);
        let mut start = 0;
        while start < n {
            let end = (start + GROUP_ROWS).min(n);
            let unit = Matrix::from_vec(end - start, 5, m.as_slice()[start * 5..end * 5].to_vec())
                .unwrap();
            let mut worker = GramAccumulator::new(5);
            worker.push_block(&unit).unwrap();
            merged.absorb_unit(worker).unwrap();
            start = end;
        }
        assert_eq!(merged.rows_seen(), single.rows_seen());
        assert_bitwise(&merged.finish(), &single.finish(), "merged vs single");
        // The merged *state* is the single-process state: continuing the
        // fold stays bitwise identical.
        let extra = lcg_matrix(300, 5, 93);
        merged.push_block(&extra).unwrap();
        single.push_block(&extra).unwrap();
        assert_bitwise(&merged.finish(), &single.finish(), "continued after merge");
        // Serialized states agree byte for byte.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        merged.write_state(&mut a).unwrap();
        single.write_state(&mut b).unwrap();
        assert_eq!(a, b, "serialized states must agree");

        // Preconditions: target off a group boundary, oversized unit,
        // column mismatch.
        let mut off = GramAccumulator::new(5);
        off.push_block(&lcg_matrix(10, 5, 94)).unwrap();
        assert!(off.absorb_unit(GramAccumulator::new(5)).is_err());
        let mut big = GramAccumulator::new(5);
        big.push_block(&lcg_matrix(GROUP_ROWS + 1, 5, 95)).unwrap();
        assert!(GramAccumulator::new(5).absorb_unit(big).is_err());
        assert!(GramAccumulator::new(5)
            .absorb_unit(GramAccumulator::new(6))
            .is_err());
    }

    #[test]
    fn cross_absorb_unit_reproduces_the_single_accumulator_bits() {
        let n = GROUP_ROWS + 391;
        let a = lcg_matrix(n, 6, 96);
        let b = lcg_matrix(n, 3, 97);
        let mut single = CrossGramAccumulator::new(6, 3);
        single.push_blocks(&a, &b).unwrap();
        let mut merged = CrossGramAccumulator::new(6, 3);
        let mut start = 0;
        while start < n {
            let end = (start + GROUP_ROWS).min(n);
            let ua = Matrix::from_vec(end - start, 6, a.as_slice()[start * 6..end * 6].to_vec())
                .unwrap();
            let ub = Matrix::from_vec(end - start, 3, b.as_slice()[start * 3..end * 3].to_vec())
                .unwrap();
            let mut worker = CrossGramAccumulator::new(6, 3);
            worker.push_blocks(&ua, &ub).unwrap();
            merged.absorb_unit(worker).unwrap();
            start = end;
        }
        assert_bitwise(
            &merged.finish().unwrap(),
            &single.finish().unwrap(),
            "cross merged vs single",
        );
        let (mut x, mut y) = (Vec::new(), Vec::new());
        merged.write_state(&mut x).unwrap();
        single.write_state(&mut y).unwrap();
        assert_eq!(x, y, "serialized cross states must agree");
    }

    /// A source whose blocks contradict its declared shape (a buggy
    /// third-party loader): the streamed kernels must reject it instead
    /// of panicking mid-stream.
    struct LyingSource;

    impl RowBlocks for LyingSource {
        fn rows(&self) -> usize {
            10
        }
        fn cols(&self) -> usize {
            10
        }
        fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
            f(&Matrix::zeros(5, 12))
        }
    }

    #[test]
    fn streamed_kernels_reject_blocks_with_inconsistent_columns() {
        assert!(matmul_streamed(&LyingSource, &Matrix::zeros(10, 3)).is_err());
        assert!(matmul_left_streamed(&Matrix::zeros(2, 10), &LyingSource).is_err());
        assert!(gram_streamed(&LyingSource).is_err());
    }

    /// A source that delivers fewer rows than it declares (e.g. a file
    /// that shrank between passes): results would silently be wrong if
    /// the kernels trusted the declaration.
    struct ShortSource;

    impl RowBlocks for ShortSource {
        fn rows(&self) -> usize {
            10
        }
        fn cols(&self) -> usize {
            4
        }
        fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
            f(&Matrix::zeros(6, 4))
        }
    }

    #[test]
    fn streamed_kernels_reject_under_delivering_sources() {
        let err = matmul_streamed(&ShortSource, &Matrix::zeros(4, 3)).unwrap_err();
        assert!(err.to_string().contains("declared"), "{err}");
        assert!(matmul_left_streamed(&Matrix::zeros(2, 10), &ShortSource).is_err());
        assert!(gram_streamed(&ShortSource).is_err());
    }

    #[test]
    fn gram_accumulator_state_round_trips_bitwise() {
        // Mid-stream state (a folded chunk plus a pending tail) must
        // survive serialization such that continuing the fold from the
        // restored accumulator is bitwise the uninterrupted run.
        let head = lcg_matrix(STREAM_CHUNK_ROWS + 45, 11, 71);
        let tail = lcg_matrix(60, 11, 72);
        let mut acc = GramAccumulator::new(11);
        acc.push_block(&head).unwrap();
        let mut buf = Vec::new();
        acc.write_state(&mut buf).unwrap();
        let mut restored =
            GramAccumulator::read_state(&mut std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(restored.rows_seen(), acc.rows_seen());
        assert_bitwise(&restored.finish(), &acc.finish(), "restored finish");
        acc.push_block(&tail).unwrap();
        restored.push_block(&tail).unwrap();
        assert_bitwise(&restored.finish(), &acc.finish(), "continued fold");
        // Empty accumulators round-trip too.
        let empty = GramAccumulator::new(4);
        let mut buf = Vec::new();
        empty.write_state(&mut buf).unwrap();
        let restored = GramAccumulator::read_state(&mut std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(restored.rows_seen(), 0);
        assert_bitwise(&restored.finish(), &empty.finish(), "empty");
    }

    #[test]
    fn cross_gram_accumulator_state_round_trips_bitwise() {
        let n = STREAM_CHUNK_ROWS + 30;
        let a = lcg_matrix(n, 7, 73);
        let b = lcg_matrix(n, 5, 74);
        let mut acc = CrossGramAccumulator::new(7, 5);
        acc.push_blocks(&a, &b).unwrap();
        let mut buf = Vec::new();
        acc.write_state(&mut buf).unwrap();
        let mut restored =
            CrossGramAccumulator::read_state(&mut std::io::BufReader::new(&buf[..])).unwrap();
        let (ta, tb) = (lcg_matrix(40, 7, 75), lcg_matrix(40, 5, 76));
        acc.push_blocks(&ta, &tb).unwrap();
        restored.push_blocks(&ta, &tb).unwrap();
        assert_bitwise(
            &restored.finish().unwrap(),
            &acc.finish().unwrap(),
            "continued cross fold",
        );
    }

    #[test]
    fn accumulator_read_state_rejects_corrupted_text() {
        let mut acc = GramAccumulator::new(3);
        acc.push_block(&lcg_matrix(STREAM_CHUNK_ROWS + 2, 3, 77))
            .unwrap();
        let mut buf = Vec::new();
        acc.write_state(&mut buf).unwrap();
        let corrupt =
            |b: &[u8]| GramAccumulator::read_state(&mut std::io::BufReader::new(b)).unwrap_err();
        // Truncation mid-payload.
        assert!(matches!(
            corrupt(&buf[..buf.len() / 2]).kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ));
        // Wrong tag.
        let mut spam = buf.clone();
        spam[..4].copy_from_slice(b"spam");
        corrupt(&spam);
        // Pending tail at or above a chunk (never a rest state).
        corrupt(format!("gram 3 {STREAM_CHUNK_ROWS} {STREAM_CHUNK_ROWS} 0 0\n\n").as_bytes());
        // Folded rows off the chunk grid.
        corrupt(b"gram 3 100 0 0 1\n\n");
        // Acc flag contradicting the folded row count (no completed merge
        // group below GROUP_ROWS folded rows).
        corrupt(b"gram 3 0 0 1 0\n\n");
        corrupt(format!("gram 3 {STREAM_CHUNK_ROWS} 0 1 1\n\n").as_bytes());
        // Group flag contradicting the folded chunk count: one folded
        // chunk must leave an open group, a whole group must not.
        corrupt(format!("gram 3 {STREAM_CHUNK_ROWS} 0 0 0\n\n").as_bytes());
        corrupt(format!("gram 3 {GROUP_ROWS} 0 1 1\n\n").as_bytes());
        // Clobbered terminator after the final binary payload run.
        let mut noterm = buf.clone();
        *noterm.last_mut().unwrap() = b'x';
        corrupt(&noterm);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_streamed_gram_bitwise_invariant_across_shard_sizes(seed in 0u64..1_000_000) {
            // The streaming-vs-one-shot equivalence property: for random
            // shapes (straddling the chunk boundary) and random shard
            // sizes — including the 1-row and whole-matrix edge cases —
            // the sharded streamed Gram is bitwise identical to the dense
            // streamed Gram.
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(1usize..(2 * STREAM_CHUNK_ROWS + 40));
            let m = rng.gen_range(1usize..24);
            let a = lcg_matrix(n, m, seed ^ 0x5eed);
            let dense = gram_streamed(&a).unwrap();
            let mut shard_sizes = vec![1usize, n];
            shard_sizes.push(rng.gen_range(1..=n));
            shard_sizes.push(rng.gen_range(1..=n));
            for shard_rows in shard_sizes {
                let sharded = RowShardedMatrix::from_matrix(&a, shard_rows).unwrap();
                let streamed = gram_streamed(&sharded).unwrap();
                proptest::prop_assert_eq!(
                    streamed.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    dense.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "shard_rows={} n={} m={}", shard_rows, n, m
                );
            }
        }
    }
}
