//! Sparse CSR row shards and chunk-realigned sparse streaming kernels.
//!
//! The rating matrices the paper factorizes are >95% sparse: a MovieLens-
//! scale workload (10⁶ users × 10⁴ items, ~100 nonzeros per row) is three
//! orders of magnitude away from fitting densely in memory, yet its Gram
//! matrix `AᵀA` (the `O(nnz·m)` heart of ISVD2–4) is perfectly computable.
//! This module adds the sparse counterpart of the [`streaming`](crate::streaming)
//! layer:
//!
//! * [`CsrShard`] — one row block in compressed-sparse-row form
//!   (`row_ptr`/`col_idx`/`values` over a fixed column count), and
//!   [`CsrShardedMatrix`], an ordered set of shards forming one virtual
//!   matrix ([`CsrRowBlocks`] is the lazy-source trait behind both);
//! * [`SparseGramAccumulator`] / [`SparseCrossGramAccumulator`] — Gram and
//!   cross-product accumulators that fold **over stored entries only**,
//!   with the same fixed [`STREAM_CHUNK_ROWS`]-row global chunk
//!   re-alignment as the dense accumulators;
//! * [`gram_streamed_csr`] / [`matmul_streamed_csr`] /
//!   [`matmul_left_streamed_csr`] — the streamed products the
//!   decomposition pipeline's Gram-route stages run.
//!
//! ## Bitwise equality with the dense kernels
//!
//! The refactor's core discipline: for the same logical matrix (sparse
//! with explicitly stored values equal to the dense entries), every sparse
//! kernel here returns **bitwise identical** results to its dense
//! streaming counterpart, for every shard layout and `IVMF_THREADS` count.
//! That holds because skipping a zero term never changes a sum's bits:
//!
//! * every accumulator starts at `+0.0` and can never become `-0.0` (a
//!   round-to-nearest sum or FMA that is exactly zero returns `+0.0`), so
//!   adding `±0.0` — which is all an implicit zero ever contributes — is a
//!   bitwise no-op, as is `fmadd(0, x, acc)`;
//! * the sparse kernels replicate the dense kernels' *term order* exactly:
//!   rows ascend within each fixed global chunk, K-blocks of the kernel's
//!   fixed depth (`KC`) ascend for wide products, and each
//!   surviving term uses the same fused-vs-plain arithmetic, dispatched on
//!   the same `work` thresholds ([`MATMUL_BLOCKED_MIN_WORK`]) as the dense
//!   kernels.
//!
//! The equivalence is property-tested here and end-to-end (ISVD2–4) in the
//! workspace `sparse_equivalence` suite.

use crate::kernel::{fmadd, mirror_upper, KC};
use crate::matrix::threads_for;
use crate::state_text::{
    bad_state, checked_len, parse_usize_line, read_f64_run, read_line, write_f64_run,
    write_usize_line,
};
use crate::streaming::{
    parse_state_header, validate_fold_header, GROUP_ROWS, MERGE_GROUP_CHUNKS, PAR_FOLD_CHUNKS,
};
use crate::{LinalgError, Matrix, Result, RowBlocks, MATMUL_BLOCKED_MIN_WORK, STREAM_CHUNK_ROWS};
use std::io;

/// One row block of a sparse matrix in compressed-sparse-row (CSR) form.
///
/// `row_ptr` has `rows + 1` entries; row `i`'s stored entries are
/// `col_idx[row_ptr[i]..row_ptr[i+1]]` (strictly ascending columns) with
/// matching `values`. Explicitly stored values may be anything, including
/// `0.0` — a stored zero behaves bitwise exactly like a dense zero entry,
/// so [`CsrShard::from_dense`]'s zero-dropping is invisible in results.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrShard {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrShard {
    /// Builds a shard from raw CSR arrays, validating the structure:
    /// `row_ptr` must be a non-decreasing `rows + 1`-entry offset array
    /// starting at 0 and ending at `col_idx.len() == values.len()`, and
    /// every row's columns must be strictly ascending and below `cols`.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 || row_ptr.first() != Some(&0) {
            return Err(LinalgError::InvalidArgument(format!(
                "CSR row_ptr must have rows+1 = {} entries starting at 0, got {} entries",
                rows + 1,
                row_ptr.len()
            )));
        }
        if *row_ptr.last().expect("non-empty by the check above") != col_idx.len()
            || col_idx.len() != values.len()
        {
            return Err(LinalgError::InvalidArgument(format!(
                "CSR payload lengths disagree: row_ptr ends at {}, {} columns, {} values",
                row_ptr.last().expect("non-empty"),
                col_idx.len(),
                values.len()
            )));
        }
        for r in 0..rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(LinalgError::InvalidArgument(format!(
                    "CSR row_ptr decreases at row {r}"
                )));
            }
            let entries = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for (t, &c) in entries.iter().enumerate() {
                if c >= cols {
                    return Err(LinalgError::InvalidArgument(format!(
                        "CSR column {c} out of range for {cols} columns (row {r})"
                    )));
                }
                if t > 0 && entries[t - 1] >= c {
                    return Err(LinalgError::InvalidArgument(format!(
                        "CSR columns must be strictly ascending within a row (row {r})"
                    )));
                }
            }
        }
        Ok(CsrShard {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a shard from `(row, col, value)` triplets in any order.
    /// Duplicate coordinates are rejected (a rating stream should never
    /// observe one cell twice; silently summing would hide data bugs).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        entries: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in entries {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "triplet ({r}, {c}) out of range for a {rows}x{cols} matrix"
                )));
            }
        }
        let mut sorted: Vec<&(usize, usize, f64)> = entries.iter().collect();
        sorted.sort_by_key(|&&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        row_ptr.push(0);
        let mut row = 0;
        for &&(r, c, v) in &sorted {
            if let Some(&last) = col_idx.last() {
                if row == r && last == c {
                    return Err(LinalgError::InvalidArgument(format!(
                        "duplicate triplet at ({r}, {c})"
                    )));
                }
            }
            while row < r {
                row_ptr.push(col_idx.len());
                row += 1;
            }
            col_idx.push(c);
            values.push(v);
        }
        while row < rows {
            row_ptr.push(col_idx.len());
            row += 1;
        }
        CsrShard::new(rows, cols, row_ptr, col_idx, values)
    }

    /// Converts a dense matrix, storing every entry that is not `±0.0`.
    /// The dropped zeros are bitwise no-ops in every kernel (see the
    /// module docs), so the conversion is invisible in results.
    pub fn from_dense(m: &Matrix) -> CsrShard {
        let (rows, cols) = m.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrShard {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense matrix (the escape hatch for small
    /// fixtures; implicit entries become `0.0`).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row_entries(i);
            let row = &mut out.as_mut_slice()[i * self.cols..(i + 1) * self.cols];
            for (&j, &v) in cols.iter().zip(vals) {
                row[j] = v;
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells with a stored entry (`nnz / (rows·cols)`; 0 for
    /// an empty shape).
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// The row-offset array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The stored column indices, row-major, ascending within a row.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored values, aligned with [`CsrShard::col_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Deconstructs into `(rows, cols, row_ptr, col_idx, values)` — the
    /// inverse of [`CsrShard::new`] — so consumers can return the backing
    /// buffers to [`crate::pool`] once a shard has been folded.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<f64>) {
        (
            self.rows,
            self.cols,
            self.row_ptr,
            self.col_idx,
            self.values,
        )
    }

    /// Row `i`'s stored `(columns, values)` slices.
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// A shard with the same sparsity pattern and a new value payload
    /// (used by the interval layer to derive midpoint/radius streams).
    pub fn with_values(&self, values: Vec<f64>) -> Result<CsrShard> {
        if values.len() != self.values.len() {
            return Err(LinalgError::InvalidArgument(format!(
                "pattern has {} stored entries, got {} values",
                self.values.len(),
                values.len()
            )));
        }
        Ok(CsrShard {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values,
        })
    }

    /// The sub-shard of rows `start..end`.
    pub fn row_slice(&self, start: usize, end: usize) -> Result<CsrShard> {
        if start > end || end > self.rows {
            return Err(LinalgError::InvalidArgument(format!(
                "row range {start}..{end} out of bounds for {} rows",
                self.rows
            )));
        }
        let (s, e) = (self.row_ptr[start], self.row_ptr[end]);
        Ok(CsrShard {
            rows: end - start,
            cols: self.cols,
            row_ptr: self.row_ptr[start..=end].iter().map(|&p| p - s).collect(),
            col_idx: self.col_idx[s..e].to_vec(),
            values: self.values[s..e].to_vec(),
        })
    }
}

/// The densifying escape hatch: a CSR shard presented to the *dense*
/// streaming kernels as a sequence of densified [`STREAM_CHUNK_ROWS`]-row
/// blocks, so peak memory stays one chunk rather than the whole shard.
/// Slow on genuinely sparse data — the sparse kernels below are the fast
/// path — but bitwise identical, which is what lets the two paths mix.
impl RowBlocks for CsrShard {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
        let mut start = 0;
        while start < self.rows {
            let end = (start + STREAM_CHUNK_ROWS).min(self.rows);
            f(&self.row_slice(start, end)?.to_dense())?;
            start = end;
        }
        Ok(())
    }
}

/// A sparse matrix presented as an ordered sequence of CSR row blocks —
/// the sparse counterpart of [`RowBlocks`]. Consumers fold blocks in row
/// order, so a source never holds more than one block in memory.
pub trait CsrRowBlocks {
    /// Total number of rows across all blocks.
    fn rows(&self) -> usize;
    /// Number of columns (identical for every block).
    fn cols(&self) -> usize;
    /// `(rows, cols)` of the full (virtual) matrix.
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }
    /// Calls `f` once per CSR row block, in row order.
    fn for_each_csr_block(&self, f: &mut dyn FnMut(&CsrShard) -> Result<()>) -> Result<()>;
}

impl CsrRowBlocks for CsrShard {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn for_each_csr_block(&self, f: &mut dyn FnMut(&CsrShard) -> Result<()>) -> Result<()> {
        f(self)
    }
}

/// An ordered set of CSR row-block shards forming one (virtual) sparse
/// matrix — the sparse counterpart of
/// [`RowShardedMatrix`](crate::RowShardedMatrix). The shard layout is
/// invisible in results (every consumer re-aligns to global chunk
/// boundaries); it only bounds peak per-block memory and sets the
/// granularity of [`CsrShardedMatrix::append_shard`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrShardedMatrix {
    shards: Vec<CsrShard>,
    rows: usize,
    cols: usize,
}

impl CsrShardedMatrix {
    /// Builds a sharded matrix from explicit CSR row blocks (non-empty
    /// list, no zero-row shards, consistent column counts).
    pub fn from_shards(shards: Vec<CsrShard>) -> Result<Self> {
        let Some(first) = shards.first() else {
            return Err(LinalgError::InvalidArgument(
                "a sharded CSR matrix needs at least one shard".to_string(),
            ));
        };
        let cols = first.cols;
        let mut rows = 0;
        for (i, s) in shards.iter().enumerate() {
            if s.rows == 0 {
                return Err(LinalgError::InvalidArgument(format!(
                    "shard {i} has zero rows"
                )));
            }
            if s.cols != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "shard {i} has {} columns, expected {cols}",
                    s.cols
                )));
            }
            rows += s.rows;
        }
        Ok(CsrShardedMatrix { shards, rows, cols })
    }

    /// Splits a dense matrix into CSR shards of at most `shard_rows` rows.
    pub fn from_dense(m: &Matrix, shard_rows: usize) -> Result<Self> {
        CsrShardedMatrix::from_csr(&CsrShard::from_dense(m), shard_rows)
    }

    /// Splits one big CSR shard into shards of at most `shard_rows` rows.
    pub fn from_csr(m: &CsrShard, shard_rows: usize) -> Result<Self> {
        if shard_rows == 0 {
            return Err(LinalgError::InvalidArgument(
                "shard_rows must be at least 1".to_string(),
            ));
        }
        if m.rows == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot shard an empty matrix".to_string(),
            ));
        }
        let mut shards = Vec::new();
        let mut start = 0;
        while start < m.rows {
            let end = (start + shard_rows).min(m.rows);
            shards.push(m.row_slice(start, end)?);
            start = end;
        }
        CsrShardedMatrix::from_shards(shards)
    }

    /// Appends a new CSR row-block shard at the bottom.
    pub fn append_shard(&mut self, shard: CsrShard) -> Result<()> {
        if shard.rows == 0 {
            return Err(LinalgError::InvalidArgument(
                "appended shard has zero rows".to_string(),
            ));
        }
        if shard.cols != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "append_shard",
                lhs: (self.rows, self.cols),
                rhs: shard.shape(),
            });
        }
        self.rows += shard.rows;
        self.shards.push(shard);
        Ok(())
    }

    /// Total number of rows across all shards.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (identical for every shard).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the full (virtual) matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order.
    pub fn shards(&self) -> &[CsrShard] {
        &self.shards
    }

    /// Total stored entries across all shards.
    pub fn nnz(&self) -> usize {
        self.shards.iter().map(CsrShard::nnz).sum()
    }

    /// Fraction of cells with a stored entry.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Materializes the dense matrix (row-order concatenation; the escape
    /// hatch for small fixtures).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let mut base = 0;
        for s in &self.shards {
            for i in 0..s.rows {
                let (cols, vals) = s.row_entries(i);
                let row =
                    &mut out.as_mut_slice()[(base + i) * self.cols..(base + i + 1) * self.cols];
                for (&j, &v) in cols.iter().zip(vals) {
                    row[j] = v;
                }
            }
            base += s.rows;
        }
        out
    }
}

impl CsrRowBlocks for CsrShardedMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn for_each_csr_block(&self, f: &mut dyn FnMut(&CsrShard) -> Result<()>) -> Result<()> {
        for s in &self.shards {
            f(s)?;
        }
        Ok(())
    }
}

impl RowBlocks for CsrShardedMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn for_each_block(&self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
        for s in &self.shards {
            RowBlocks::for_each_block(s, f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chunk kernels: bitwise replicas of the dense per-chunk products, folding
// over stored entries only.
// ---------------------------------------------------------------------------

/// Gram `chunkᵀ · chunk` of one (at most [`STREAM_CHUNK_ROWS`]-row) CSR
/// chunk — bitwise identical to [`Matrix::gram`] of the densified chunk.
///
/// The dense SYRK accumulates each upper-triangle entry `(a, b)` over the
/// chunk rows ascending — plain `+=` below [`MATMUL_BLOCKED_MIN_WORK`]
/// (skipping zero `ra`), a register-tile `fmadd` fold in a single packed
/// K-block (chunk rows ≤ [`STREAM_CHUNK_ROWS`] < `KC`) at or above it —
/// and mirrors the upper triangle. This kernel walks the same rows in the
/// same order, visits only stored entry pairs (the skipped zero terms are
/// bitwise no-ops), applies the identically dispatched plain/`fmadd` step,
/// and mirrors. Output row panels split across the worker pool exactly
/// like the dense kernel — per-entry fold order is row order, so the split
/// is invisible in results.
/// One chunk's Gram partial, **upper triangle only** (the strict lower
/// triangle stays zero). The accumulator folds these upper-triangle
/// partials and mirrors once at `finish()` — bitwise identical to
/// mirroring every chunk and folding full matrices, because each mirrored
/// entry is a copy of its transpose twin, and folding identical values in
/// identical order produces identical bits. Skipping the per-chunk mirror
/// and the lower-triangle folds halves the `O(m²)`-per-chunk overhead
/// that dominates at high sparsity.
fn csr_gram_chunk_upper(chunk: &CsrShard) -> Matrix {
    let m = chunk.cols;
    let mut out = Matrix::zeros(m, m);
    csr_gram_chunk_upper_into(chunk, &mut out);
    out
}

/// [`csr_gram_chunk_upper`] into a caller-owned `m×m` scratch whose upper
/// triangle (diagonal included) is zero on entry; the strict lower
/// triangle is never touched. Reusing one scratch across the chunks of a
/// drain avoids an `m×m` allocation (and its page faults — 8 MiB per
/// chunk at `m = 1024`) on every one of the thousands of chunks a
/// large-scale stream folds; re-zeroing only the upper triangle between
/// chunks is bitwise invisible because the kernel reads and writes that
/// triangle alone.
fn csr_gram_chunk_upper_into(chunk: &CsrShard, out: &mut Matrix) {
    let m = chunk.cols;
    debug_assert_eq!(out.shape(), (m, m));
    let work = chunk.rows * m * m / 2;
    let fused = work >= MATMUL_BLOCKED_MIN_WORK;
    let threads = threads_for(work);
    ivmf_par::par_row_panels(out.as_mut_slice(), m, threads, |first_row, panel| {
        if fused {
            csr_gram_panel(chunk, first_row, panel, m, fmadd);
        } else {
            csr_gram_panel(chunk, first_row, panel, m, |a, b, acc| acc + a * b);
        }
    });
}

/// Zeros the upper triangle (diagonal included), resetting a scratch for
/// [`csr_gram_chunk_upper_into`].
fn zero_upper(mat: &mut Matrix) {
    let m = mat.cols();
    for i in 0..m {
        for v in &mut mat.as_mut_slice()[i * m + i..(i + 1) * m] {
            *v = 0.0;
        }
    }
}

/// In-place sum of the upper triangles (diagonal included); the strict
/// lower triangles of both sides are zero by construction.
fn add_assign_upper(acc: &mut Matrix, rhs: &Matrix) {
    let m = rhs.cols();
    for i in 0..m {
        let (a_row, b_row) = (
            &mut acc.as_mut_slice()[i * m + i..(i + 1) * m],
            &rhs.as_slice()[i * m + i..(i + 1) * m],
        );
        for (a, &b) in a_row.iter_mut().zip(b_row) {
            *a += b;
        }
    }
}

/// One contiguous panel of Gram output rows: all chunk rows ascending, all
/// stored pairs `(a ≤ b)` with `a` inside the panel.
fn csr_gram_panel(
    chunk: &CsrShard,
    first_row: usize,
    panel: &mut [f64],
    m: usize,
    step: impl Fn(f64, f64, f64) -> f64,
) {
    let a_end = first_row + panel.len() / m;
    for k in 0..chunk.rows {
        let (cols, vals) = chunk.row_entries(k);
        for (t, (&a, &va)) in cols.iter().zip(vals).enumerate() {
            if a >= a_end {
                break;
            }
            if a < first_row {
                continue;
            }
            let row = &mut panel[(a - first_row) * m..(a - first_row + 1) * m];
            for (&b, &vb) in cols[t..].iter().zip(&vals[t..]) {
                row[b] = step(va, vb, row[b]);
            }
        }
    }
}

/// Cross product `aᵀ · b` of two row-aligned CSR chunks — bitwise
/// identical to [`Matrix::matmul_tn`] of the densified chunks (the dense
/// kernel's k-outer row order, with the same plain/`fmadd` dispatch on
/// `a.cols · rows · b.cols`; chunk rows < `KC` keep the packed path in a
/// single K-block).
fn csr_cross_chunk(a: &CsrShard, b: &CsrShard) -> Result<Matrix> {
    if a.rows != b.rows {
        return Err(LinalgError::DimensionMismatch {
            op: "csr_cross_gram",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (k, ma, mb) = (a.rows, a.cols, b.cols);
    let work = ma * k * mb;
    let fused = work >= MATMUL_BLOCKED_MIN_WORK;
    let threads = threads_for(work);
    let mut out = Matrix::zeros(ma, mb);
    ivmf_par::par_row_panels(out.as_mut_slice(), mb, threads, |first_row, panel| {
        let i_end = first_row + panel.len() / mb;
        for kk in 0..k {
            let (a_cols, a_vals) = a.row_entries(kk);
            let (b_cols, b_vals) = b.row_entries(kk);
            for (&i, &va) in a_cols.iter().zip(a_vals) {
                if i >= i_end {
                    break;
                }
                if i < first_row {
                    continue;
                }
                let row = &mut panel[(i - first_row) * mb..(i - first_row + 1) * mb];
                if fused {
                    for (&j, &vb) in b_cols.iter().zip(b_vals) {
                        row[j] = fmadd(va, vb, row[j]);
                    }
                } else {
                    for (&j, &vb) in b_cols.iter().zip(b_vals) {
                        row[j] += va * vb;
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Row product `chunk · rhs` for one CSR chunk and a dense right operand —
/// bitwise identical to [`Matrix::matmul`] of the densified chunk.
///
/// Below [`MATMUL_BLOCKED_MIN_WORK`] the dense kernel is the naive i-k-j
/// loop (zero entries of the left operand skipped, plain `+=`); at or
/// above, the packed kernel folds each output entry with `fmadd` inside
/// `KC`-deep K-blocks ascending, adding each block's register accumulator
/// onto the output. The inner dimension here is the chunk's *column*
/// count, which can exceed `KC`, so the fused path stages a per-row
/// partial per K-block and adds it back exactly like the dense kernel
/// (blocks without stored entries contribute `+0.0` — a bitwise no-op —
/// and are skipped).
fn csr_matmul_chunk(chunk: &CsrShard, rhs: &Matrix) -> Result<Matrix> {
    if chunk.cols != rhs.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "csr_matmul",
            lhs: chunk.shape(),
            rhs: rhs.shape(),
        });
    }
    let (n, kdim, m) = (chunk.rows, chunk.cols, rhs.cols());
    let work = n * kdim * m;
    let mut out = Matrix::zeros(n, m);
    if n == 0 || m == 0 {
        return Ok(out);
    }
    if work < MATMUL_BLOCKED_MIN_WORK {
        for i in 0..n {
            let (cols, vals) = chunk.row_entries(i);
            let out_row = &mut out.as_mut_slice()[i * m..(i + 1) * m];
            for (&kk, &a) in cols.iter().zip(vals) {
                if a == 0.0 {
                    continue; // the naive kernel's explicit zero skip
                }
                let b_row = &rhs.as_slice()[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    } else {
        let threads = threads_for(work);
        ivmf_par::par_row_panels(out.as_mut_slice(), m, threads, |first_row, panel| {
            let mut partial = vec![0.0f64; m];
            for (local, out_row) in panel.chunks_mut(m).enumerate() {
                let (cols, vals) = chunk.row_entries(first_row + local);
                let mut t = 0;
                let mut k0 = 0;
                while k0 < kdim {
                    let kc = KC.min(kdim - k0);
                    let t0 = t;
                    while t < cols.len() && cols[t] < k0 + kc {
                        let b_row = &rhs.as_slice()[cols[t] * m..(cols[t] + 1) * m];
                        let a = vals[t];
                        for (p, &bv) in partial.iter_mut().zip(b_row) {
                            *p = fmadd(a, bv, *p);
                        }
                        t += 1;
                    }
                    if t > t0 {
                        for (o, p) in out_row.iter_mut().zip(partial.iter_mut()) {
                            *o += *p;
                            *p = 0.0;
                        }
                    }
                    k0 += kc;
                }
            }
        });
    }
    Ok(out)
}

/// Reduction product `lhs · chunk` for a dense left operand and one CSR
/// chunk — bitwise identical to [`Matrix::matmul`] of `lhs` with the
/// densified chunk. The inner dimension is the chunk's row count (at most
/// [`STREAM_CHUNK_ROWS`] < `KC`), so the packed path is a single K-block:
/// one `fmadd` fold per entry over the chunk rows ascending.
fn csr_left_matmul_chunk(lhs: &Matrix, chunk: &CsrShard) -> Result<Matrix> {
    if lhs.cols() != chunk.rows {
        return Err(LinalgError::DimensionMismatch {
            op: "csr_left_matmul",
            lhs: lhs.shape(),
            rhs: chunk.shape(),
        });
    }
    debug_assert!(chunk.rows <= KC, "left chunks come from the pending buffer");
    let (p, kdim, m) = (lhs.rows(), chunk.rows, chunk.cols);
    let work = p * kdim * m;
    let fused = work >= MATMUL_BLOCKED_MIN_WORK;
    let threads = threads_for(work);
    let mut out = Matrix::zeros(p, m);
    ivmf_par::par_row_panels(out.as_mut_slice(), m, threads, |first_row, panel| {
        for (local, out_row) in panel.chunks_mut(m).enumerate() {
            let a_row = lhs.row(first_row + local);
            for (kk, &a) in a_row.iter().enumerate() {
                if !fused && a == 0.0 {
                    continue; // the naive kernel's explicit zero skip
                }
                let (cols, vals) = chunk.row_entries(kk);
                if fused {
                    for (&j, &v) in cols.iter().zip(vals) {
                        out_row[j] = fmadd(a, v, out_row[j]);
                    }
                } else {
                    for (&j, &v) in cols.iter().zip(vals) {
                        out_row[j] += a * v;
                    }
                }
            }
        }
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// The chunk-realigning pending buffer and streaming accumulators.
// ---------------------------------------------------------------------------

/// CSR row buffer re-aligning arbitrary incoming blocks to the fixed
/// global chunk grid — the sparse counterpart of the dense accumulators'
/// pending buffer, with the same [`PAR_FOLD_CHUNKS`]-chunk row bound.
#[derive(Debug, Clone)]
struct PendingCsrRows {
    cols: usize,
    /// Offsets into `col_idx`/`values`, one per buffered row plus the
    /// leading 0 (so `row_ptr.len() - 1` rows are buffered).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl PendingCsrRows {
    fn new(cols: usize) -> Self {
        PendingCsrRows {
            cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Rows that fit before the buffer holds [`PAR_FOLD_CHUNKS`] full
    /// chunks (strictly positive after every drain, so the piece-wise push
    /// loops always make progress).
    fn capacity_rows(&self) -> usize {
        PAR_FOLD_CHUNKS * STREAM_CHUNK_ROWS - self.rows()
    }

    /// Appends rows `start..start + n` of `block`.
    fn push_rows(&mut self, block: &CsrShard, start: usize, n: usize) {
        let (s, e) = (block.row_ptr[start], block.row_ptr[start + n]);
        self.col_idx.extend_from_slice(&block.col_idx[s..e]);
        self.values.extend_from_slice(&block.values[s..e]);
        let base = *self.row_ptr.last().expect("row_ptr is never empty");
        self.row_ptr.extend(
            block.row_ptr[start + 1..=start + n]
                .iter()
                .map(|&p| base + p - s),
        );
    }

    fn full_chunks(&self) -> usize {
        self.rows() / STREAM_CHUNK_ROWS
    }

    /// Copy of full chunk `i` (rows `i*C .. (i+1)*C` of the buffer).
    fn chunk(&self, i: usize) -> CsrShard {
        self.slice(i * STREAM_CHUNK_ROWS, (i + 1) * STREAM_CHUNK_ROWS)
    }

    /// Copies rows `r0..r1` into a standalone shard whose three backing
    /// buffers come from the [`crate::pool`] — the fold loops recycle them
    /// via [`recycle_csr_shard`] after each chunk kernel, so steady-state
    /// streaming stops hitting the allocator. The copied structure and
    /// values are identical to a freshly allocated slice.
    fn slice(&self, r0: usize, r1: usize) -> CsrShard {
        let (s, e) = (self.row_ptr[r0], self.row_ptr[r1]);
        let mut row_ptr = crate::pool::take_usize(r1 - r0 + 1);
        row_ptr.extend(self.row_ptr[r0..=r1].iter().map(|&p| p - s));
        let mut col_idx = crate::pool::take_usize(e - s);
        col_idx.extend_from_slice(&self.col_idx[s..e]);
        let mut values = crate::pool::take_f64(e - s);
        values.extend_from_slice(&self.values[s..e]);
        CsrShard {
            rows: r1 - r0,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    fn drain_chunks(&mut self, n: usize) {
        let rows = n * STREAM_CHUNK_ROWS;
        let cut = self.row_ptr[rows];
        self.col_idx.drain(..cut);
        self.values.drain(..cut);
        self.row_ptr.drain(..rows);
        for p in &mut self.row_ptr {
            *p -= cut;
        }
    }

    /// The buffered tail (fewer than [`STREAM_CHUNK_ROWS`] rows), if any.
    fn remainder(&self) -> Option<CsrShard> {
        if self.rows() == 0 {
            return None;
        }
        Some(self.slice(0, self.rows()))
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Writes the three CSR payload lines (offsets, columns, values); the
    /// row and entry counts live in the caller's header line.
    fn write_state(&self, w: &mut dyn io::Write) -> io::Result<()> {
        write_usize_line(w, &self.row_ptr)?;
        write_usize_line(w, &self.col_idx)?;
        write_f64_run(w, &self.values)
    }

    /// Reads the payload lines back for declared `rows`/`nnz`, running the
    /// full CSR structure validation of [`CsrShard::new`] so corrupted
    /// offsets or out-of-range columns surface as errors, never as a
    /// buffer that later panics mid-fold.
    fn read_state(
        r: &mut dyn io::BufRead,
        cols: usize,
        rows: usize,
        nnz: usize,
    ) -> io::Result<Self> {
        let row_ptr = parse_usize_line(&read_line(r)?, rows + 1)?;
        let col_idx = parse_usize_line(&read_line(r)?, nnz)?;
        let values = read_f64_run(r, nnz)?;
        let shard = CsrShard::new(rows, cols, row_ptr, col_idx, values)
            .map_err(|e| bad_state(e.to_string()))?;
        Ok(PendingCsrRows {
            cols,
            row_ptr: shard.row_ptr,
            col_idx: shard.col_idx,
            values: shard.values,
        })
    }
}

/// Entry-wise in-place sum (shapes already validated by callers).
fn add_assign(acc: &mut Matrix, rhs: &Matrix) {
    for (a, &b) in acc.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
        *a += b;
    }
}

/// Returns a consumed chunk shard's three backing buffers to the
/// [`crate::pool`] (an allocator hint, never a correctness requirement).
fn recycle_csr_shard(s: CsrShard) {
    crate::pool::recycle_usize(s.row_ptr);
    crate::pool::recycle_usize(s.col_idx);
    crate::pool::recycle_f64(s.values);
}

/// Streaming accumulator for the Gram matrix `AᵀA` over a CSR row-block
/// stream, folding **over stored entries only**: the sparse counterpart
/// of [`GramAccumulator`](crate::GramAccumulator), with the same fixed
/// global chunk re-alignment and therefore bitwise-identical results —
/// for the same logical matrix the two accumulators are interchangeable.
///
/// Parallelism differs only in scheduling: the dense accumulator fans
/// pending chunks across the pool, this one parallelizes inside each
/// chunk kernel (row panels of the `m×m` output), which keeps peak memory
/// at one `m×m` partial regardless of `IVMF_THREADS`. Fold order is chunk
/// order either way, so the results agree bit for bit.
/// The two-level fold mirrors the dense accumulator exactly: chunk
/// partials fold into a `group` partial, sealed into the master `acc`
/// every [`MERGE_GROUP_CHUNKS`] chunks, and
/// [`SparseGramAccumulator::absorb_unit`] merges a worker's
/// ≤ [`GROUP_ROWS`]-row unit with the identical bitwise contract (see the
/// [`streaming`](crate::streaming) module docs).
#[derive(Debug, Clone)]
pub struct SparseGramAccumulator {
    pending: PendingCsrRows,
    /// Master fold: sum of sealed merge groups, upper triangles only.
    acc: Option<Matrix>,
    /// The open (unsealed) group partial, upper triangle only.
    group: Option<Matrix>,
    rows_seen: usize,
}

impl SparseGramAccumulator {
    /// An empty accumulator for a stream with `cols` columns.
    pub fn new(cols: usize) -> Self {
        SparseGramAccumulator {
            pending: PendingCsrRows::new(cols),
            acc: None,
            group: None,
            rows_seen: 0,
        }
    }

    /// Number of columns of the stream (and of the Gram output).
    pub fn cols(&self) -> usize {
        self.pending.cols
    }

    /// Total rows folded or buffered so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Feeds the next CSR row block (row order across calls).
    pub fn push_block(&mut self, block: &CsrShard) -> Result<()> {
        if block.cols != self.pending.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse_gram_accumulate",
                lhs: (self.rows_seen, self.pending.cols),
                rhs: block.shape(),
            });
        }
        let rows = block.rows;
        let mut start = 0;
        loop {
            let take = self.pending.capacity_rows().min(rows - start);
            self.pending.push_rows(block, start, take);
            start += take;
            self.rows_seen += take;
            self.drain_full_chunks();
            if start >= rows {
                break;
            }
        }
        Ok(())
    }

    fn drain_full_chunks(&mut self) {
        let full = self.pending.full_chunks();
        if full == 0 {
            return;
        }
        // `drain_chunks` runs only below, so the difference still counts
        // the chunks folded *before* this call — the global chunk index
        // the group-boundary check needs.
        let mut folded = (self.rows_seen - self.pending.rows()) / STREAM_CHUNK_ROWS;
        let m = self.pending.cols;
        // Pool-backed zeroed scratch: this drain runs once per
        // PAR_FOLD_CHUNKS chunks, so without the pool every drain would
        // allocate (and fault in) a fresh m×m buffer.
        let mut scratch = Matrix::from_vec(m, m, crate::pool::take_zeroed_f64(m * m))
            .expect("pooled buffer has exactly m*m elements");
        for i in 0..full {
            let c = self.pending.chunk(i);
            csr_gram_chunk_upper_into(&c, &mut scratch);
            recycle_csr_shard(c);
            self.fold(&scratch, &mut folded);
            if i + 1 < full {
                zero_upper(&mut scratch);
            }
        }
        crate::pool::recycle_f64(scratch.into_vec());
        self.pending.drain_chunks(full);
    }

    // The running partials hold upper triangles only (see
    // [`csr_gram_chunk_upper`]); `finish` mirrors once at the end. Folds
    // the chunk into the group partial, sealing the group into the master
    // at every [`MERGE_GROUP_CHUNKS`] boundary.
    fn fold(&mut self, g: &Matrix, folded_chunks: &mut usize) {
        match &mut self.group {
            None => self.group = Some(g.clone()),
            Some(a) => add_assign_upper(a, g),
        }
        *folded_chunks += 1;
        if *folded_chunks % MERGE_GROUP_CHUNKS == 0 {
            self.seal_group();
        }
    }

    /// Moves the completed group partial into the master fold.
    fn seal_group(&mut self) {
        if let Some(g) = self.group.take() {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => {
                    add_assign_upper(a, &g);
                    crate::pool::recycle_f64(g.into_vec());
                }
            }
        }
    }

    /// The Gram matrix of every row seen so far (non-consuming, like the
    /// dense accumulator; same `master ⊕ (group ⊕ tail)` order).
    pub fn finish(&self) -> Matrix {
        let mut tail = self.group.clone();
        if let Some(rem) = self.pending.remainder() {
            let g = csr_gram_chunk_upper(&rem);
            recycle_csr_shard(rem);
            match &mut tail {
                None => tail = Some(g),
                Some(t) => add_assign_upper(t, &g),
            }
        }
        let mut acc = self.acc.clone();
        if let Some(t) = tail {
            match &mut acc {
                None => acc = Some(t),
                Some(a) => add_assign_upper(a, &t),
            }
        }
        let mut acc = acc.unwrap_or_else(|| Matrix::zeros(self.pending.cols, self.pending.cols));
        mirror_upper(&mut acc);
        acc
    }

    /// Absorbs the state of an accumulator that folded the next
    /// ≤ [`GROUP_ROWS`]-row work unit of the same stream — the sparse
    /// counterpart of
    /// [`GramAccumulator::absorb_unit`](crate::GramAccumulator::absorb_unit),
    /// with identical preconditions and the identical bitwise contract.
    pub fn absorb_unit(&mut self, other: SparseGramAccumulator) -> Result<()> {
        if other.pending.cols != self.pending.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "absorb_unit",
                lhs: (self.rows_seen, self.pending.cols),
                rhs: (other.rows_seen, other.pending.cols),
            });
        }
        if self.pending.rows() != 0 || self.group.is_some() || self.rows_seen % GROUP_ROWS != 0 {
            return Err(LinalgError::InvalidArgument(
                "absorb_unit target must sit on a merge-group boundary".to_string(),
            ));
        }
        if other.rows_seen > GROUP_ROWS {
            return Err(LinalgError::InvalidArgument(format!(
                "absorbed unit spans {} rows, more than one {GROUP_ROWS}-row merge group",
                other.rows_seen
            )));
        }
        // A ≤ GROUP_ROWS unit has at most one completed group (its `acc`),
        // which is exactly the next group of the combined stream.
        if let Some(g) = other.acc {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => add_assign_upper(a, &g),
            }
        }
        self.group = other.group;
        self.pending = other.pending;
        self.rows_seen += other.rows_seen;
        Ok(())
    }

    /// Serializes the complete accumulator state (CSR pending buffer,
    /// upper-triangular partial fold, row count) as bit-exact state text;
    /// the sparse counterpart of
    /// [`GramAccumulator::write_state`](crate::GramAccumulator::write_state).
    pub fn write_state(&self, w: &mut dyn io::Write) -> io::Result<()> {
        writeln!(
            w,
            "sparsegram {} {} {} {} {} {}",
            self.pending.cols,
            self.rows_seen,
            self.pending.rows(),
            self.pending.nnz(),
            self.acc.is_some() as u8,
            self.group.is_some() as u8
        )?;
        self.pending.write_state(w)?;
        if let Some(a) = &self.acc {
            write_f64_run(w, a.as_slice())?;
        }
        if let Some(g) = &self.group {
            write_f64_run(w, g.as_slice())?;
        }
        Ok(())
    }

    /// Restores an accumulator written by
    /// [`SparseGramAccumulator::write_state`], revalidating every
    /// structural invariant.
    pub fn read_state(r: &mut dyn io::BufRead) -> io::Result<Self> {
        let header = read_line(r)?;
        let head = parse_state_header(&header, "sparsegram", 6)?;
        let (cols, rows_seen, pending_rows, nnz, has_acc, has_group) =
            (head[0], head[1], head[2], head[3], head[4], head[5]);
        validate_fold_header(cols, rows_seen, pending_rows, has_acc, has_group)?;
        let pending = PendingCsrRows::read_state(r, cols, pending_rows, nnz)?;
        let mut read_square = || -> io::Result<Matrix> {
            let vals = read_f64_run(r, checked_len(cols, cols)?)?;
            Matrix::from_vec(cols, cols, vals).map_err(|e| bad_state(e.to_string()))
        };
        let acc = if has_acc == 1 {
            Some(read_square()?)
        } else {
            None
        };
        let group = if has_group == 1 {
            Some(read_square()?)
        } else {
            None
        };
        Ok(SparseGramAccumulator {
            pending,
            acc,
            group,
            rows_seen,
        })
    }
}

/// Streaming accumulator for the cross product `AᵀB` over a pair of CSR
/// row-block streams fed in lockstep (the `loᵀ·hi` term of the exact
/// interval Gram): the sparse counterpart of
/// [`CrossGramAccumulator`](crate::CrossGramAccumulator), bitwise
/// identical to it on the same logical matrices.
#[derive(Debug, Clone)]
pub struct SparseCrossGramAccumulator {
    pending_a: PendingCsrRows,
    pending_b: PendingCsrRows,
    /// Master fold: sum of sealed merge groups (full matrices).
    acc: Option<Matrix>,
    /// The open (unsealed) group partial.
    group: Option<Matrix>,
    rows_seen: usize,
}

impl SparseCrossGramAccumulator {
    /// An empty accumulator for streams with `a_cols` / `b_cols` columns.
    pub fn new(a_cols: usize, b_cols: usize) -> Self {
        SparseCrossGramAccumulator {
            pending_a: PendingCsrRows::new(a_cols),
            pending_b: PendingCsrRows::new(b_cols),
            acc: None,
            group: None,
            rows_seen: 0,
        }
    }

    /// Total rows folded or buffered so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Column count of the first stream (rows of the `AᵀB` output).
    pub fn a_cols(&self) -> usize {
        self.pending_a.cols
    }

    /// Column count of the second stream (columns of the `AᵀB` output).
    pub fn b_cols(&self) -> usize {
        self.pending_b.cols
    }

    /// Feeds the next CSR row block of each stream; the blocks must cover
    /// the same rows (equal row counts).
    pub fn push_blocks(&mut self, a: &CsrShard, b: &CsrShard) -> Result<()> {
        if a.rows != b.rows || a.cols != self.pending_a.cols || b.cols != self.pending_b.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse_cross_gram_accumulate",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        let rows = a.rows;
        let mut start = 0;
        loop {
            let take = self.pending_a.capacity_rows().min(rows - start);
            self.pending_a.push_rows(a, start, take);
            self.pending_b.push_rows(b, start, take);
            start += take;
            self.rows_seen += take;
            self.drain_full_chunks()?;
            if start >= rows {
                break;
            }
        }
        Ok(())
    }

    fn drain_full_chunks(&mut self) -> Result<()> {
        let full = self.pending_a.full_chunks();
        let mut folded = (self.rows_seen - self.pending_a.rows()) / STREAM_CHUNK_ROWS;
        for i in 0..full {
            let ca = self.pending_a.chunk(i);
            let cb = self.pending_b.chunk(i);
            let p = csr_cross_chunk(&ca, &cb);
            recycle_csr_shard(ca);
            recycle_csr_shard(cb);
            self.fold(p?, &mut folded);
        }
        self.pending_a.drain_chunks(full);
        self.pending_b.drain_chunks(full);
        Ok(())
    }

    /// Chunk-into-group fold with group sealing, exactly as in
    /// [`SparseGramAccumulator::fold`].
    fn fold(&mut self, p: Matrix, folded_chunks: &mut usize) {
        match &mut self.group {
            None => self.group = Some(p),
            Some(a) => {
                add_assign(a, &p);
                crate::pool::recycle_f64(p.into_vec());
            }
        }
        *folded_chunks += 1;
        if *folded_chunks % MERGE_GROUP_CHUNKS == 0 {
            self.seal_group();
        }
    }

    fn seal_group(&mut self) {
        if let Some(g) = self.group.take() {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => {
                    add_assign(a, &g);
                    crate::pool::recycle_f64(g.into_vec());
                }
            }
        }
    }

    /// The cross product `AᵀB` of every row pair seen so far
    /// (non-consuming; same `master ⊕ (group ⊕ tail)` order).
    pub fn finish(&self) -> Result<Matrix> {
        let mut tail = self.group.clone();
        if let (Some(ra), Some(rb)) = (self.pending_a.remainder(), self.pending_b.remainder()) {
            let p = csr_cross_chunk(&ra, &rb);
            recycle_csr_shard(ra);
            recycle_csr_shard(rb);
            let p = p?;
            match &mut tail {
                None => tail = Some(p),
                Some(t) => add_assign(t, &p),
            }
        }
        let mut acc = self.acc.clone();
        if let Some(t) = tail {
            match &mut acc {
                None => acc = Some(t),
                Some(a) => add_assign(a, &t),
            }
        }
        Ok(acc.unwrap_or_else(|| Matrix::zeros(self.pending_a.cols, self.pending_b.cols)))
    }

    /// Absorbs the state of an accumulator that folded the next
    /// ≤ [`GROUP_ROWS`]-row work unit of the same stream pair — identical
    /// preconditions and bitwise contract as
    /// [`SparseGramAccumulator::absorb_unit`].
    pub fn absorb_unit(&mut self, other: SparseCrossGramAccumulator) -> Result<()> {
        if other.pending_a.cols != self.pending_a.cols
            || other.pending_b.cols != self.pending_b.cols
        {
            return Err(LinalgError::DimensionMismatch {
                op: "absorb_unit",
                lhs: (self.pending_a.cols, self.pending_b.cols),
                rhs: (other.pending_a.cols, other.pending_b.cols),
            });
        }
        if self.pending_a.rows() != 0 || self.group.is_some() || self.rows_seen % GROUP_ROWS != 0 {
            return Err(LinalgError::InvalidArgument(
                "absorb_unit target must sit on a merge-group boundary".to_string(),
            ));
        }
        if other.rows_seen > GROUP_ROWS {
            return Err(LinalgError::InvalidArgument(format!(
                "absorbed unit spans {} rows, more than one {GROUP_ROWS}-row merge group",
                other.rows_seen
            )));
        }
        if let Some(g) = other.acc {
            match &mut self.acc {
                None => self.acc = Some(g),
                Some(a) => add_assign(a, &g),
            }
        }
        self.group = other.group;
        self.pending_a = other.pending_a;
        self.pending_b = other.pending_b;
        self.rows_seen += other.rows_seen;
        Ok(())
    }

    /// Serializes the complete accumulator state as bit-exact state text;
    /// the sparse counterpart of
    /// [`CrossGramAccumulator::write_state`](crate::CrossGramAccumulator::write_state).
    pub fn write_state(&self, w: &mut dyn io::Write) -> io::Result<()> {
        writeln!(
            w,
            "sparsecrossgram {} {} {} {} {} {} {} {}",
            self.pending_a.cols,
            self.pending_b.cols,
            self.rows_seen,
            self.pending_a.rows(),
            self.pending_a.nnz(),
            self.pending_b.nnz(),
            self.acc.is_some() as u8,
            self.group.is_some() as u8
        )?;
        self.pending_a.write_state(w)?;
        self.pending_b.write_state(w)?;
        if let Some(a) = &self.acc {
            write_f64_run(w, a.as_slice())?;
        }
        if let Some(g) = &self.group {
            write_f64_run(w, g.as_slice())?;
        }
        Ok(())
    }

    /// Restores an accumulator written by
    /// [`SparseCrossGramAccumulator::write_state`], revalidating every
    /// structural invariant (one pending row count covers both lockstep
    /// buffers).
    pub fn read_state(r: &mut dyn io::BufRead) -> io::Result<Self> {
        let header = read_line(r)?;
        let head = parse_state_header(&header, "sparsecrossgram", 8)?;
        let (a_cols, b_cols, rows_seen, pending_rows, a_nnz, b_nnz, has_acc, has_group) = (
            head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
        );
        validate_fold_header(a_cols, rows_seen, pending_rows, has_acc, has_group)?;
        if b_cols == 0 {
            return Err(bad_state("accumulator state has zero columns"));
        }
        let pending_a = PendingCsrRows::read_state(r, a_cols, pending_rows, a_nnz)?;
        let pending_b = PendingCsrRows::read_state(r, b_cols, pending_rows, b_nnz)?;
        let mut read_cross = || -> io::Result<Matrix> {
            let vals = read_f64_run(r, checked_len(a_cols, b_cols)?)?;
            Matrix::from_vec(a_cols, b_cols, vals).map_err(|e| bad_state(e.to_string()))
        };
        let acc = if has_acc == 1 {
            Some(read_cross()?)
        } else {
            None
        };
        let group = if has_group == 1 {
            Some(read_cross()?)
        } else {
            None
        };
        Ok(SparseCrossGramAccumulator {
            pending_a,
            pending_b,
            acc,
            group,
            rows_seen,
        })
    }
}

// ---------------------------------------------------------------------------
// Streamed top-level products.
// ---------------------------------------------------------------------------

/// Gram matrix `AᵀA` of a CSR row-block source through the sparse
/// streaming accumulator: bitwise identical to [`crate::gram_streamed`]
/// over the same logical rows, for every shard layout and thread count.
pub fn gram_streamed_csr(source: &dyn CsrRowBlocks) -> Result<Matrix> {
    let mut acc = SparseGramAccumulator::new(source.cols());
    source.for_each_csr_block(&mut |b| acc.push_block(b))?;
    if acc.rows_seen() != source.rows() {
        return Err(LinalgError::InvalidArgument(format!(
            "CSR row-block source delivered {} of its declared {} rows",
            acc.rows_seen(),
            source.rows()
        )));
    }
    Ok(acc.finish())
}

/// Row-streamed product `source · rhs` over a CSR source: bitwise
/// identical to [`crate::matmul_streamed`] over the same logical rows.
pub fn matmul_streamed_csr(source: &dyn CsrRowBlocks, rhs: &Matrix) -> Result<Matrix> {
    let (n, k) = source.shape();
    if k != rhs.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_streamed_csr",
            lhs: (n, k),
            rhs: rhs.shape(),
        });
    }
    let m = rhs.cols();
    let mut out = Matrix::zeros(n, m);
    let mut pending = PendingCsrRows::new(k);
    let mut next_row = 0usize;
    let write = |next_row: &mut usize, p: Matrix, out: &mut Matrix| -> Result<()> {
        if *next_row + p.rows() > n {
            return Err(LinalgError::InvalidArgument(format!(
                "CSR row-block source delivered more than its declared {n} rows"
            )));
        }
        let len = p.rows() * m;
        out.as_mut_slice()[*next_row * m..*next_row * m + len].copy_from_slice(p.as_slice());
        *next_row += p.rows();
        Ok(())
    };
    source.for_each_csr_block(&mut |block| {
        if block.cols() != k {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_streamed_csr",
                lhs: (n, k),
                rhs: block.shape(),
            });
        }
        let rows = block.rows();
        let mut start = 0;
        loop {
            let take = pending.capacity_rows().min(rows - start);
            pending.push_rows(block, start, take);
            start += take;
            let full = pending.full_chunks();
            for i in 0..full {
                let p = csr_matmul_chunk(&pending.chunk(i), rhs)?;
                write(&mut next_row, p, &mut out)?;
            }
            pending.drain_chunks(full);
            if start >= rows {
                break;
            }
        }
        Ok(())
    })?;
    if let Some(rem) = pending.remainder() {
        let p = csr_matmul_chunk(&rem, rhs)?;
        write(&mut next_row, p, &mut out)?;
    }
    if next_row != n {
        return Err(LinalgError::InvalidArgument(format!(
            "CSR row-block source delivered {next_row} of its declared {n} rows"
        )));
    }
    Ok(out)
}

/// Reduction-streamed product `lhs · source` over a CSR source: bitwise
/// identical to [`crate::matmul_left_streamed`] over the same logical
/// rows.
pub fn matmul_left_streamed_csr(lhs: &Matrix, source: &dyn CsrRowBlocks) -> Result<Matrix> {
    let (n, m) = source.shape();
    if lhs.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_left_streamed_csr",
            lhs: lhs.shape(),
            rhs: (n, m),
        });
    }
    let mut acc: Option<Matrix> = None;
    let mut pending = PendingCsrRows::new(m);
    let mut offset = 0usize;
    let fold = |acc: &mut Option<Matrix>, offset: &mut usize, chunk: CsrShard| -> Result<()> {
        let l = lhs.col_range(*offset, *offset + chunk.rows())?;
        let p = csr_left_matmul_chunk(&l, &chunk)?;
        match acc {
            None => *acc = Some(p),
            Some(a) => add_assign(a, &p),
        }
        *offset += chunk.rows();
        Ok(())
    };
    source.for_each_csr_block(&mut |block| {
        if block.cols() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_left_streamed_csr",
                lhs: (n, m),
                rhs: block.shape(),
            });
        }
        let rows = block.rows();
        let mut start = 0;
        loop {
            let take = pending.capacity_rows().min(rows - start);
            pending.push_rows(block, start, take);
            start += take;
            let full = pending.full_chunks();
            for i in 0..full {
                fold(&mut acc, &mut offset, pending.chunk(i))?;
            }
            pending.drain_chunks(full);
            if start >= rows {
                break;
            }
        }
        Ok(())
    })?;
    if let Some(rem) = pending.remainder() {
        fold(&mut acc, &mut offset, rem)?;
    }
    if offset != n {
        return Err(LinalgError::InvalidArgument(format!(
            "CSR row-block source delivered {offset} of its declared {n} rows"
        )));
    }
    Ok(acc.unwrap_or_else(|| Matrix::zeros(lhs.rows(), m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gram_streamed, matmul_left_streamed, matmul_streamed, RowShardedMatrix};

    /// Deterministic pseudo-random sparse fill: ~`nnz_per_row` stored
    /// entries per row, values in `(-1, 1)`.
    fn lcg_sparse(rows: usize, cols: usize, nnz_per_row: usize, mut state: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) as usize % cols < nnz_per_row {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            } else {
                0.0
            }
        })
    }

    fn assert_bitwise(a: &Matrix, b: &Matrix, context: &str) {
        assert_eq!(a.shape(), b.shape(), "{context}: shape mismatch");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: entry {i} differs ({x} vs {y})"
            );
        }
    }

    #[test]
    fn csr_construction_validates_and_round_trips() {
        let m = lcg_sparse(9, 7, 3, 5);
        let csr = CsrShard::from_dense(&m);
        assert_eq!(csr.shape(), (9, 7));
        assert_eq!(csr.to_dense(), m);
        assert!(csr.density() < 1.0);
        // Raw constructor round-trip.
        let rebuilt = CsrShard::new(
            9,
            7,
            csr.row_ptr().to_vec(),
            csr.col_idx().to_vec(),
            csr.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, csr);
        // Structural errors.
        assert!(CsrShard::new(2, 3, vec![0, 1], vec![0], vec![1.0]).is_err()); // short row_ptr
        assert!(CsrShard::new(1, 3, vec![0, 2], vec![0], vec![1.0]).is_err()); // length mismatch
        assert!(CsrShard::new(1, 3, vec![0, 1], vec![3], vec![1.0]).is_err()); // col out of range
        assert!(CsrShard::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err()); // dup col
        assert!(CsrShard::new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
        // unsorted
    }

    #[test]
    fn csr_from_triplets_sorts_and_rejects_duplicates() {
        let t = [(1usize, 2usize, 3.0), (0, 1, 1.0), (1, 0, 2.0)];
        let csr = CsrShard::from_triplets(3, 4, &t).unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_entries(1), (&[0usize, 2][..], &[2.0, 3.0][..]));
        assert_eq!(csr.row_entries(2), (&[][..], &[][..]));
        assert!(CsrShard::from_triplets(3, 4, &[(0, 1, 1.0), (0, 1, 2.0)]).is_err());
        assert!(CsrShard::from_triplets(3, 4, &[(3, 0, 1.0)]).is_err());
    }

    #[test]
    fn csr_row_slice_and_with_values() {
        let m = lcg_sparse(10, 6, 2, 7);
        let csr = CsrShard::from_dense(&m);
        let s = csr.row_slice(3, 7).unwrap();
        assert_eq!(s.shape(), (4, 6));
        for i in 0..4 {
            assert_eq!(s.row_entries(i), csr.row_entries(3 + i));
        }
        assert!(csr.row_slice(7, 3).is_err());
        let doubled = csr
            .with_values(csr.values().iter().map(|v| 2.0 * v).collect())
            .unwrap();
        assert_eq!(doubled.nnz(), csr.nnz());
        assert!(csr.with_values(vec![0.0]).is_err());
    }

    #[test]
    fn sparse_gram_is_bitwise_equal_to_dense_for_every_layout() {
        // Straddles several chunk boundaries; m = 23 puts full chunks on
        // the fused SYRK path (128·23·23/2 ≥ 32768) while the remainder
        // takes the plain path — both dispatches are exercised and must
        // match the dense dispatch exactly.
        let n = 2 * STREAM_CHUNK_ROWS + 37;
        let dense = lcg_sparse(n, 23, 4, 11);
        let reference = gram_streamed(&dense).unwrap();
        for shard_rows in [1usize, 7, STREAM_CHUNK_ROWS - 1, STREAM_CHUNK_ROWS + 5, n] {
            let sparse = CsrShardedMatrix::from_dense(&dense, shard_rows).unwrap();
            let streamed = gram_streamed_csr(&sparse).unwrap();
            assert_bitwise(
                &streamed,
                &reference,
                &format!("sparse gram shard_rows={shard_rows}"),
            );
        }
        // Small-column case: every chunk takes the plain path.
        let small = lcg_sparse(n, 9, 3, 12);
        assert_bitwise(
            &gram_streamed_csr(&CsrShard::from_dense(&small)).unwrap(),
            &gram_streamed(&small).unwrap(),
            "plain-path gram",
        );
    }

    #[test]
    fn sparse_gram_is_thread_count_invariant_bitwise() {
        let n = 3 * STREAM_CHUNK_ROWS + 11;
        let dense = lcg_sparse(n, 31, 5, 17);
        let sparse = CsrShardedMatrix::from_dense(&dense, 50).unwrap();
        let _guard = crate::test_env::THREADS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
        let single = gram_streamed_csr(&sparse).unwrap();
        std::env::set_var(ivmf_par::THREADS_ENV, "4");
        let quad = gram_streamed_csr(&sparse).unwrap();
        let dense_ref = gram_streamed(&dense).unwrap();
        match prev {
            Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
            None => std::env::remove_var(ivmf_par::THREADS_ENV),
        }
        assert_bitwise(&single, &quad, "threads 1 vs 4");
        assert_bitwise(&quad, &dense_ref, "threads 4 vs dense");
    }

    #[test]
    fn sparse_gram_accumulator_is_incremental_bitwise() {
        let head = lcg_sparse(200, 19, 4, 21);
        let tail = lcg_sparse(77, 19, 4, 22);
        let mut acc = SparseGramAccumulator::new(19);
        acc.push_block(&CsrShard::from_dense(&head)).unwrap();
        let _intermediate = acc.finish(); // non-consuming
        acc.push_block(&CsrShard::from_dense(&tail)).unwrap();
        assert_eq!(acc.rows_seen(), 277);

        let mut dense_acc = crate::GramAccumulator::new(19);
        dense_acc.push_block(&head).unwrap();
        dense_acc.push_block(&tail).unwrap();
        assert_bitwise(&acc.finish(), &dense_acc.finish(), "incremental vs dense");
        assert!(acc
            .push_block(&CsrShard::from_dense(&Matrix::zeros(2, 5)))
            .is_err());
    }

    #[test]
    fn sparse_accumulator_state_round_trips_bitwise() {
        // Mid-stream state (folded chunks + CSR pending tail) must
        // restore to an accumulator whose continued fold is bitwise the
        // uninterrupted run — for both the Gram and the cross variant.
        let head = lcg_sparse(STREAM_CHUNK_ROWS + 50, 13, 4, 81);
        let tail = lcg_sparse(70, 13, 4, 82);
        let mut acc = SparseGramAccumulator::new(13);
        acc.push_block(&CsrShard::from_dense(&head)).unwrap();
        let mut buf = Vec::new();
        acc.write_state(&mut buf).unwrap();
        let mut restored =
            SparseGramAccumulator::read_state(&mut std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(restored.rows_seen(), acc.rows_seen());
        acc.push_block(&CsrShard::from_dense(&tail)).unwrap();
        restored.push_block(&CsrShard::from_dense(&tail)).unwrap();
        assert_bitwise(&restored.finish(), &acc.finish(), "continued sparse gram");

        let b_head = lcg_sparse(STREAM_CHUNK_ROWS + 50, 9, 3, 83);
        let b_tail = lcg_sparse(70, 9, 3, 84);
        let mut cross = SparseCrossGramAccumulator::new(13, 9);
        cross
            .push_blocks(&CsrShard::from_dense(&head), &CsrShard::from_dense(&b_head))
            .unwrap();
        let mut buf = Vec::new();
        cross.write_state(&mut buf).unwrap();
        let mut restored =
            SparseCrossGramAccumulator::read_state(&mut std::io::BufReader::new(&buf[..])).unwrap();
        cross
            .push_blocks(&CsrShard::from_dense(&tail), &CsrShard::from_dense(&b_tail))
            .unwrap();
        restored
            .push_blocks(&CsrShard::from_dense(&tail), &CsrShard::from_dense(&b_tail))
            .unwrap();
        assert_bitwise(
            &restored.finish().unwrap(),
            &cross.finish().unwrap(),
            "continued sparse cross",
        );
    }

    #[test]
    fn sparse_read_state_rejects_corrupted_text() {
        let mut acc = SparseGramAccumulator::new(5);
        acc.push_block(&CsrShard::from_dense(&lcg_sparse(
            STREAM_CHUNK_ROWS + 9,
            5,
            2,
            85,
        )))
        .unwrap();
        let mut buf = Vec::new();
        acc.write_state(&mut buf).unwrap();
        let corrupt = |b: &[u8]| {
            SparseGramAccumulator::read_state(&mut std::io::BufReader::new(b)).unwrap_err()
        };
        corrupt(&buf[..buf.len() / 3]); // truncation
        let mut wrong_tag = b"gram".to_vec();
        wrong_tag.extend_from_slice(&buf["sparsegram".len()..]);
        corrupt(&wrong_tag);
        // A column index pushed out of range corrupts the CSR structure.
        // Lines 0..=2 (header, row offsets, column indices) are still
        // text; only the value runs after them are binary.
        let nl: Vec<usize> = buf
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .take(3)
            .collect();
        let col_line = std::str::from_utf8(&buf[nl[1] + 1..nl[2]]).unwrap();
        let bumped = col_line
            .split_ascii_whitespace()
            .map(|_| "9")
            .collect::<Vec<_>>()
            .join(" ");
        let mut bad_cols = buf[..nl[1] + 1].to_vec();
        bad_cols.extend_from_slice(bumped.as_bytes());
        bad_cols.extend_from_slice(&buf[nl[2]..]);
        corrupt(&bad_cols);
    }

    #[test]
    fn sparse_cross_gram_matches_dense_accumulator_bitwise() {
        let n = STREAM_CHUNK_ROWS + 61;
        let a = lcg_sparse(n, 13, 3, 31);
        let b = lcg_sparse(n, 9, 3, 32);
        let mut dense_acc = crate::CrossGramAccumulator::new(13, 9);
        dense_acc.push_blocks(&a, &b).unwrap();
        let reference = dense_acc.finish().unwrap();
        for shard_rows in [1usize, 5, 64, n] {
            let sa = CsrShardedMatrix::from_dense(&a, shard_rows).unwrap();
            let sb = CsrShardedMatrix::from_dense(&b, shard_rows).unwrap();
            let mut acc = SparseCrossGramAccumulator::new(13, 9);
            for (xa, xb) in sa.shards().iter().zip(sb.shards()) {
                acc.push_blocks(xa, xb).unwrap();
            }
            assert_eq!(acc.rows_seen(), n);
            assert_bitwise(
                &acc.finish().unwrap(),
                &reference,
                &format!("cross shard_rows={shard_rows}"),
            );
        }
        let mut acc = SparseCrossGramAccumulator::new(13, 9);
        assert!(acc
            .push_blocks(
                &CsrShard::from_dense(&lcg_sparse(3, 13, 2, 1)),
                &CsrShard::from_dense(&lcg_sparse(4, 9, 2, 2)),
            )
            .is_err());
    }

    #[test]
    fn sparse_two_level_fold_stays_bitwise_equal_to_dense_past_a_group() {
        // Crosses two group-seal boundaries; every layout (and the dense
        // accumulator, which seals at the same global chunk indices) must
        // agree bit for bit.
        let n = 2 * GROUP_ROWS + 3 * STREAM_CHUNK_ROWS + 41;
        let dense = lcg_sparse(n, 11, 3, 101);
        let reference = gram_streamed(&dense).unwrap();
        for shard_rows in [GROUP_ROWS - 1, GROUP_ROWS + 129, 997] {
            let sparse = CsrShardedMatrix::from_dense(&dense, shard_rows).unwrap();
            assert_bitwise(
                &gram_streamed_csr(&sparse).unwrap(),
                &reference,
                &format!("two-level sparse gram shard_rows={shard_rows}"),
            );
        }
    }

    #[test]
    fn sparse_absorb_unit_reproduces_the_single_accumulator_bits() {
        let n = 2 * GROUP_ROWS + 205;
        let dense = lcg_sparse(n, 7, 3, 103);
        let csr = CsrShard::from_dense(&dense);
        let mut single = SparseGramAccumulator::new(7);
        single.push_block(&csr).unwrap();

        let mut merged = SparseGramAccumulator::new(7);
        let mut start = 0;
        while start < n {
            let end = (start + GROUP_ROWS).min(n);
            let mut worker = SparseGramAccumulator::new(7);
            worker
                .push_block(&csr.row_slice(start, end).unwrap())
                .unwrap();
            merged.absorb_unit(worker).unwrap();
            start = end;
        }
        assert_eq!(merged.rows_seen(), single.rows_seen());
        assert_bitwise(
            &merged.finish(),
            &single.finish(),
            "sparse merged vs single",
        );
        // Continuing the fold after the merge stays bitwise identical,
        // and the serialized states agree byte for byte.
        let extra = CsrShard::from_dense(&lcg_sparse(300, 7, 3, 104));
        merged.push_block(&extra).unwrap();
        single.push_block(&extra).unwrap();
        assert_bitwise(&merged.finish(), &single.finish(), "sparse continued");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        merged.write_state(&mut a).unwrap();
        single.write_state(&mut b).unwrap();
        assert_eq!(a, b, "serialized sparse states must agree");

        // Preconditions: off-boundary target, oversized unit, col
        // mismatch.
        let mut off = SparseGramAccumulator::new(7);
        off.push_block(&CsrShard::from_dense(&lcg_sparse(10, 7, 2, 105)))
            .unwrap();
        assert!(off.absorb_unit(SparseGramAccumulator::new(7)).is_err());
        let mut big = SparseGramAccumulator::new(7);
        big.push_block(&CsrShard::from_dense(&lcg_sparse(
            GROUP_ROWS + 1,
            7,
            1,
            106,
        )))
        .unwrap();
        assert!(SparseGramAccumulator::new(7).absorb_unit(big).is_err());
        assert!(SparseGramAccumulator::new(7)
            .absorb_unit(SparseGramAccumulator::new(8))
            .is_err());
    }

    #[test]
    fn sparse_cross_absorb_unit_reproduces_the_single_accumulator_bits() {
        let n = GROUP_ROWS + 391;
        let a = CsrShard::from_dense(&lcg_sparse(n, 6, 2, 107));
        let b = CsrShard::from_dense(&lcg_sparse(n, 3, 2, 108));
        let mut single = SparseCrossGramAccumulator::new(6, 3);
        single.push_blocks(&a, &b).unwrap();

        let mut merged = SparseCrossGramAccumulator::new(6, 3);
        let mut start = 0;
        while start < n {
            let end = (start + GROUP_ROWS).min(n);
            let mut worker = SparseCrossGramAccumulator::new(6, 3);
            worker
                .push_blocks(
                    &a.row_slice(start, end).unwrap(),
                    &b.row_slice(start, end).unwrap(),
                )
                .unwrap();
            merged.absorb_unit(worker).unwrap();
            start = end;
        }
        assert_bitwise(
            &merged.finish().unwrap(),
            &single.finish().unwrap(),
            "sparse cross merged vs single",
        );
        let (mut x, mut y) = (Vec::new(), Vec::new());
        merged.write_state(&mut x).unwrap();
        single.write_state(&mut y).unwrap();
        assert_eq!(x, y, "serialized sparse cross states must agree");
        assert!(SparseCrossGramAccumulator::new(6, 3)
            .absorb_unit(SparseCrossGramAccumulator::new(6, 4))
            .is_err());
    }

    #[test]
    fn sparse_matmul_streamed_matches_dense_bitwise() {
        // cols = 300 > KC exercises the K-block staging of the fused
        // path; a small rhs keeps some chunks on the naive path too.
        let n = 2 * STREAM_CHUNK_ROWS + 19;
        let dense = lcg_sparse(n, 300, 12, 41);
        let rhs = lcg_sparse(300, 8, 8, 42);
        let reference = matmul_streamed(&dense, &rhs).unwrap();
        for shard_rows in [1usize, 30, STREAM_CHUNK_ROWS, n] {
            let sparse = CsrShardedMatrix::from_dense(&dense, shard_rows).unwrap();
            let streamed = matmul_streamed_csr(&sparse, &rhs).unwrap();
            assert_bitwise(
                &streamed,
                &reference,
                &format!("sparse matmul shard_rows={shard_rows}"),
            );
        }
        // Narrow case: everything on the naive path.
        let narrow = lcg_sparse(40, 21, 4, 43);
        let nrhs = lcg_sparse(21, 3, 3, 44);
        assert_bitwise(
            &matmul_streamed_csr(&CsrShard::from_dense(&narrow), &nrhs).unwrap(),
            &matmul_streamed(&narrow, &nrhs).unwrap(),
            "naive-path matmul",
        );
        assert!(matmul_streamed_csr(&CsrShard::from_dense(&narrow), &rhs).is_err());
    }

    #[test]
    fn sparse_left_matmul_streamed_matches_dense_bitwise() {
        let n = STREAM_CHUNK_ROWS + 83;
        let dense = lcg_sparse(n, 17, 4, 51);
        let lhs = lcg_sparse(6, n, n / 2, 52);
        let reference = matmul_left_streamed(&lhs, &dense).unwrap();
        for shard_rows in [1usize, 29, n] {
            let sparse = CsrShardedMatrix::from_dense(&dense, shard_rows).unwrap();
            let streamed = matmul_left_streamed_csr(&lhs, &sparse).unwrap();
            assert_bitwise(
                &streamed,
                &reference,
                &format!("sparse left matmul shard_rows={shard_rows}"),
            );
        }
        // A wide left operand pushes the per-chunk work over the fused
        // threshold.
        let wide_lhs = lcg_sparse(40, n, n / 2, 53);
        assert_bitwise(
            &matmul_left_streamed_csr(&wide_lhs, &CsrShard::from_dense(&dense)).unwrap(),
            &matmul_left_streamed(&wide_lhs, &dense).unwrap(),
            "fused left matmul",
        );
        assert!(
            matmul_left_streamed_csr(&lcg_sparse(2, 3, 2, 1), &CsrShard::from_dense(&dense))
                .is_err()
        );
    }

    #[test]
    fn degenerate_inputs_match_dense_bitwise() {
        // All-zero matrix (zero stored entries).
        let zero = Matrix::zeros(STREAM_CHUNK_ROWS + 9, 12);
        let zcsr = CsrShard::from_dense(&zero);
        assert_eq!(zcsr.nnz(), 0);
        assert_bitwise(
            &gram_streamed_csr(&zcsr).unwrap(),
            &gram_streamed(&zero).unwrap(),
            "all-zero gram",
        );
        // Single stored entry.
        let single = CsrShard::from_triplets(STREAM_CHUNK_ROWS + 5, 9, &[(130, 4, -2.5)]).unwrap();
        assert_bitwise(
            &gram_streamed_csr(&single).unwrap(),
            &gram_streamed(&single.to_dense()).unwrap(),
            "single-entry gram",
        );
        // Rows with no stored entries interleaved with dense rows.
        let mut m = lcg_sparse(2 * STREAM_CHUNK_ROWS, 11, 4, 61);
        for i in (0..m.rows()).step_by(3) {
            for j in 0..11 {
                m[(i, j)] = 0.0;
            }
        }
        let csr = CsrShardedMatrix::from_dense(&m, 37).unwrap();
        assert_bitwise(
            &gram_streamed_csr(&csr).unwrap(),
            &gram_streamed(&m).unwrap(),
            "empty-row gram",
        );
        let rhs = lcg_sparse(11, 4, 4, 62);
        assert_bitwise(
            &matmul_streamed_csr(&csr, &rhs).unwrap(),
            &matmul_streamed(&m, &rhs).unwrap(),
            "empty-row matmul",
        );
    }

    #[test]
    fn explicit_stored_zeros_are_bitwise_no_ops() {
        // A stored 0.0 must behave exactly like an implicit zero (the
        // dense kernels see the same 0.0 either way).
        let m = lcg_sparse(150, 14, 3, 71);
        let with_zero = {
            let mut t: Vec<(usize, usize, f64)> = Vec::new();
            let csr = CsrShard::from_dense(&m);
            for i in 0..csr.rows() {
                let (cols, vals) = csr.row_entries(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    t.push((i, c, v));
                }
            }
            // Inject explicit zeros at cells that were implicit.
            for i in 0..csr.rows() {
                if csr.row_entries(i).0.first() != Some(&0) {
                    t.push((i, 0, 0.0));
                }
            }
            CsrShard::from_triplets(150, 14, &t).unwrap()
        };
        assert!(with_zero.nnz() > CsrShard::from_dense(&m).nnz());
        assert_bitwise(
            &gram_streamed_csr(&with_zero).unwrap(),
            &gram_streamed(&m).unwrap(),
            "explicit zero gram",
        );
    }

    #[test]
    fn densifying_row_blocks_escape_hatch_matches_sparse_path() {
        let n = 2 * STREAM_CHUNK_ROWS + 33;
        let dense = lcg_sparse(n, 15, 3, 81);
        let sparse = CsrShardedMatrix::from_dense(&dense, 90).unwrap();
        // The RowBlocks impl densifies chunk-by-chunk; feeding it to the
        // *dense* streamed Gram must agree with both reference paths.
        assert_bitwise(
            &gram_streamed(&sparse).unwrap(),
            &gram_streamed(&dense).unwrap(),
            "escape hatch vs dense",
        );
        assert_bitwise(
            &gram_streamed(&sparse).unwrap(),
            &gram_streamed_csr(&sparse).unwrap(),
            "escape hatch vs sparse",
        );
    }

    #[test]
    fn sharded_construction_errors() {
        assert!(CsrShardedMatrix::from_shards(vec![]).is_err());
        let m = lcg_sparse(6, 4, 2, 91);
        assert!(CsrShardedMatrix::from_dense(&m, 0).is_err());
        let ok = CsrShard::from_dense(&m);
        let other = CsrShard::from_dense(&lcg_sparse(2, 5, 2, 92));
        assert!(CsrShardedMatrix::from_shards(vec![ok.clone(), other]).is_err());
        let mut sharded = CsrShardedMatrix::from_csr(&ok, 4).unwrap();
        assert_eq!(sharded.num_shards(), 2);
        assert!(sharded
            .append_shard(CsrShard::from_dense(&lcg_sparse(2, 5, 2, 93)))
            .is_err());
        sharded
            .append_shard(CsrShard::from_dense(&lcg_sparse(2, 4, 2, 94)))
            .unwrap();
        assert_eq!(sharded.rows(), 8);
        assert_eq!(sharded.to_dense().rows(), 8);
    }

    /// A source whose blocks contradict its declared shape.
    struct LyingCsrSource;

    impl CsrRowBlocks for LyingCsrSource {
        fn rows(&self) -> usize {
            10
        }
        fn cols(&self) -> usize {
            10
        }
        fn for_each_csr_block(&self, f: &mut dyn FnMut(&CsrShard) -> Result<()>) -> Result<()> {
            f(&CsrShard::from_dense(&Matrix::zeros(5, 12)))
        }
    }

    /// A source that delivers fewer rows than declared.
    struct ShortCsrSource;

    impl CsrRowBlocks for ShortCsrSource {
        fn rows(&self) -> usize {
            10
        }
        fn cols(&self) -> usize {
            4
        }
        fn for_each_csr_block(&self, f: &mut dyn FnMut(&CsrShard) -> Result<()>) -> Result<()> {
            f(&CsrShard::from_dense(&Matrix::zeros(6, 4)))
        }
    }

    #[test]
    fn streamed_csr_kernels_reject_bad_sources() {
        assert!(gram_streamed_csr(&LyingCsrSource).is_err());
        assert!(matmul_streamed_csr(&LyingCsrSource, &Matrix::zeros(10, 3)).is_err());
        assert!(matmul_left_streamed_csr(&Matrix::zeros(2, 10), &LyingCsrSource).is_err());
        let err = gram_streamed_csr(&ShortCsrSource).unwrap_err();
        assert!(err.to_string().contains("declared"), "{err}");
        assert!(matmul_streamed_csr(&ShortCsrSource, &Matrix::zeros(4, 3)).is_err());
        assert!(matmul_left_streamed_csr(&Matrix::zeros(2, 10), &ShortCsrSource).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sparse_gram_bitwise_equals_dense(seed in 0u64..1_000_000) {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(1usize..(2 * STREAM_CHUNK_ROWS + 40));
            let m = rng.gen_range(1usize..24);
            let nnz = rng.gen_range(0usize..=m);
            let dense = lcg_sparse(n, m, nnz, seed ^ 0x5eed);
            let reference = gram_streamed(&dense).unwrap();
            let mut shard_sizes = vec![1usize, n];
            shard_sizes.push(rng.gen_range(1..=n));
            shard_sizes.push(rng.gen_range(1..=n));
            for shard_rows in shard_sizes {
                let sparse = CsrShardedMatrix::from_dense(&dense, shard_rows).unwrap();
                let streamed = gram_streamed_csr(&sparse).unwrap();
                proptest::prop_assert_eq!(
                    streamed.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    reference.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "shard_rows={} n={} m={}", shard_rows, n, m
                );
            }
            // The dense sharded path agrees too (three-way equivalence).
            let dense_sharded = RowShardedMatrix::from_matrix(&dense, 1 + n / 3).unwrap();
            let dense_streamed = gram_streamed(&dense_sharded).unwrap();
            proptest::prop_assert_eq!(
                dense_streamed.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
