use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes.
    DimensionMismatch {
        /// Human readable description of the operation.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized / inverted.
    Singular,
    /// An iterative algorithm (QL sweep, Golub–Kahan sweep, …) did not
    /// converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Iteration budget that was exhausted.
        iterations: usize,
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The input is empty where a non-empty matrix/vector is required.
    Empty,
    /// A scalar argument is invalid (negative rank, zero dimension, NaN, …).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge within {iterations} iterations"
            ),
            LinalgError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            LinalgError::Empty => write!(f, "matrix or vector must be non-empty"),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { rows: 3, cols: 4 };
        assert!(e.to_string().contains("3x4"));
    }

    #[test]
    fn display_singular() {
        assert!(LinalgError::Singular.to_string().contains("singular"));
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence {
            algorithm: "tql2",
            iterations: 30,
        };
        assert!(e.to_string().contains("tql2"));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn display_invalid_argument() {
        let e = LinalgError::InvalidArgument("rank must be > 0".to_string());
        assert!(e.to_string().contains("rank must be > 0"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<T: std::error::Error>(_: &T) {}
        assert_err(&LinalgError::Singular);
    }
}
