//! Packed, register-tiled GEBP-style matrix-multiplication kernel.
//!
//! This is the compute core behind [`Matrix::matmul`](crate::Matrix::matmul)
//! and the SYRK-style Gram products: a classic three-level GotoBLAS/BLIS
//! decomposition, written in safe Rust and sized so the innermost tile
//! autovectorizes for `f64`.
//!
//! ```text
//!               ┌ KC ┐                 NR
//!        ┌──────┬────┬─────┐      ┌───┬───┬───┐
//!        │      │    │     │      │ ▓ │   │   │  B panel (KC×m) packed into
//!    A   │      │ ▓▓ │     │  ·   ├───┼───┼───┤  NR-wide column strips,
//!        │      │    │     │      │   │   │   │  k-major inside a strip
//!        └──────┴────┴─────┘      └───┴───┴───┘
//!           MC×KC block packed
//!           into MR-tall row strips
//!
//!    microkernel: C[MR×NR] tile accumulated in registers over one KC block
//! ```
//!
//! * the **B panel** (`KC × m`) is packed once per K-block into NR-wide
//!   column strips so the microkernel streams it contiguously; one strip
//!   (`KC·NR·8 B` = 16 KiB) stays L1-resident while every A strip of the
//!   row block passes it,
//! * each worker packs its **A block** (`MC × KC`, ≈ 128 KiB, L2-resident)
//!   into MR-tall row strips — packing reads through a [`Src`] view, so
//!   transposed operands (`AᵀB`, `ABᵀ`, Gram products) pack without ever
//!   materializing the transpose,
//! * the **microkernel** keeps an MR×NR accumulator tile in registers
//!   (`6×8` doubles = twelve AVX2 vectors) and fuses with
//!   `mul_add` when the build enables FMA (see `.cargo/config.toml`,
//!   `target-cpu=native`).
//!
//! ## Determinism
//!
//! Every output element accumulates its inner-dimension terms in a fixed
//! global order — K-blocks ascending, `k` ascending inside each block —
//! that depends neither on the row-panel split across `IVMF_THREADS`
//! workers nor on the tile coordinates. Results are therefore bitwise
//! identical for every thread count (property-tested in `matrix.rs`).
//!
//! ## Scratch reuse
//!
//! Packing buffers are thread-local and grow monotonically. On the calling
//! thread — the B panel always, and the A panels for every product below
//! the parallel threshold — repeated products (ISVD / NMF iterations) stop
//! re-allocating after the first call; only the zero-padded tail lanes of
//! ragged strips are re-written. Pool workers are scoped per
//! `par_row_panels` call (one call per K-block), so *their* A buffers live
//! for one K-block: a ~`MC·KC·8 B` allocation amortized against the
//! ≥ `MATMUL_PAR_MIN_WORK` compute that triggered the parallel path.

use std::cell::RefCell;

use crate::Matrix;

/// Register-tile height: rows of `C` produced per microkernel call.
pub(crate) const MR: usize = 6;
/// Register-tile width: columns of `C` produced per microkernel call.
pub(crate) const NR: usize = 8;
/// Inner-dimension block depth shared by the packed A and B panels.
pub(crate) const KC: usize = 256;
/// Rows of `A` packed per block (the L2-resident `MC × KC` panel).
pub(crate) const MC: usize = 64;

thread_local! {
    static BPACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static APACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Read-only element view an operand is packed through: the plain matrix or
/// its transpose, resolved at monomorphization time so packing loops inline
/// to direct loads.
pub(crate) trait Src: Sync {
    /// Logical row count of the viewed operand.
    fn rows(&self) -> usize;
    /// Logical column count of the viewed operand.
    fn cols(&self) -> usize;
    /// Logical element `(i, j)` of the viewed operand.
    fn get(&self, i: usize, j: usize) -> f64;
}

/// The matrix as stored.
pub(crate) struct Plain<'a>(pub &'a Matrix);

/// The transpose view: element `(i, j)` reads `(j, i)` of the backing
/// matrix.
pub(crate) struct Trans<'a>(pub &'a Matrix);

impl Src for Plain<'_> {
    #[inline(always)]
    fn rows(&self) -> usize {
        self.0.rows()
    }
    #[inline(always)]
    fn cols(&self) -> usize {
        self.0.cols()
    }
    #[inline(always)]
    fn get(&self, i: usize, j: usize) -> f64 {
        self.0.as_slice()[i * self.0.cols() + j]
    }
}

impl Src for Trans<'_> {
    #[inline(always)]
    fn rows(&self) -> usize {
        self.0.cols()
    }
    #[inline(always)]
    fn cols(&self) -> usize {
        self.0.rows()
    }
    #[inline(always)]
    fn get(&self, i: usize, j: usize) -> f64 {
        self.0.as_slice()[j * self.0.cols() + i]
    }
}

/// Fused multiply-add when the target has FMA, plain `mul`+`add` otherwise
/// (an unconditional `f64::mul_add` would fall back to a libm call and lose
/// an order of magnitude on non-FMA builds). Shared with the sparse CSR
/// kernels, which must reproduce the packed kernel's per-term arithmetic
/// bit for bit.
#[inline(always)]
pub(crate) fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Packs `rhs` rows `k0..k0+kc` into NR-wide column strips: strip `s` holds
/// columns `s·NR ..`, k-major (`buf[(s·kc + k)·NR + j]`), the ragged tail
/// strip zero-padded so the microkernel always runs full width.
fn pack_rhs<R: Src>(rhs: &R, k0: usize, kc: usize, buf: &mut Vec<f64>) {
    let m = rhs.cols();
    let strips = m.div_ceil(NR);
    let needed = strips * kc * NR;
    if buf.len() < needed {
        buf.resize(needed, 0.0);
    }
    for s in 0..strips {
        let j0 = s * NR;
        let w = NR.min(m - j0);
        let base = s * kc * NR;
        for k in 0..kc {
            let dst = &mut buf[base + k * NR..base + (k + 1) * NR];
            for (jj, d) in dst[..w].iter_mut().enumerate() {
                *d = rhs.get(k0 + k, j0 + jj);
            }
            for d in dst[w..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// Packs `lhs` rows `r0..r0+rc` over the K-block `k0..k0+kc` into MR-tall
/// row strips, k-major (`buf[(s·kc + k)·MR + i]`), zero-padding the ragged
/// tail strip.
fn pack_lhs<L: Src>(lhs: &L, r0: usize, rc: usize, k0: usize, kc: usize, buf: &mut Vec<f64>) {
    let strips = rc.div_ceil(MR);
    let needed = strips * kc * MR;
    if buf.len() < needed {
        buf.resize(needed, 0.0);
    }
    for s in 0..strips {
        let i0 = r0 + s * MR;
        let h = MR.min(r0 + rc - i0);
        let base = s * kc * MR;
        for k in 0..kc {
            let dst = &mut buf[base + k * MR..base + (k + 1) * MR];
            for (ii, d) in dst[..h].iter_mut().enumerate() {
                *d = lhs.get(i0 + ii, k0 + k);
            }
            for d in dst[h..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// The MR×NR register-tile microkernel: `acc += Astrip · Bstrip` over one
/// packed K-block. `k` ascends, so every accumulator element sees a fixed
/// addition order.
#[inline(always)]
fn microkernel(kc: usize, a: &[f64], b: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        let av: &[f64; MR] = av.try_into().expect("chunk is MR wide");
        let bv: &[f64; NR] = bv.try_into().expect("chunk is NR wide");
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] = fmadd(ai, bv[j], acc[i][j]);
            }
        }
    }
}

/// Computes one contiguous panel of output rows for one K-block:
/// `panel += lhs[first_row.., k-block] · rhs[k-block, :]` (the B panel
/// already packed by the caller).
///
/// With `skip_below_diag` set, tiles lying strictly below the main diagonal
/// of the *global* output are skipped — the SYRK path computes only the
/// upper triangle (plus diagonal-crossing tiles) and the caller mirrors.
#[allow(clippy::too_many_arguments)]
fn process_panel<L: Src>(
    lhs: &L,
    bpack: &[f64],
    k0: usize,
    kc: usize,
    first_row: usize,
    panel: &mut [f64],
    m: usize,
    skip_below_diag: bool,
    apack: &mut Vec<f64>,
) {
    let rows = panel.len() / m;
    let bstrips = m.div_ceil(NR);
    let mut r = 0;
    while r < rows {
        let rc = MC.min(rows - r);
        pack_lhs(lhs, first_row + r, rc, k0, kc, apack);
        let astrips = rc.div_ceil(MR);
        for sb in 0..bstrips {
            let j0 = sb * NR;
            let w = NR.min(m - j0);
            let bstrip = &bpack[sb * kc * NR..(sb + 1) * kc * NR];
            for sa in 0..astrips {
                let gi0 = first_row + r + sa * MR;
                if skip_below_diag && j0 + NR <= gi0 {
                    continue; // whole tile strictly below the diagonal
                }
                let h = MR.min(rc - sa * MR);
                let astrip = &apack[sa * kc * MR..(sa + 1) * kc * MR];
                let mut acc = [[0.0f64; NR]; MR];
                microkernel(kc, astrip, bstrip, &mut acc);
                for (ii, acc_row) in acc.iter().enumerate().take(h) {
                    let row = r + sa * MR + ii;
                    let dst = &mut panel[row * m + j0..row * m + j0 + w];
                    for (d, &v) in dst.iter_mut().zip(&acc_row[..w]) {
                        *d += v;
                    }
                }
            }
        }
        r += rc;
    }
}

/// Packed GEBP product `out += lhs · rhs` over [`Src`] views, with the
/// output row panels split across `threads` workers
/// ([`ivmf_par::par_row_panels`]).
///
/// `out` must be zero-initialized by the caller (the kernel accumulates).
/// With `skip_below_diag` the strictly-lower-triangular tiles are skipped
/// for symmetric (SYRK) outputs; the caller mirrors the upper triangle.
pub(crate) fn gemm_into<L: Src, R: Src>(
    lhs: &L,
    rhs: &R,
    out: &mut Matrix,
    threads: usize,
    skip_below_diag: bool,
) {
    let (n, m) = out.shape();
    let kdim = lhs.cols();
    debug_assert_eq!(lhs.rows(), n);
    debug_assert_eq!(rhs.rows(), kdim);
    debug_assert_eq!(rhs.cols(), m);
    if n == 0 || m == 0 || kdim == 0 {
        return;
    }
    BPACK.with(|bcell| {
        let mut bpack = bcell.borrow_mut();
        let mut k0 = 0;
        while k0 < kdim {
            let kc = KC.min(kdim - k0);
            pack_rhs(rhs, k0, kc, &mut bpack);
            let bp: &[f64] = &bpack;
            ivmf_par::par_row_panels(out.as_mut_slice(), m, threads, |first_row, panel| {
                APACK.with(|acell| {
                    let mut apack = acell.borrow_mut();
                    process_panel(
                        lhs,
                        bp,
                        k0,
                        kc,
                        first_row,
                        panel,
                        m,
                        skip_below_diag,
                        &mut apack,
                    );
                });
            });
            k0 += kc;
        }
    });
}

/// Mirrors the upper triangle of a square matrix into its lower triangle
/// (the final step of the SYRK Gram kernels).
pub(crate) fn mirror_upper(c: &mut Matrix) {
    let n = c.rows();
    debug_assert!(c.is_square());
    for i in 1..n {
        for j in 0..i {
            c[(i, j)] = c[(j, i)];
        }
    }
}
