//! # ivmf-linalg
//!
//! Self-contained dense linear algebra for the `ivmf` workspace.
//!
//! The interval-valued factorization algorithms of the paper (ISVD0–ISVD4,
//! AI-PMF and the LP competitor) need a small but complete set of dense
//! numerical kernels:
//!
//! * a dense row-major [`Matrix`] with the usual arithmetic,
//! * matrix multiplication, transposition and norms,
//! * a symmetric eigensolver ([`eigen_sym::sym_eigen`], Householder
//!   tridiagonalization followed by the implicit QL algorithm with shifts),
//! * a certified top-k eigensolver ([`eigen_topk::sym_eigen_topk`],
//!   Lanczos with full reorthogonalization, per-pair residual
//!   certification against the dense oracle's tolerance and automatic
//!   fallback; `IVMF_TOPK_EIGEN` selects `auto`/`full`/`forced`),
//! * a full singular value decomposition ([`svd::svd`], Golub–Kahan–Reinsch),
//! * LU factorization with partial pivoting ([`lu`]) for solving and
//!   inversion,
//! * Householder QR ([`qr`]),
//! * the Moore–Penrose pseudo-inverse ([`pinv::pinv`]) and condition-number
//!   estimation ([`cond::condition_number`]).
//!
//! Everything is written from scratch on top of `std` so that the
//! reproduction does not depend on external BLAS/LAPACK bindings; the
//! matrices used in the paper's experiments (hundreds to a couple of
//! thousand rows) are comfortably within reach of straightforward dense
//! algorithms.
//!
//! ## Example
//!
//! ```
//! use ivmf_linalg::{Matrix, svd::svd};
//!
//! let m = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 3.0], vec![0.0, 0.0]]);
//! let f = svd(&m).unwrap();
//! // Singular values of this matrix are 4 and 2.
//! assert!((f.singular_values[0] - 4.0).abs() < 1e-10);
//! assert!((f.singular_values[1] - 2.0).abs() < 1e-10);
//! // Reconstruction U Σ Vᵀ ≈ M.
//! let rec = f.reconstruct();
//! assert!(m.sub(&rec).unwrap().frobenius_norm() < 1e-10);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cond;
pub mod eigen_sym;
pub mod eigen_topk;
mod error;
mod kernel;
pub mod lu;
mod matrix;
pub mod norms;
pub mod pinv;
pub mod pool;
pub mod qr;
pub mod random;
pub mod sparse;
pub mod state_text;
pub mod streaming;
pub mod svd;

pub use eigen_topk::{
    canonicalize_column_signs, sym_eigen_topk, sym_eigen_topk_report, sym_eigen_topk_with,
    topk_profitable, TopkOptions, TopkReport, DEFAULT_TOPK_TOL,
};
pub use error::LinalgError;
pub use matrix::{Matrix, MATMUL_BLOCKED_MIN_WORK, MATMUL_PAR_MIN_WORK};
pub use sparse::{
    gram_streamed_csr, matmul_left_streamed_csr, matmul_streamed_csr, CsrRowBlocks, CsrShard,
    CsrShardedMatrix, SparseCrossGramAccumulator, SparseGramAccumulator,
};
pub use streaming::{
    gram_streamed, matmul_left_streamed, matmul_streamed, CrossGramAccumulator, GramAccumulator,
    RowBlocks, RowShardedMatrix, STREAM_CHUNK_ROWS,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Default numerical tolerance used for rank / singularity decisions.
pub const DEFAULT_EPS: f64 = 1e-12;

#[cfg(test)]
pub(crate) mod test_env {
    /// Serializes the tests that mutate the `IVMF_THREADS` environment
    /// variable. `ivmf_par::configured_threads()` re-reads the variable on
    /// every call, so two concurrently running determinism tests would race:
    /// one test's "single-threaded" run could silently execute with the
    /// other test's transient override (degenerating the 1-vs-4 comparison
    /// to 4-vs-4), and a test could capture the other's transient value as
    /// "previous" and leak it into the rest of the suite.
    pub static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
