//! Vector norms and small vector helpers shared across the workspace.

/// Euclidean (L2) norm of a vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equally-long vectors.
///
/// Panics if the lengths differ (callers always pass columns of matrices
/// with statically equal row counts).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Cosine similarity between two vectors.
///
/// Returns `0.0` when either vector has (numerically) zero norm, which is
/// the convention the alignment code relies on: a degenerate latent vector
/// is simply "not similar" to anything.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Mean of a slice (`0` for an empty slice).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation of a slice (`0` for fewer than 2 items).
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Euclidean distance between two equally-long vectors.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Normalizes `v` to unit L2 norm in place; leaves zero vectors untouched.
pub fn normalize_in_place(v: &mut [f64]) {
    let n = l2_norm(v);
    if n > f64::EPSILON {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_norm_of_pythagorean_triple() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic]
    fn dot_panics_on_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn euclidean_distance_known_value() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize_in_place(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_in_place(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
