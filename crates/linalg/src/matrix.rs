use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::kernel::{gemm_into, mirror_upper, Plain, Trans};
use crate::{LinalgError, Result};

/// A dense, row-major, `f64` matrix.
///
/// The layout is a single `Vec<f64>` of length `rows * cols`; element
/// `(i, j)` lives at `data[i * cols + j]`. This is the storage used by every
/// algorithm in the workspace (interval matrices are simply *pairs* of
/// `Matrix` bounds).
///
/// Fallible operations (shape-dependent arithmetic, inversion, …) return
/// [`Result`]; shape-safe accessors use `Index`/`IndexMut` and panic only on
/// programmer errors (out-of-bounds indexing), mirroring `Vec`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Scalar-multiplication count (`n·k·m`) below which [`Matrix::matmul`]
/// runs the reference i-k-j kernel instead of the packed register-tiled
/// one: at tiny sizes the two kernels are equivalent, packing overhead
/// dominates, and the reference kernel keeps the historical bitwise
/// behaviour of the small-matrix tests.
pub const MATMUL_BLOCKED_MIN_WORK: usize = 32 * 32 * 32;

/// Scalar-multiplication count (`n·k·m`) above which [`Matrix::matmul`]
/// splits its output row panels across the `IVMF_THREADS` worker pool.
pub const MATMUL_PAR_MIN_WORK: usize = 64 * 64 * 64;

/// Worker count for a product of `work` scalar multiplications: 1 below
/// [`MATMUL_PAR_MIN_WORK`], the `IVMF_THREADS` pool size at or above it.
pub(crate) fn threads_for(work: usize) -> usize {
    if work >= MATMUL_PAR_MIN_WORK {
        ivmf_par::configured_threads()
    } else {
        1
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "data length {} does not match shape {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from row slices. Panics if rows are ragged.
    ///
    /// Intended for literals in tests and examples; use [`Matrix::from_vec`]
    /// for data paths where the shape is not statically known.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                row: i,
                col: j,
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Checked element update.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                row: i,
                col: j,
                shape: self.shape(),
            });
        }
        self.data[i * self.cols + j] = value;
        Ok(())
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j` with `values`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) -> Result<()> {
        if values.len() != self.rows {
            return Err(LinalgError::InvalidArgument(format!(
                "column length {} does not match row count {}",
                values.len(),
                self.rows
            )));
        }
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
        Ok(())
    }

    /// Extract the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Element-wise quotient; entries where `|rhs| < eps` produce `0`.
    ///
    /// This is the guarded division used by the NMF multiplicative update
    /// rules, which must stay finite when a denominator entry collapses.
    pub fn hadamard_div_guarded(&self, rhs: &Matrix, eps: f64) -> Result<Matrix> {
        self.zip_with(
            rhs,
            "hadamard_div",
            |a, b| if b.abs() < eps { 0.0 } else { a / b },
        )
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Apply `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Entry-wise mean of two matrices: `(self + rhs) / 2`.
    ///
    /// This is the "average matrix" used by ISVD0 and by the option-b/c
    /// target constructions.
    pub fn mean_with(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "mean_with", |a, b| 0.5 * (a + b))
    }

    /// Matrix product `self * rhs`.
    ///
    /// Products below [`MATMUL_BLOCKED_MIN_WORK`] scalar multiplications run
    /// the reference i-k-j kernel ([`Matrix::matmul_naive`]); larger ones
    /// take the packed, register-tiled GEBP kernel (see the `kernel` module
    /// docs for the packing layout), and above [`MATMUL_PAR_MIN_WORK`] its
    /// output row panels are split across the worker threads configured by
    /// the `IVMF_THREADS` environment variable (see
    /// [`ivmf_par::configured_threads`]).
    ///
    /// Every output element accumulates its inner-dimension terms in a
    /// fixed global order, so the result is bitwise identical for every
    /// thread count.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let work = self.rows * self.cols * rhs.cols;
        self.matmul_impl(rhs, threads_for(work))
    }

    /// [`Matrix::matmul`] with an explicit worker count (the kernel is
    /// bitwise deterministic across thread counts, so this only changes
    /// scheduling). Used by the streaming layer, which parallelizes across
    /// chunks and therefore runs each chunk product inline.
    pub(crate) fn matmul_impl(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let work = n * k * m;
        if work < MATMUL_BLOCKED_MIN_WORK {
            return self.matmul_naive(rhs);
        }
        let mut out = Matrix::zeros(n, m);
        gemm_into(&Plain(self), &Plain(rhs), &mut out, threads, false);
        Ok(out)
    }

    /// Matrix product with a transposed right operand: `self * rhsᵀ`, for
    /// `self` of shape `n×k` and `rhs` of shape `m×k`, **without**
    /// materializing the transpose.
    ///
    /// This is the shape of every `U Vᵀ` reconstruction and of the k-means
    /// cross-term products; the packed kernel reads `rhs` through a
    /// transposed view while packing, and small products fall back to
    /// row-by-row dot products (both operands walk contiguous rows).
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (n, k, m) = (self.rows, self.cols, rhs.rows);
        let work = n * k * m;
        let mut out = Matrix::zeros(n, m);
        if work < MATMUL_BLOCKED_MIN_WORK {
            for i in 0..n {
                let a_row = self.row(i);
                let out_row = &mut out.data[i * m..(i + 1) * m];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = a_row
                        .iter()
                        .zip(rhs.row(j))
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>();
                }
            }
        } else {
            gemm_into(
                &Plain(self),
                &Trans(rhs),
                &mut out,
                threads_for(work),
                false,
            );
        }
        Ok(out)
    }

    /// Matrix product with a transposed left operand: `selfᵀ * rhs`, for
    /// `self` of shape `k×n` and `rhs` of shape `k×m`, **without**
    /// materializing the transpose.
    ///
    /// This is the `Mᵀ U` shape of the NMF/PMF multiplicative updates; the
    /// packed kernel packs `selfᵀ` straight out of the row-major storage
    /// (columns of a row-major matrix are contiguous in the transposed
    /// view's rows), and small products run a k-outer saxpy accumulation.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix> {
        let work = self.cols * self.rows * rhs.cols;
        self.matmul_tn_impl(rhs, threads_for(work))
    }

    /// [`Matrix::matmul_tn`] with an explicit worker count (bitwise
    /// identical for every count); the streaming cross-product accumulator
    /// uses it to run chunk products inline while parallelizing across
    /// chunks.
    pub(crate) fn matmul_tn_impl(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (n, k, m) = (self.cols, self.rows, rhs.cols);
        let work = n * k * m;
        let mut out = Matrix::zeros(n, m);
        if work < MATMUL_BLOCKED_MIN_WORK {
            for kk in 0..k {
                let a_row = self.row(kk);
                let b_row = rhs.row(kk);
                for (i, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    for (o, &b) in out.data[i * m..(i + 1) * m].iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        } else {
            gemm_into(&Trans(self), &Plain(rhs), &mut out, threads, false);
        }
        Ok(out)
    }

    /// Reference matrix product: the straightforward i-k-j triple loop the
    /// repository started from, with the innermost loop walking both
    /// operands contiguously and skipping zero entries of `self` (a win on
    /// the sparse synthetic workloads).
    ///
    /// Kept callable so the `linalg_kernels` bench can track the blocked
    /// kernel's speedup against it and so tests can cross-check the two.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Computes the Gram matrix `selfᵀ * self` without materializing the
    /// transpose, exploiting symmetry (SYRK): only the upper triangle is
    /// computed — half the multiplications of a general product — and then
    /// mirrored into the lower one.
    ///
    /// Large products run the packed register-tiled kernel over a
    /// transposed-LHS view, skipping every tile strictly below the
    /// diagonal; small ones run an upper-triangle row saxpy. The result is
    /// exactly symmetric by construction.
    pub fn gram(&self) -> Matrix {
        let (n, m) = self.shape();
        self.gram_impl(threads_for(n * m * m / 2))
    }

    /// [`Matrix::gram`] with an explicit worker count (bitwise identical
    /// for every count); the streaming Gram accumulator uses it to run
    /// chunk SYRKs inline while parallelizing across chunks.
    pub(crate) fn gram_impl(&self, threads: usize) -> Matrix {
        let (n, m) = self.shape();
        let mut out = Matrix::zeros(m, m);
        let work = n * m * m / 2;
        if work < MATMUL_BLOCKED_MIN_WORK {
            for i in 0..n {
                let row = self.row(i);
                for a in 0..m {
                    let ra = row[a];
                    if ra == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[a * m + a..(a + 1) * m];
                    for (o, &rb) in out_row.iter_mut().zip(&row[a..]) {
                        *o += ra * rb;
                    }
                }
            }
        } else {
            gemm_into(&Trans(self), &Plain(self), &mut out, threads, true);
        }
        mirror_upper(&mut out);
        out
    }

    /// Computes the left Gram matrix `self * selfᵀ` without materializing
    /// the transpose, exploiting symmetry exactly like [`Matrix::gram`]
    /// (upper triangle + mirror).
    pub fn gram_left(&self) -> Matrix {
        let (n, k) = self.shape();
        let mut out = Matrix::zeros(n, n);
        let work = n * n * k / 2;
        if work < MATMUL_BLOCKED_MIN_WORK {
            for i in 0..n {
                let row_i = self.row(i);
                for j in i..n {
                    out.data[i * n + j] = row_i
                        .iter()
                        .zip(self.row(j))
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>();
                }
            }
        } else {
            gemm_into(
                &Plain(self),
                &Trans(self),
                &mut out,
                threads_for(work),
                true,
            );
        }
        mirror_upper(&mut out);
        out
    }

    /// Alias for [`Matrix::gram_left`], kept for the callers that predate
    /// the SYRK kernels.
    pub fn outer_gram(&self) -> Matrix {
        self.gram_left()
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Each row reduces through `dot_unrolled`: single-threaded with a
    /// fixed summation order, so the result is bitwise reproducible
    /// across runs and thread counts. Rows are walked in pairs
    /// (`dot2_unrolled`) so each load of `v` feeds two rows — a
    /// throughput detail that leaves every row's summation order (and so
    /// the result) unchanged.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        let mut i = 0;
        while i + 1 < self.rows {
            let (s0, s1) = dot2_unrolled(self.row(i), self.row(i + 1), v);
            out.push(s0);
            out.push(s1);
            i += 2;
        }
        if i < self.rows {
            out.push(dot_unrolled(self.row(i), v));
        }
        Ok(out)
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Keeps the first `r` columns (truncation used for rank-`r`
    /// decompositions).
    pub fn take_cols(&self, r: usize) -> Matrix {
        let r = r.min(self.cols);
        let mut out = Matrix::zeros(self.rows, r);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..r]);
        }
        out
    }

    /// Copies the half-open column range `start..end` into a new matrix
    /// (the column-block counterpart of [`Matrix::take_cols`], used by the
    /// streaming left-product accumulator to pair lhs column blocks with
    /// row chunks of the right operand).
    pub fn col_range(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "column range {start}..{end} out of bounds for {} columns",
                self.cols
            )));
        }
        let width = end - start;
        let mut out = Matrix::zeros(self.rows, width);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        Ok(out)
    }

    /// Keeps the first `r` rows.
    pub fn take_rows(&self, r: usize) -> Matrix {
        let r = r.min(self.rows);
        Matrix {
            rows: r,
            cols: self.cols,
            data: self.data[..r * self.cols].to_vec(),
        }
    }

    /// Returns a new matrix whose columns are permuted: output column `j`
    /// is input column `perm[j]`.
    pub fn permute_cols(&self, perm: &[usize]) -> Result<Matrix> {
        if perm.len() != self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "permutation length {} does not match column count {}",
                perm.len(),
                self.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (j_new, &j_old) in perm.iter().enumerate() {
            if j_old >= self.cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "permutation index {j_old} out of bounds for {} columns",
                    self.cols
                )));
            }
            for i in 0..self.rows {
                out[(i, j_new)] = self[(i, j_old)];
            }
        }
        Ok(out)
    }

    /// Returns a copy with column `j` scaled by `scales[j]` — i.e. the
    /// product `self · diag(scales)` in `O(n·m)` instead of the `O(n·m²)`
    /// of materializing the diagonal matrix and multiplying.
    ///
    /// This is the kernel behind every `U Σ` / `V Σ⁻¹` factor scaling in
    /// the SVD/eigen reconstructions and the pseudo-inverse.
    pub fn scale_cols(&self, scales: &[f64]) -> Result<Matrix> {
        if scales.len() != self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "scale vector length {} does not match column count {}",
                scales.len(),
                self.cols
            )));
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            for (x, &s) in out.row_mut(i).iter_mut().zip(scales) {
                *x *= s;
            }
        }
        Ok(out)
    }

    /// Multiply column `j` by `s` in place.
    pub fn scale_col(&mut self, j: usize, s: f64) {
        for i in 0..self.rows {
            self[(i, j)] *= s;
        }
    }

    /// Euclidean norm of column `j`.
    pub fn col_norm(&self, j: usize) -> f64 {
        (0..self.rows)
            .map(|i| self[(i, j)] * self[(i, j)])
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product of columns `a` and `b`.
    pub fn col_dot(&self, a: usize, b: usize) -> f64 {
        (0..self.rows).map(|i| self[(i, a)] * self[(i, b)]).sum()
    }

    /// True when every corresponding entry differs by at most `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Relative Frobenius distance `‖self − rhs‖_F / ‖self‖_F`
    /// (0 when `self` is the zero matrix and `rhs` equals it).
    pub fn relative_error(&self, rhs: &Matrix) -> Result<f64> {
        let diff = self.sub(rhs)?;
        let denom = self.frobenius_norm();
        if denom == 0.0 {
            return Ok(if diff.frobenius_norm() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            });
        }
        Ok(diff.frobenius_norm() / denom)
    }
}

/// Serial dot product with a fixed 8-lane unrolled summation order.
///
/// The eight independent accumulators break the additive dependency chain
/// that keeps a strictly sequential `Σ aᵢ·bᵢ` reduction scalar, letting the
/// compiler vectorize the loop — while the order in which partial sums are
/// combined stays fixed, so the result is bitwise reproducible across runs
/// and thread counts (it is still a *different* fixed order than the
/// sequential reduction, like every kernel-level accumulator split).
pub(crate) fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    const LANES: usize = 8;
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    let mut acc = [0.0_f64; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&x, &y) in a[split..n].iter().zip(&b[split..n]) {
        s += x * y;
    }
    s
}

/// Two [`dot_unrolled`] products against a shared right-hand side,
/// interleaved so each load of `b` feeds both rows. The per-row summation
/// order is exactly [`dot_unrolled`]'s, so each result is bitwise identical
/// to the single-row call — this is a throughput optimization for
/// row-blocked matrix–vector products, not a different reduction.
pub(crate) fn dot2_unrolled(a0: &[f64], a1: &[f64], b: &[f64]) -> (f64, f64) {
    const LANES: usize = 8;
    let n = a0.len().min(a1.len()).min(b.len());
    let split = n - n % LANES;
    let mut acc0 = [0.0_f64; LANES];
    let mut acc1 = [0.0_f64; LANES];
    for ((c0, c1), cb) in a0[..split]
        .chunks_exact(LANES)
        .zip(a1[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc0[l] += c0[l] * cb[l];
            acc1[l] += c1[l] * cb[l];
        }
    }
    let mut s0 =
        ((acc0[0] + acc0[1]) + (acc0[2] + acc0[3])) + ((acc0[4] + acc0[5]) + (acc0[6] + acc0[7]));
    let mut s1 =
        ((acc1[0] + acc1[1]) + (acc1[2] + acc1[3])) + ((acc1[4] + acc1[5]) + (acc1[6] + acc1[7]));
    for ((&x0, &x1), &y) in a0[split..n].iter().zip(&a1[split..n]).zip(&b[split..n]) {
        s0 += x0 * y;
        s1 += x1 * y;
    }
    (s0, s1)
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8usize;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_square());
        assert!(Matrix::zeros(2, 2).is_square());
    }

    #[test]
    fn identity_diagonal() {
        let i3 = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(i3[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn get_set_checked() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), 5.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn row_and_col_accessors() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn set_col_replaces_column() {
        let mut m = sample();
        m.set_col(0, &[9.0, 8.0]).unwrap();
        assert_eq!(m.col(0), vec![9.0, 8.0]);
        assert!(m.set_col(0, &[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_hadamard() {
        let m = sample();
        let sum = m.add(&m).unwrap();
        assert_eq!(sum[(1, 2)], 12.0);
        let diff = sum.sub(&m).unwrap();
        assert_eq!(diff, m);
        let prod = m.hadamard(&m).unwrap();
        assert_eq!(prod[(0, 1)], 4.0);
        assert!(m.add(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn guarded_division_handles_zero_denominator() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 4.0]]);
        let q = a.hadamard_div_guarded(&b, 1e-12).unwrap();
        assert_eq!(q[(0, 0)], 0.0);
        assert_eq!(q[(0, 1)], 0.5);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i = Matrix::identity(3);
        assert_eq!(m.matmul(&i).unwrap(), m);
    }

    /// Deterministic pseudo-random fill that does not depend on the `rand`
    /// stub, so kernel tests control their inputs exactly.
    fn lcg_matrix(rows: usize, cols: usize, mut state: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn blocked_matmul_matches_reference_kernel() {
        // Sizes straddling the block size and the dispatch thresholds,
        // including ragged shapes that exercise the unroll remainder.
        for &(n, k, m) in &[(33usize, 45usize, 37usize), (64, 64, 64), (70, 129, 53)] {
            let a = lcg_matrix(n, k, 1 + n as u64);
            let b = lcg_matrix(k, m, 99 + m as u64);
            let fast = a.matmul(&b).unwrap();
            let reference = a.matmul_naive(&b).unwrap();
            let scale = reference.max_abs().max(1.0);
            assert!(
                fast.approx_eq(&reference, 1e-12 * scale),
                "blocked kernel diverged from reference at {n}x{k}x{m}"
            );
        }
    }

    #[test]
    fn matmul_naive_rejects_bad_shapes() {
        let a = sample();
        assert!(a.matmul_naive(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn packed_kernels_are_bitwise_deterministic_across_thread_counts() {
        // All shapes above MATMUL_PAR_MIN_WORK, so the row-panel split
        // actually engages the worker pool. Bitwise equality — not
        // approx_eq — is the contract: panel boundaries must never change
        // the arithmetic, for the general product and for every packed
        // variant (SYRK gram, transposed-operand products).
        let a = lcg_matrix(96, 80, 7);
        let b = lcg_matrix(80, 96, 11);
        let c = lcg_matrix(100, 80, 13);
        const _: () = assert!(96 * 80 * 96 >= MATMUL_PAR_MIN_WORK);
        const _: () = assert!(96 * 80 * 80 / 2 >= MATMUL_PAR_MIN_WORK);
        let run = || {
            (
                a.matmul(&b).unwrap(),
                a.gram(),
                a.gram_left(),
                a.matmul_nt(&c).unwrap(),
                b.matmul_tn(&b).unwrap(),
            )
        };
        let _guard = crate::test_env::THREADS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(ivmf_par::THREADS_ENV).ok();
        std::env::set_var(ivmf_par::THREADS_ENV, "1");
        let single = run();
        std::env::set_var(ivmf_par::THREADS_ENV, "4");
        let quad = run();
        match prev {
            Some(v) => std::env::set_var(ivmf_par::THREADS_ENV, v),
            None => std::env::remove_var(ivmf_par::THREADS_ENV),
        }
        for (label, s, q) in [
            ("matmul", &single.0, &quad.0),
            ("gram", &single.1, &quad.1),
            ("gram_left", &single.2, &quad.2),
            ("matmul_nt", &single.3, &quad.3),
            ("matmul_tn", &single.4, &quad.4),
        ] {
            assert_eq!(
                s.as_slice(),
                q.as_slice(),
                "{label}: IVMF_THREADS=1 and IVMF_THREADS=4 must agree bitwise"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_packed_kernels_match_reference(seed in 0u64..1_000_000) {
            // Random shapes straddling the packed-kernel dispatch threshold
            // (and, at the top of the range, the SYRK dispatch too): every
            // packed kernel must match the naive reference within a
            // componentwise tolerance.
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(28usize..78);
            let k = rng.gen_range(28usize..78);
            let m = rng.gen_range(28usize..78);
            let a = lcg_matrix(n, k, seed ^ 1);
            let b = lcg_matrix(k, m, seed ^ 2);
            let bt = lcg_matrix(m, k, seed ^ 3);
            let tol_of = |reference: &Matrix| 1e-12 * reference.max_abs().max(1.0) * k as f64;

            let reference = a.matmul_naive(&b).unwrap();
            proptest::prop_assert!(a.matmul(&b).unwrap().approx_eq(&reference, tol_of(&reference)));

            let reference = a.matmul_naive(&bt.transpose()).unwrap();
            proptest::prop_assert!(a.matmul_nt(&bt).unwrap().approx_eq(&reference, tol_of(&reference)));

            let ta = lcg_matrix(k, n, seed ^ 4);
            let reference = ta.transpose().matmul_naive(&b).unwrap();
            proptest::prop_assert!(ta.matmul_tn(&b).unwrap().approx_eq(&reference, tol_of(&reference)));

            let reference = a.transpose().matmul_naive(&a).unwrap();
            proptest::prop_assert!(a.gram().approx_eq(&reference, tol_of(&reference)));

            let reference = a.matmul_naive(&a.transpose()).unwrap();
            proptest::prop_assert!(a.gram_left().approx_eq(&reference, tol_of(&reference)));
        }
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m).unwrap();
        assert!(g.approx_eq(&expected, 1e-12));
        let og = m.outer_gram();
        let expected2 = m.matmul(&m.transpose()).unwrap();
        assert!(og.approx_eq(&expected2, 1e-12));
    }

    #[test]
    fn syrk_gram_is_exactly_symmetric_and_matches_reference_at_scale() {
        // Large enough that the packed SYRK path (upper triangle + mirror)
        // engages rather than the small-product fallback.
        let m = lcg_matrix(70, 60, 31);
        for g in [m.gram(), m.gram_left()] {
            for i in 0..g.rows() {
                for j in 0..i {
                    assert_eq!(g[(i, j)].to_bits(), g[(j, i)].to_bits());
                }
            }
        }
        let scale = m.max_abs().max(1.0);
        let expected = m.transpose().matmul_naive(&m).unwrap();
        assert!(m.gram().approx_eq(&expected, 1e-10 * scale * scale));
        let expected_left = m.matmul_naive(&m.transpose()).unwrap();
        assert!(m
            .gram_left()
            .approx_eq(&expected_left, 1e-10 * scale * scale));
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        // Below and above the packed-kernel dispatch threshold, including
        // ragged shapes that exercise the zero-padded tail strips.
        for &(n, k, m) in &[(3usize, 5usize, 4usize), (41, 67, 39), (70, 70, 70)] {
            let a = lcg_matrix(n, k, 5 + n as u64);
            let b = lcg_matrix(m, k, 6 + m as u64);
            let fast = a.matmul_nt(&b).unwrap();
            let reference = a.matmul_naive(&b.transpose()).unwrap();
            let scale = reference.max_abs().max(1.0);
            assert!(
                fast.approx_eq(&reference, 1e-12 * scale),
                "matmul_nt diverged at {n}x{k}x{m}"
            );

            let at = lcg_matrix(k, n, 7 + n as u64);
            let bt = lcg_matrix(k, m, 8 + m as u64);
            let fast = at.matmul_tn(&bt).unwrap();
            let reference = at.transpose().matmul_naive(&bt).unwrap();
            let scale = reference.max_abs().max(1.0);
            assert!(
                fast.approx_eq(&reference, 1e-12 * scale),
                "matmul_tn diverged at {n}x{k}x{m}"
            );
        }
        assert!(sample().matmul_nt(&Matrix::zeros(2, 2)).is_err());
        assert!(sample().matmul_tn(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn scale_cols_matches_diagonal_product() {
        let m = sample();
        let scales = [2.0, 0.5, -1.0];
        let scaled = m.scale_cols(&scales).unwrap();
        let expected = m.matmul(&Matrix::from_diag(&scales)).unwrap();
        assert_eq!(scaled, expected);
        assert!(m.scale_cols(&[1.0]).is_err());
    }

    #[test]
    fn matvec_known_product() {
        let m = sample();
        let v = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(v, vec![6.0, 15.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_map() {
        let m = sample().scale(2.0);
        assert_eq!(m[(0, 0)], 2.0);
        let m2 = m.map(|x| x - 1.0);
        assert_eq!(m2[(0, 0)], 1.0);
    }

    #[test]
    fn mean_with_averages_entries() {
        let a = Matrix::from_rows(&[vec![0.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 4.0]]);
        assert_eq!(
            a.mean_with(&b).unwrap(),
            Matrix::from_rows(&[vec![1.0, 3.0]])
        );
    }

    #[test]
    fn take_cols_and_rows_truncate() {
        let m = sample();
        let c = m.take_cols(2);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(1, 1)], 5.0);
        let r = m.take_rows(1);
        assert_eq!(r.shape(), (1, 3));
        // Requesting more than available keeps everything.
        assert_eq!(m.take_cols(10), m);
    }

    #[test]
    fn permute_cols_reorders() {
        let m = sample();
        let p = m.permute_cols(&[2, 0, 1]).unwrap();
        assert_eq!(p.col(0), vec![3.0, 6.0]);
        assert_eq!(p.col(1), vec![1.0, 4.0]);
        assert!(m.permute_cols(&[0, 1]).is_err());
        assert!(m.permute_cols(&[0, 1, 9]).is_err());
    }

    #[test]
    fn column_norm_and_dot() {
        let m = Matrix::from_rows(&[vec![3.0, 1.0], vec![4.0, 0.0]]);
        assert!((m.col_norm(0) - 5.0).abs() < 1e-12);
        assert!((m.col_dot(0, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scale_col_in_place() {
        let mut m = sample();
        m.scale_col(1, 10.0);
        assert_eq!(m.col(1), vec![20.0, 50.0]);
    }

    #[test]
    fn relative_error_behaviour() {
        let m = sample();
        assert_eq!(m.relative_error(&m).unwrap(), 0.0);
        let zero = Matrix::zeros(2, 3);
        assert_eq!(zero.relative_error(&zero).unwrap(), 0.0);
        assert!(zero.relative_error(&m).unwrap().is_infinite());
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m[(0, 0)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn debug_format_is_compact() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("…"));
    }
}
