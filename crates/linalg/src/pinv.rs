//! Moore–Penrose pseudo-inverse.
//!
//! Section 4.4.2.2 of the paper: when the averaged factor matrix `V_avg`
//! is ill-conditioned (or rectangular), ISVD3/ISVD4 fall back to the
//! pseudo-inverse computed through the SVD, zeroing singular values below a
//! threshold. The paper uses an absolute threshold of `0.1`; this module
//! exposes the threshold as a parameter and provides that value as
//! [`PAPER_SINGULAR_VALUE_CUTOFF`].

use crate::svd::svd;
use crate::{Matrix, Result};

/// The absolute singular-value cutoff used by the paper when computing the
/// pseudo-inverse of factor matrices ("replace singular values smaller than
/// 0.1 with zero", Section 4.4.2.2).
pub const PAPER_SINGULAR_VALUE_CUTOFF: f64 = 0.1;

/// Computes the Moore–Penrose pseudo-inverse `A⁺` of `a`.
///
/// Singular values `σ ≤ cutoff` are treated as zero (their reciprocal is not
/// taken). Pass `0.0` to keep every strictly positive singular value, or
/// [`PAPER_SINGULAR_VALUE_CUTOFF`] to match the paper's behaviour exactly.
///
/// # Errors
///
/// Propagates SVD failures (empty input, non-convergence).
pub fn pinv(a: &Matrix, cutoff: f64) -> Result<Matrix> {
    let f = svd(a)?;
    // A⁺ = V Σ⁺ Uᵀ where Σ⁺ reciprocates the retained singular values:
    // V Σ⁺ is a column scaling (no diagonal matrix, no O(n³) product) and
    // the trailing Uᵀ product runs transpose-free.
    let smax = f.singular_values.first().copied().unwrap_or(0.0);
    // Always guard against degenerate singular values even when the caller
    // requests cutoff = 0. The Gram-based SVD resolves zero singular values
    // only down to ~√ε·σ_max, so the floor must sit above that level.
    let relative_floor = smax * 1e-7;
    let inv_sigma: Vec<f64> = f
        .singular_values
        .iter()
        .map(|&s| {
            if s > cutoff && s > relative_floor {
                1.0 / s
            } else {
                0.0
            }
        })
        .collect();
    f.v.scale_cols(&inv_sigma)?.matmul_nt(&f.u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::invert;
    use crate::random::{low_rank_matrix, uniform_matrix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pinv_of_invertible_matrix_matches_inverse() {
        let mut rng = SmallRng::seed_from_u64(51);
        let a = uniform_matrix(&mut rng, 6, 6, -1.0, 1.0)
            .add(&Matrix::identity(6).scale(4.0))
            .unwrap();
        let p = pinv(&a, 0.0).unwrap();
        let inv = invert(&a).unwrap();
        assert!(p.approx_eq(&inv, 1e-8));
    }

    #[test]
    fn pinv_satisfies_penrose_conditions_for_rank_deficient_matrix() {
        let mut rng = SmallRng::seed_from_u64(52);
        let a = low_rank_matrix(&mut rng, 10, 7, 3);
        let p = pinv(&a, 0.0).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(apa.approx_eq(&a, 1e-6), "A P A != A");
        assert!(pap.approx_eq(&p, 1e-6), "P A P != P");
        // A P and P A are symmetric.
        let ap = a.matmul(&p).unwrap();
        assert!(ap.approx_eq(&ap.transpose(), 1e-6));
        let pa = p.matmul(&a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), 1e-6));
    }

    #[test]
    fn pinv_of_rectangular_matrix_is_left_inverse_when_full_column_rank() {
        let mut rng = SmallRng::seed_from_u64(53);
        let a = uniform_matrix(&mut rng, 12, 4, -1.0, 1.0);
        let p = pinv(&a, 0.0).unwrap();
        assert_eq!(p.shape(), (4, 12));
        assert!(p.matmul(&a).unwrap().approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn cutoff_zeroes_small_singular_values() {
        // diag(10, 0.01): with the paper cutoff (0.1) the second direction
        // is discarded entirely.
        let a = Matrix::from_diag(&[10.0, 0.01]);
        let p = pinv(&a, PAPER_SINGULAR_VALUE_CUTOFF).unwrap();
        assert!((p[(0, 0)] - 0.1).abs() < 1e-12);
        assert!(p[(1, 1)].abs() < 1e-12);
        // Without the cutoff it is a proper inverse.
        let p_full = pinv(&a, 0.0).unwrap();
        assert!((p_full[(1, 1)] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let a = Matrix::zeros(3, 5);
        let p = pinv(&a, 0.0).unwrap();
        assert_eq!(p.shape(), (5, 3));
        assert!(p.frobenius_norm() < 1e-15);
    }
}
