//! Deterministic fault injection for crash-safety tests.
//!
//! The snapshot and stream layers promise graceful recovery from torn
//! writes, truncation and bit rot. Promises need adversaries:
//! [`FaultyWriter`] and [`FaultyReader`] wrap any `Write`/`Read` and
//! inject exactly one scheduled fault at a deterministic byte offset —
//! an I/O error (the process was killed / the disk went away), a silent
//! truncation (buffered bytes lost to a power cut that the writer never
//! saw fail), or a single flipped bit (media corruption past the
//! checksum's write time). Tests drive the real serialization code
//! through these wrappers and assert the recovery policy instead of
//! hand-crafting corrupt files.

use std::io::{self, Read, Write};

/// What happens when the stream crosses the scheduled byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an I/O error at the offset (a kill or device error the
    /// caller observes).
    Fail,
    /// Silently discard everything from the offset on while reporting
    /// success (writer), or report end-of-stream (reader) — the torn
    /// write nobody noticed.
    Truncate,
    /// Flip the given bit (0–7) of the byte at the offset and continue.
    FlipBit(u8),
}

/// One scheduled fault: `kind` triggers once the stream position reaches
/// byte `at` (0-based).
#[derive(Debug, Clone, Copy)]
pub struct FaultSchedule {
    /// Byte offset at which the fault triggers.
    pub at: u64,
    /// The fault injected there.
    pub kind: FaultKind,
}

impl FaultSchedule {
    /// An I/O error once `at` bytes have passed.
    pub fn fail_at(at: u64) -> Self {
        FaultSchedule {
            at,
            kind: FaultKind::Fail,
        }
    }

    /// Silent loss of every byte from offset `at` on.
    pub fn truncate_at(at: u64) -> Self {
        FaultSchedule {
            at,
            kind: FaultKind::Truncate,
        }
    }

    /// Bit `bit` of the byte at offset `at` flipped in place.
    pub fn flip_bit(at: u64, bit: u8) -> Self {
        FaultSchedule {
            at,
            kind: FaultKind::FlipBit(bit % 8),
        }
    }
}

fn injected_error() -> io::Error {
    io::Error::other("injected fault: simulated I/O failure")
}

/// A `Write` wrapper injecting one scheduled fault at a deterministic
/// byte offset. See the [module docs](self).
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    schedule: FaultSchedule,
    written: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: W, schedule: FaultSchedule) -> Self {
        FaultyWriter {
            inner,
            schedule,
            written: 0,
        }
    }

    /// Total bytes the caller has successfully written (including bytes
    /// a `Truncate` fault silently discarded).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let at = self.schedule.at;
        match self.schedule.kind {
            FaultKind::Fail => {
                if self.written >= at {
                    return Err(injected_error());
                }
                // Let the healthy prefix through, then fail on the next
                // call — mirrors a partial write followed by an error.
                let healthy = ((at - self.written) as usize).min(buf.len());
                let n = self.inner.write(&buf[..healthy])?;
                self.written += n as u64;
                Ok(n)
            }
            FaultKind::Truncate => {
                let healthy = if self.written >= at {
                    0
                } else {
                    ((at - self.written) as usize).min(buf.len())
                };
                if healthy > 0 {
                    self.inner.write_all(&buf[..healthy])?;
                }
                // Everything past the offset vanishes, yet the caller
                // sees success — the lying-buffer scenario.
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            FaultKind::FlipBit(bit) => {
                let start = self.written;
                let end = start + buf.len() as u64;
                if at >= start && at < end {
                    let mut copy = buf.to_vec();
                    copy[(at - start) as usize] ^= 1 << bit;
                    self.inner.write_all(&copy)?;
                } else {
                    self.inner.write_all(buf)?;
                }
                self.written = end;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` wrapper injecting one scheduled fault at a deterministic
/// byte offset. See the [module docs](self).
#[derive(Debug)]
pub struct FaultyReader<R: Read> {
    inner: R,
    schedule: FaultSchedule,
    read: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: R, schedule: FaultSchedule) -> Self {
        FaultyReader {
            inner,
            schedule,
            read: 0,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let at = self.schedule.at;
        match self.schedule.kind {
            FaultKind::Fail => {
                if self.read >= at {
                    return Err(injected_error());
                }
                let healthy = ((at - self.read) as usize).min(buf.len());
                let n = self.inner.read(&mut buf[..healthy])?;
                self.read += n as u64;
                Ok(n)
            }
            FaultKind::Truncate => {
                if self.read >= at {
                    return Ok(0); // premature, silent end-of-stream
                }
                let healthy = ((at - self.read) as usize).min(buf.len());
                let n = self.inner.read(&mut buf[..healthy])?;
                self.read += n as u64;
                Ok(n)
            }
            FaultKind::FlipBit(bit) => {
                let n = self.inner.read(buf)?;
                let start = self.read;
                let end = start + n as u64;
                if at >= start && at < end {
                    buf[(at - start) as usize] ^= 1 << bit;
                }
                self.read = end;
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn failing_writer_errors_exactly_at_the_scheduled_offset() {
        let mut w = FaultyWriter::new(Vec::new(), FaultSchedule::fail_at(5));
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2); // partial up to the fault
        assert!(w.write(b"hi").is_err());
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn truncating_writer_lies_about_success() {
        let mut w = FaultyWriter::new(Vec::new(), FaultSchedule::truncate_at(4));
        w.write_all(b"abcdef").unwrap(); // reports success...
        assert_eq!(w.bytes_written(), 6);
        assert_eq!(w.into_inner(), b"abcd"); // ...but dropped the tail
    }

    #[test]
    fn bit_flipping_writer_corrupts_one_bit_and_continues() {
        let mut w = FaultyWriter::new(Vec::new(), FaultSchedule::flip_bit(2, 0));
        w.write_all(b"aaaa").unwrap();
        assert_eq!(w.into_inner(), b"aa\x60a"); // 'a' = 0x61, bit 0 flipped
    }

    #[test]
    fn faulty_reader_mirrors_the_writer_faults() {
        let data = b"hello world".to_vec();
        // Fail.
        let mut r = FaultyReader::new(&data[..], FaultSchedule::fail_at(5));
        let mut buf = String::new();
        assert!(r.read_to_string(&mut buf).is_err());
        // Truncate: clean EOF at the offset.
        let mut r = BufReader::new(FaultyReader::new(&data[..], FaultSchedule::truncate_at(5)));
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "hello");
        // Flip a bit.
        let mut r = FaultyReader::new(&data[..], FaultSchedule::flip_bit(0, 1));
        let mut all = Vec::new();
        r.read_to_end(&mut all).unwrap();
        assert_eq!(all[0], b'h' ^ 2);
        assert_eq!(&all[1..], &data[1..]);
    }
}
