//! Train/test splitting helpers used by the classification and
//! collaborative-filtering experiments.

use rand::Rng;

/// A train/test split expressed as index lists into the original data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices belonging to the training portion.
    pub train: Vec<usize>,
    /// Indices belonging to the test portion.
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of indices in the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// True when the split covers no items.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }
}

/// Splits item indices uniformly at random: each index goes to the training
/// set with probability `train_fraction` (at least one element ends up on
/// each side when there are two or more items).
pub fn random_split<R: Rng + ?Sized>(n: usize, train_fraction: f64, rng: &mut R) -> Split {
    let mut indices: Vec<usize> = (0..n).collect();
    shuffle(&mut indices, rng);
    let mut train_len = ((n as f64) * train_fraction).round() as usize;
    if n >= 2 {
        train_len = train_len.clamp(1, n - 1);
    } else {
        train_len = train_len.min(n);
    }
    let test = indices.split_off(train_len);
    Split {
        train: indices,
        test,
    }
}

/// Stratified split: within every class label, `train_fraction` of the
/// samples (rounded, but at least one when the class has two or more
/// members) goes to the training set. This mirrors the paper's ORL
/// protocol of "randomly select 50% rows per individual as training data".
pub fn stratified_split<R: Rng + ?Sized>(
    labels: &[usize],
    train_fraction: f64,
    rng: &mut R,
) -> Split {
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (idx, &label) in labels.iter().enumerate() {
        per_class[label].push(idx);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for members in per_class.iter_mut() {
        if members.is_empty() {
            continue;
        }
        shuffle(members, rng);
        let mut take = ((members.len() as f64) * train_fraction).round() as usize;
        if members.len() >= 2 {
            take = take.clamp(1, members.len() - 1);
        } else {
            take = take.min(members.len());
        }
        train.extend_from_slice(&members[..take]);
        test.extend_from_slice(&members[take..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Split { train, test }
}

fn shuffle<R: Rng + ?Sized>(v: &mut [usize], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_split_partitions_all_indices() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = random_split(100, 0.8, &mut rng);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.train.len(), 80);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_split_never_leaves_a_side_empty_for_n_ge_2() {
        let mut rng = SmallRng::seed_from_u64(2);
        for frac in [0.0, 0.01, 0.99, 1.0] {
            let s = random_split(5, frac, &mut rng);
            assert!(!s.train.is_empty() && !s.test.is_empty(), "frac {frac}");
        }
        let single = random_split(1, 1.0, &mut rng);
        assert_eq!(single.train.len() + single.test.len(), 1);
        let empty = random_split(0, 0.5, &mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn stratified_split_balances_classes() {
        // 4 classes with 10 members each.
        let labels: Vec<usize> = (0..40).map(|i| i / 10).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let s = stratified_split(&labels, 0.5, &mut rng);
        assert_eq!(s.train.len(), 20);
        assert_eq!(s.test.len(), 20);
        for class in 0..4 {
            let in_train = s.train.iter().filter(|&&i| labels[i] == class).count();
            assert_eq!(in_train, 5, "class {class} not balanced");
        }
    }

    #[test]
    fn stratified_split_handles_tiny_classes() {
        let labels = vec![0, 0, 1, 2, 2, 2];
        let mut rng = SmallRng::seed_from_u64(4);
        let s = stratified_split(&labels, 0.5, &mut rng);
        assert_eq!(s.len(), labels.len());
        // The singleton class 1 lands somewhere, and every multi-member
        // class has at least one sample on each side.
        for class in [0usize, 2] {
            assert!(s.train.iter().any(|&i| labels[i] == class));
            assert!(s.test.iter().any(|&i| labels[i] == class));
        }
    }

    #[test]
    fn splits_are_deterministic_for_fixed_seed() {
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let a = stratified_split(&labels, 0.5, &mut SmallRng::seed_from_u64(7));
        let b = stratified_split(&labels, 0.5, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
