//! ORL-like synthetic face corpus and interval construction
//! (Sections 6.1.2 / 6.4 and supplementary F.1).
//!
//! The ORL data set (40 individuals × 10 grayscale images, 32 × 32 pixels)
//! cannot be redistributed, so this module generates a synthetic corpus
//! with the same shape and, crucially, the same *class structure*: every
//! individual has a smooth per-person "face template" (a mixture of 2-D
//! Gaussian blobs with person-specific positions/intensities) and each of
//! the 10 images is a perturbed rendering of that template (blob jitter +
//! pixel noise), so within-person similarity is much higher than
//! between-person similarity — which is what the classification and
//! clustering experiments exercise.
//!
//! The interval construction follows supplementary F.1 exactly: for each
//! pixel, the standard deviation of the pixel values in the surrounding
//! `(2r+1)²` window is computed and the interval is
//! `[x − α·std, x + α·std]`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use ivmf_interval::IntervalMatrix;
use ivmf_linalg::{norms, Matrix};

/// Configuration of the synthetic face corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaceCorpusConfig {
    /// Number of individuals (ORL: 40).
    pub individuals: usize,
    /// Images per individual (ORL: 10).
    pub images_per_individual: usize,
    /// Image side length in pixels (ORL experiments use 32 and 64).
    pub resolution: usize,
    /// Number of Gaussian blobs composing a face template.
    pub blobs_per_face: usize,
    /// Standard deviation of per-image blob-position jitter (in pixels).
    pub jitter: f64,
    /// Standard deviation of additive pixel noise.
    pub pixel_noise: f64,
}

impl FaceCorpusConfig {
    /// The ORL-like default: 40 individuals × 10 images at 32 × 32.
    pub fn orl_like() -> Self {
        FaceCorpusConfig {
            individuals: 40,
            images_per_individual: 10,
            resolution: 32,
            blobs_per_face: 6,
            jitter: 1.0,
            pixel_noise: 0.02,
        }
    }

    /// A reduced corpus for fast tests and examples.
    pub fn small() -> Self {
        FaceCorpusConfig {
            individuals: 8,
            images_per_individual: 6,
            resolution: 16,
            blobs_per_face: 4,
            jitter: 0.8,
            pixel_noise: 0.02,
        }
    }

    /// Sets the image resolution (e.g. 64 for the Table 3 experiment).
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        self.resolution = resolution;
        self
    }

    /// Sets the number of individuals.
    pub fn with_individuals(mut self, individuals: usize) -> Self {
        self.individuals = individuals;
        self
    }

    /// Sets the number of images per individual.
    pub fn with_images_per_individual(mut self, images: usize) -> Self {
        self.images_per_individual = images;
        self
    }

    /// Total number of images in the corpus.
    pub fn total_images(&self) -> usize {
        self.individuals * self.images_per_individual
    }

    /// Number of pixels (= feature columns) per image.
    pub fn pixels(&self) -> usize {
        self.resolution * self.resolution
    }
}

/// A face corpus: one image per row, pixel intensities in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct FaceDataset {
    /// `(individuals × images) x pixels` data matrix.
    pub data: Matrix,
    /// Class label (individual id) of each row.
    pub labels: Vec<usize>,
    /// Image side length in pixels.
    pub resolution: usize,
}

impl FaceDataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct individuals.
    pub fn num_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// One Gaussian blob of a face template.
#[derive(Debug, Clone, Copy)]
struct Blob {
    x: f64,
    y: f64,
    sigma: f64,
    amplitude: f64,
}

/// Generates the synthetic face corpus.
pub fn generate_faces<R: Rng + ?Sized>(config: &FaceCorpusConfig, rng: &mut R) -> FaceDataset {
    let res = config.resolution;
    let pixels = config.pixels();
    let mut data = Matrix::zeros(config.total_images(), pixels);
    let mut labels = Vec::with_capacity(config.total_images());

    for person in 0..config.individuals {
        // Person-specific template blobs.
        let template: Vec<Blob> = (0..config.blobs_per_face)
            .map(|_| Blob {
                x: rng.gen_range(0.15..0.85) * res as f64,
                y: rng.gen_range(0.15..0.85) * res as f64,
                sigma: rng.gen_range(0.08..0.22) * res as f64,
                amplitude: rng.gen_range(0.4..1.0),
            })
            .collect();

        for image in 0..config.images_per_individual {
            let row = person * config.images_per_individual + image;
            labels.push(person);
            // Jittered copy of the template for this particular image.
            let blobs: Vec<Blob> = template
                .iter()
                .map(|b| Blob {
                    x: b.x + config.jitter * standard_normal(rng),
                    y: b.y + config.jitter * standard_normal(rng),
                    sigma: b.sigma,
                    amplitude: b.amplitude * (1.0 + 0.05 * standard_normal(rng)),
                })
                .collect();
            for py in 0..res {
                for px in 0..res {
                    let mut value = 0.0;
                    for b in &blobs {
                        let dx = px as f64 - b.x;
                        let dy = py as f64 - b.y;
                        value +=
                            b.amplitude * (-(dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma)).exp();
                    }
                    value += config.pixel_noise * standard_normal(rng);
                    data[(row, py * res + px)] = value.clamp(0.0, 1.5);
                }
            }
        }
    }

    FaceDataset {
        data,
        labels,
        resolution: res,
    }
}

/// Builds the interval-valued face matrix of supplementary F.1: the interval
/// of pixel `(x, y)` in image `i` is `[v − α·std, v + α·std]` where `std` is
/// the standard deviation of the pixels of image `i` within the square
/// window of radius `radius` centred at `(x, y)`.
///
/// Intervals are clamped below at 0 (pixel intensities are non-negative),
/// so the result can also feed the non-negative baselines (NMF / I-NMF).
pub fn interval_faces(dataset: &FaceDataset, radius: usize, alpha: f64) -> IntervalMatrix {
    let res = dataset.resolution;
    let n = dataset.len();
    let mut lo = Matrix::zeros(n, res * res);
    let mut hi = Matrix::zeros(n, res * res);
    let mut window = Vec::with_capacity((2 * radius + 1) * (2 * radius + 1));

    for i in 0..n {
        let row = dataset.data.row(i);
        for py in 0..res {
            for px in 0..res {
                window.clear();
                let y_min = py.saturating_sub(radius);
                let y_max = (py + radius).min(res - 1);
                let x_min = px.saturating_sub(radius);
                let x_max = (px + radius).min(res - 1);
                for wy in y_min..=y_max {
                    for wx in x_min..=x_max {
                        window.push(row[wy * res + wx]);
                    }
                }
                let std = norms::std_dev(&window);
                let v = row[py * res + px];
                let delta = alpha * std;
                lo[(i, py * res + px)] = (v - delta).max(0.0);
                hi[(i, py * res + px)] = v + delta;
            }
        }
    }
    IntervalMatrix::from_bounds(lo, hi).expect("bounds share a shape")
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivmf_linalg::norms::euclidean_distance;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn corpus_has_requested_shape_and_labels() {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = FaceCorpusConfig::small();
        let d = generate_faces(&config, &mut rng);
        assert_eq!(d.len(), config.total_images());
        assert_eq!(d.data.shape(), (config.total_images(), config.pixels()));
        assert_eq!(d.num_classes(), config.individuals);
        assert!(!d.is_empty());
        // Labels are grouped per individual.
        assert_eq!(d.labels[0], 0);
        assert_eq!(*d.labels.last().unwrap(), config.individuals - 1);
    }

    #[test]
    fn within_person_distance_is_smaller_than_between_person() {
        let mut rng = SmallRng::seed_from_u64(2);
        let config = FaceCorpusConfig::small();
        let d = generate_faces(&config, &mut rng);
        let per = config.images_per_individual;
        // Average distance between images 0 and 1 of the same person vs
        // images of persons p and p+1.
        let mut within = 0.0;
        let mut between = 0.0;
        let mut count = 0.0;
        for p in 0..config.individuals - 1 {
            within += euclidean_distance(d.data.row(p * per), d.data.row(p * per + 1));
            between += euclidean_distance(d.data.row(p * per), d.data.row((p + 1) * per));
            count += 1.0;
        }
        assert!(
            within / count < 0.6 * between / count,
            "within {within} not clearly smaller than between {between}"
        );
    }

    #[test]
    fn pixel_values_are_bounded() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = generate_faces(&FaceCorpusConfig::small(), &mut rng);
        assert!(d.data.as_slice().iter().all(|&x| (0.0..=1.5).contains(&x)));
    }

    #[test]
    fn interval_faces_contain_the_original_pixels() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = generate_faces(&FaceCorpusConfig::small(), &mut rng);
        let m = interval_faces(&d, 1, 1.0);
        assert_eq!(m.shape(), d.data.shape());
        assert!(m.is_proper());
        // Each original pixel may have been clamped from below at 0, but the
        // original value itself is non-negative so containment holds.
        assert!(m.contains_matrix(&d.data, 1e-9));
    }

    #[test]
    fn larger_alpha_gives_wider_intervals() {
        let mut rng = SmallRng::seed_from_u64(5);
        let d = generate_faces(&FaceCorpusConfig::small(), &mut rng);
        let narrow = interval_faces(&d, 1, 0.5).mean_span();
        let wide = interval_faces(&d, 1, 2.0).mean_span();
        assert!(wide > narrow);
    }

    #[test]
    fn flat_region_produces_degenerate_intervals() {
        // A constant image has zero neighbourhood std everywhere.
        let d = FaceDataset {
            data: Matrix::filled(1, 16, 0.5),
            labels: vec![0],
            resolution: 4,
        };
        let m = interval_faces(&d, 1, 1.0);
        assert!(m.is_scalar());
    }

    #[test]
    fn resolution_override() {
        let c = FaceCorpusConfig::orl_like().with_resolution(64);
        assert_eq!(c.pixels(), 4096);
        let c2 = FaceCorpusConfig::orl_like()
            .with_individuals(10)
            .with_images_per_individual(3);
        assert_eq!(c2.total_images(), 30);
    }
}
