//! # ivmf-data
//!
//! Synthetic workload generators for every experiment in the paper.
//!
//! The paper evaluates on (i) synthetic uniform interval matrices with
//! controlled density/intensity (Table 1), (ii) synthetic matrices
//! anonymized through value generalization at four levels, (iii) the ORL
//! face corpus turned into interval data through pixel-neighbourhood
//! statistics, and (iv) rating data sets (MovieLens-100K, Ciao, Epinions)
//! turned into interval data through per-user/per-item rating spreads.
//!
//! The real ORL / MovieLens / Ciao / Epinions data cannot be redistributed
//! with this repository, so this crate generates **synthetic stand-ins with
//! the same shape, scale, sparsity and interval-construction rules** (see
//! DESIGN.md, "Substitutions"). Every generator takes an explicit seeded
//! RNG so experiments are reproducible.
//!
//! Modules:
//!
//! * [`synthetic`] — uniform interval matrices (Table 1 parameters), plus
//!   the CSR-native power-law (Zipf) generator
//!   [`synthetic::generate_power_law`] for rating-matrix-shaped sparse
//!   workloads at million-row scale.
//! * [`anonymize`] — generalization-based anonymized matrices (L1–L4
//!   levels, high/medium/low privacy mixtures).
//! * [`faces`] — ORL-like face corpus and the neighbourhood-std interval
//!   construction of supplementary F.1.
//! * [`ratings`] — MovieLens-like and Ciao/Epinions-like rating data plus
//!   the interval constructions of supplementary F.2. The collaborative
//!   filtering matrices assemble **directly into CSR** from the rating
//!   triple stream ([`ratings::cf_interval_csr`],
//!   [`ratings::cf_scalar_csr`]) — no dense `users × items` buffer is
//!   ever materialized; the dense-returning functions are thin
//!   `to_dense()` wrappers for small fixtures.
//! * [`split`] — train/test splitting helpers.
//! * [`stream`] — chunked disk loaders for row-sharded interval matrices
//!   (write, shard-by-shard reads honouring `IVMF_SHARD_ROWS`, and a
//!   one-pass out-of-core interval Gram), with sparse CSR twins
//!   ([`stream::CsrShardWriter`], [`stream::CsrShardReader`],
//!   [`stream::stream_csr_interval_gram`]) that store and stream only the
//!   nonzero entries.
//! * [`binfmt`] — the bit-exact binary shard container ("ivmf shards
//!   v1"): length-prefixed, FNV-checksummed records holding raw
//!   little-endian `f64`/`usize` runs, shared by the binary shard
//!   writers/readers in [`stream`] and the distrib wire protocol's job
//!   pieces.
//! * [`prefetch`] — a double-buffered background-thread shard reader
//!   ([`prefetch::PrefetchSource`], [`prefetch::PrefetchCsrSource`],
//!   depth from `IVMF_PREFETCH`) that overlaps decode of shard *i+1*
//!   with the Gram fold of shard *i* while preserving strict in-order
//!   delivery, so results stay bitwise identical.
//! * [`atomic`] — crash-safe write-to-temp-then-rename file commits used
//!   by every on-disk artifact (matrix files, shards, snapshots, bench
//!   baselines).
//! * [`fault`] — deterministic fault-injection `Read`/`Write` wrappers
//!   (fail / truncate / bit-flip at a scheduled byte offset) backing the
//!   crash-recovery test suites.
//! * [`fnv`] — the workspace's single word-parallel FNV-1a implementation
//!   (record checksums, frame checksums, snapshot digests).
//!
//! ## Example
//!
//! Generate one replicate of the paper's default synthetic workload
//! (Table 1's bold row) and check the knobs took effect:
//!
//! ```
//! use ivmf_data::synthetic::{generate_uniform, SyntheticConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let config = SyntheticConfig::paper_default()
//!     .with_shape(12, 30)
//!     .with_zero_fraction(0.5);
//! let mut rng = SmallRng::seed_from_u64(7);
//! let m = generate_uniform(&config, &mut rng);
//!
//! assert_eq!(m.shape(), (12, 30));
//! assert!(m.is_proper());
//! // Roughly half the cells are zero and the non-zeros carry intervals.
//! assert!((m.zero_fraction() - 0.5).abs() < 0.15);
//! assert!(m.interval_density() > 0.9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod anonymize;
pub mod atomic;
pub mod binfmt;
pub mod faces;
pub mod fault;
pub mod fnv;
pub mod prefetch;
pub mod ratings;
pub mod split;
pub mod stream;
pub mod synthetic;
