//! Chunked disk loaders for row-sharded interval matrices.
//!
//! The decomposition pipeline's streaming stages consume interval matrices
//! one row-block shard at a time, so a matrix never has to fit in memory —
//! it only has to *stream*. This module provides the disk side of that
//! contract:
//!
//! * [`write_interval_matrix`] — writes an interval matrix to a simple
//!   line-per-row text format (values printed with Rust's shortest
//!   round-trip `f64` formatting, so loading reproduces every bit),
//! * [`ShardReader`] — reads such a file back in shards of a configurable
//!   number of rows (`IVMF_SHARD_ROWS` by default), holding only one shard
//!   in memory; it implements [`RowShardSource`], so it plugs directly
//!   into `ivmf_core::Pipeline::new_streaming` for end-to-end out-of-core
//!   decomposition of the Gram-route algorithms,
//! * [`load_sharded`] — materializes the whole file as an in-memory
//!   [`RowShardedIntervalMatrix`],
//! * [`stream_interval_gram`] — one-pass out-of-core interval Gram:
//!   `O(shard + m²)` peak memory regardless of the row count, bitwise
//!   identical to the in-memory streamed Gram (and to the dense fast path
//!   for matrices within one accumulation chunk).
//!
//! Sparse matrices get a CSR twin of each piece: [`CsrShardWriter`] /
//! [`write_csr_matrix`] write a per-row sparse text format that stores only
//! the nonzero entries, [`CsrShardReader`] streams it back as
//! [`CsrIntervalShard`]s (implementing [`CsrShardSource`], so it plugs into
//! `ivmf_core::Pipeline::new_streaming_csr`), [`load_csr_sharded`]
//! materializes the file as a [`CsrShardedIntervalMatrix`], and
//! [`stream_csr_interval_gram`] runs the one-pass out-of-core sparse Gram
//! in `O(shard nnz + m²)` memory — bitwise identical to the dense route.
//!
//! ## File formats
//!
//! Dense:
//!
//! ```text
//! <rows> <cols>
//! lo(0,0) hi(0,0) lo(0,1) hi(0,1) …   # one line per row, interleaved bounds
//! …
//! ```
//!
//! Sparse CSR (the leading `csr` token distinguishes the headers; `<k>` is
//! the number of stored entries of the row, followed by `k` column/bound
//! triples in ascending column order):
//!
//! ```text
//! csr <rows> <cols>
//! <k> col lo hi col lo hi …            # one line per row, stored entries only
//! …
//! ```
//!
//! Both formats print values with shortest round-trip `f64` formatting, so
//! loading reproduces every bit.
//!
//! ## Crash safety and error reporting
//!
//! Writers never leave a torn committed file: [`write_interval_matrix`]
//! and [`write_csr_matrix`] go through [`crate::atomic::atomic_write`],
//! and [`CsrShardWriter`] streams into a temporary sibling that only
//! [`finish`](CsrShardWriter::finish) (flush + fsync + rename) promotes
//! to the destination path — a writer dropped mid-stream removes its
//! temp and leaves any previously committed file untouched.
//!
//! Readers treat the file as untrusted input: every malformed header,
//! dimension overflow, out-of-range entry count or column, premature end
//! of file and trailing token is rejected with a typed [`StreamError`]
//! carried inside the returned `io::Error` (downcast via
//! [`StreamError::from_io`]), and allocations are bounded before the
//! header's claims are trusted.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ivmf_interval::{
    configured_shard_rows, CsrIntervalShard, CsrShardSource, CsrShardedIntervalMatrix,
    IntervalError, IntervalMatrix, RowShardSource, RowShardedIntervalMatrix,
    SparseStreamingIntervalGram, StreamingIntervalGram,
};
use ivmf_linalg::Matrix;

fn invalid_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Elements pre-allocated per vector before the file proves it is large
/// enough — a corrupted header declaring billions of rows must not be
/// able to reserve gigabytes up front.
const PREALLOC_CAP: usize = 1 << 20;

/// Typed parse/validation errors raised by the stream readers.
///
/// Each variant names the file and (where applicable) the 0-based data
/// row that failed, so corruption reports point at the exact line. The
/// readers return these wrapped in an `io::Error` (kind
/// `UnexpectedEof` for [`StreamError::UnexpectedEof`], `InvalidData`
/// otherwise); recover the typed value with [`StreamError::from_io`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The first line is not a valid `<rows> <cols>` (dense) or
    /// `csr <rows> <cols>` (sparse) header.
    MalformedHeader {
        /// File whose header failed to parse.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The declared `rows × cols` element count overflows `usize`.
    DimensionOverflow {
        /// File whose header overflowed.
        path: String,
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
    /// The file ended before the declared number of rows was read.
    UnexpectedEof {
        /// File that ended early.
        path: String,
        /// 0-based row at which data ran out.
        row: usize,
    },
    /// A data line has a missing or unparseable value.
    MalformedEntry {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line.
        row: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// A CSR row declares more stored entries than the matrix has
    /// columns.
    EntryCountOutOfRange {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line.
        row: usize,
        /// Declared stored-entry count.
        count: usize,
        /// Declared matrix width.
        cols: usize,
    },
    /// A CSR entry names a column at or beyond the declared width.
    ColumnOutOfRange {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line.
        row: usize,
        /// Offending column index.
        column: usize,
        /// Declared matrix width.
        cols: usize,
    },
    /// A line carries tokens past the declared entries.
    TrailingData {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line (`usize::MAX` for the header).
        row: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::MalformedHeader { path, detail } => {
                write!(f, "{path}: malformed header: {detail}")
            }
            StreamError::DimensionOverflow { path, rows, cols } => {
                write!(f, "{path}: {rows} x {cols} elements overflow usize")
            }
            StreamError::UnexpectedEof { path, row } => {
                write!(f, "{path}: unexpected end of file at row {row}")
            }
            StreamError::MalformedEntry { path, row, detail } => {
                write!(f, "{path}: row {row}: {detail}")
            }
            StreamError::EntryCountOutOfRange {
                path,
                row,
                count,
                cols,
            } => write!(
                f,
                "{path}: row {row}: {count} stored entries exceed the {cols} declared columns"
            ),
            StreamError::ColumnOutOfRange {
                path,
                row,
                column,
                cols,
            } => write!(
                f,
                "{path}: row {row}: column {column} out of range for width {cols}"
            ),
            StreamError::TrailingData { path, row } => {
                if *row == usize::MAX {
                    write!(f, "{path}: trailing tokens after the header")
                } else {
                    write!(
                        f,
                        "{path}: row {row}: trailing tokens after the declared entries"
                    )
                }
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl StreamError {
    /// Wraps the error in an `io::Error` with the matching kind.
    fn into_io(self) -> io::Error {
        let kind = match self {
            StreamError::UnexpectedEof { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, self)
    }

    /// Recovers the typed error carried by an `io::Error` returned from
    /// this module's readers, if any.
    pub fn from_io(err: &io::Error) -> Option<&StreamError> {
        err.get_ref().and_then(|e| e.downcast_ref::<StreamError>())
    }
}

/// Parses and validates a `<rows> <cols>` header (with optional leading
/// `tag`), rejecting missing/unparseable fields, trailing tokens and
/// element counts that overflow `usize` (each cell stores two `f64`
/// bounds, hence the factor of 2).
fn parse_header(path: &Path, header: &str, tag: Option<&str>) -> io::Result<(usize, usize)> {
    let display = path.display().to_string();
    let malformed = |detail: &str| {
        StreamError::MalformedHeader {
            path: display.clone(),
            detail: detail.to_string(),
        }
        .into_io()
    };
    let mut it = header.split_whitespace();
    if let Some(tag) = tag {
        if it.next() != Some(tag) {
            return Err(malformed(&format!("expected leading '{tag}' token")));
        }
    }
    let rows: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed("missing or unparseable row count"))?;
    let cols: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed("missing or unparseable column count"))?;
    if it.next().is_some() {
        return Err(StreamError::TrailingData {
            path: display,
            row: usize::MAX,
        }
        .into_io());
    }
    if rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(2))
        .is_none()
    {
        return Err(StreamError::DimensionOverflow {
            path: display,
            rows,
            cols,
        }
        .into_io());
    }
    Ok((rows, cols))
}

/// Writes an interval matrix to `path` in the module's line-per-row text
/// format. Values use shortest round-trip formatting, so a subsequent load
/// is bit-exact. The write is atomic ([`crate::atomic::atomic_write`]): a
/// crash mid-write leaves any previously committed file untouched.
pub fn write_interval_matrix(path: impl AsRef<Path>, m: &IntervalMatrix) -> io::Result<()> {
    crate::atomic::atomic_write(path, |w| {
        let (rows, cols) = m.shape();
        writeln!(w, "{rows} {cols}")?;
        for i in 0..rows {
            let mut line = String::new();
            for j in 0..cols {
                if j > 0 {
                    line.push(' ');
                }
                let (lo, hi) = m.get_raw(i, j);
                line.push_str(&format!("{lo:?} {hi:?}"));
            }
            writeln!(w, "{line}")?;
        }
        Ok(())
    })
}

/// Reads an interval matrix file shard by shard, holding one shard in
/// memory at a time. See the [module docs](self) for the format.
#[derive(Debug)]
pub struct ShardReader {
    path: PathBuf,
    reader: BufReader<File>,
    data_start: u64,
    rows: usize,
    cols: usize,
    shard_rows: usize,
    next_row: usize,
}

impl ShardReader {
    /// Opens `path`, reading the header; shards will have at most
    /// `shard_rows` rows (the last one takes the remainder).
    pub fn open(path: impl AsRef<Path>, shard_rows: usize) -> io::Result<Self> {
        if shard_rows == 0 {
            return Err(invalid_data("shard_rows must be at least 1".to_string()));
        }
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let (rows, cols) = parse_header(&path, &header, None)?;
        let data_start = reader.stream_position()?;
        Ok(ShardReader {
            path,
            reader,
            data_start,
            rows,
            cols,
            shard_rows,
            next_row: 0,
        })
    }

    /// [`ShardReader::open`] with the configured default shard size
    /// (`IVMF_SHARD_ROWS`, or
    /// [`ivmf_interval::DEFAULT_SHARD_ROWS`]).
    pub fn open_env(path: impl AsRef<Path>) -> io::Result<Self> {
        ShardReader::open(path, configured_shard_rows())
    }

    /// Total number of rows in the file.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured maximum rows per shard.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Rewinds to the first shard.
    pub fn rewind(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.next_row = 0;
        Ok(())
    }

    /// Reads the next shard, or `None` after the last row.
    pub fn read_shard(&mut self) -> io::Result<Option<IntervalMatrix>> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let take = self.shard_rows.min(self.rows - self.next_row);
        // Bounded pre-allocation: the header's claims are untrusted
        // until the data backs them up.
        let prealloc = (take * self.cols).min(PREALLOC_CAP);
        let mut lo = Vec::with_capacity(prealloc);
        let mut hi = Vec::with_capacity(prealloc);
        let mut line = String::new();
        for r in 0..take {
            let row = self.next_row + r;
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(StreamError::UnexpectedEof {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
            let mut values = line.split_whitespace().map(|t| t.parse::<f64>());
            for c in 0..self.cols {
                match (values.next(), values.next()) {
                    (Some(Ok(l)), Some(Ok(h))) => {
                        lo.push(l);
                        hi.push(h);
                    }
                    _ => {
                        return Err(StreamError::MalformedEntry {
                            path: self.path.display().to_string(),
                            row,
                            detail: format!("missing or unparseable bounds at column {c}"),
                        }
                        .into_io())
                    }
                }
            }
            if values.next().is_some() {
                return Err(StreamError::TrailingData {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
        }
        self.next_row += take;
        let shard = IntervalMatrix::from_bounds(
            Matrix::from_vec(take, self.cols, lo).map_err(|e| invalid_data(e.to_string()))?,
            Matrix::from_vec(take, self.cols, hi).map_err(|e| invalid_data(e.to_string()))?,
        )
        .map_err(|e| invalid_data(e.to_string()))?;
        Ok(Some(shard))
    }
}

impl RowShardSource for ShardReader {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn reset(&mut self) -> ivmf_interval::Result<()> {
        self.rewind()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
    fn next_shard(&mut self) -> ivmf_interval::Result<Option<IntervalMatrix>> {
        self.read_shard()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
}

/// Loads the whole file as an in-memory row-sharded matrix (shards of
/// `shard_rows` rows).
pub fn load_sharded(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<RowShardedIntervalMatrix> {
    let mut reader = ShardReader::open(path, shard_rows)?;
    let mut shards = Vec::new();
    while let Some(shard) = reader.read_shard()? {
        shards.push(shard);
    }
    RowShardedIntervalMatrix::from_shards(shards).map_err(|e| invalid_data(e.to_string()))
}

/// One-pass out-of-core interval Gram `M†ᵀ M†` of the file at `path`: each
/// shard is loaded, folded into the streaming accumulator and dropped, so
/// peak memory is one shard plus the `m×m` accumulators — independent of
/// the row count. Bitwise identical to the in-memory streamed Gram of the
/// same matrix.
pub fn stream_interval_gram(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<IntervalMatrix> {
    let mut reader = ShardReader::open(path, shard_rows)?;
    let mut acc = StreamingIntervalGram::new(reader.rows(), reader.cols());
    while let Some(shard) = reader.read_shard()? {
        acc.push_shard(&shard)
            .map_err(|e| invalid_data(e.to_string()))?;
    }
    acc.finish().map_err(|e| invalid_data(e.to_string()))
}

/// Incremental writer of the sparse CSR text format: create it with the
/// final row/column counts, push row blocks as they are generated (e.g.
/// one [`crate::synthetic::generate_power_law`] block at a time), and
/// [`finish`](CsrShardWriter::finish) once every row has been written.
/// Peak memory is one block — the file is produced without ever holding
/// the full matrix.
///
/// The writer is crash-safe: rows stream into a temporary sibling of the
/// destination, and only `finish` (which flushes, fsyncs and renames)
/// makes the file visible at `path`. A writer dropped before `finish` —
/// including by a panic or an early return after an I/O error — removes
/// its temp file and leaves any previously committed file untouched.
#[derive(Debug)]
pub struct CsrShardWriter {
    w: Option<BufWriter<File>>,
    path: PathBuf,
    tmp: PathBuf,
    rows: usize,
    cols: usize,
    rows_written: usize,
}

impl CsrShardWriter {
    /// Opens a temporary sibling of `path` and writes the
    /// `csr <rows> <cols>` header; `path` itself is only created by
    /// [`finish`](CsrShardWriter::finish).
    pub fn create(path: impl AsRef<Path>, rows: usize, cols: usize) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let tmp = crate::atomic::temp_sibling(&path);
        let mut w = BufWriter::new(File::create(&tmp)?);
        if let Err(e) = writeln!(w, "csr {rows} {cols}") {
            drop(w);
            fs::remove_file(&tmp).ok();
            return Err(e);
        }
        Ok(CsrShardWriter {
            w: Some(w),
            path,
            tmp,
            rows,
            cols,
            rows_written: 0,
        })
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    fn writer(&mut self) -> &mut BufWriter<File> {
        self.w.as_mut().expect("writer is only taken by finish")
    }

    /// Appends the rows of `shard` to the file (row order across calls).
    pub fn push_shard(&mut self, shard: &CsrIntervalShard) -> io::Result<()> {
        if shard.cols() != self.cols {
            return Err(invalid_data(format!(
                "shard has {} columns, file declares {}",
                shard.cols(),
                self.cols
            )));
        }
        if self.rows_written + shard.rows() > self.rows {
            return Err(invalid_data(format!(
                "shard of {} rows overflows the declared {} rows ({} already written)",
                shard.rows(),
                self.rows,
                self.rows_written
            )));
        }
        let mut line = String::new();
        for i in 0..shard.rows() {
            let (cols, lo, hi) = shard.row_entries(i);
            line.clear();
            line.push_str(&format!("{}", cols.len()));
            for ((&c, &l), &h) in cols.iter().zip(lo).zip(hi) {
                line.push_str(&format!(" {c} {l:?} {h:?}"));
            }
            writeln!(self.writer(), "{line}")?;
        }
        self.rows_written += shard.rows();
        Ok(())
    }

    /// Validates that exactly the declared number of rows was written,
    /// then commits the file: flush, fsync, rename over `path`. On any
    /// error the temp file is removed and `path` is left as it was.
    pub fn finish(mut self) -> io::Result<()> {
        if self.rows_written != self.rows {
            // Drop removes the temp file.
            return Err(invalid_data(format!(
                "file declares {} rows but {} were written",
                self.rows, self.rows_written
            )));
        }
        let mut w = self.w.take().expect("finish consumes the writer");
        let flushed = w.flush().and_then(|()| w.get_ref().sync_all());
        drop(w);
        let result = flushed.and_then(|()| crate::atomic::persist_temp(&self.tmp, &self.path));
        if result.is_err() {
            fs::remove_file(&self.tmp).ok();
        }
        result
    }
}

impl Drop for CsrShardWriter {
    fn drop(&mut self) {
        // An unfinished writer (crash, error path, forgotten finish)
        // must not leave its temp file behind.
        if let Some(w) = self.w.take() {
            drop(w);
            fs::remove_file(&self.tmp).ok();
        }
    }
}

/// Writes a CSR interval shard to `path` in the sparse text format in one
/// call. Values use shortest round-trip formatting, so a subsequent load
/// is bit-exact. The write inherits [`CsrShardWriter`]'s crash safety:
/// the file only appears at `path` complete, fsync'd and renamed.
pub fn write_csr_matrix(path: impl AsRef<Path>, m: &CsrIntervalShard) -> io::Result<()> {
    let mut w = CsrShardWriter::create(path, m.rows(), m.cols())?;
    w.push_shard(m)?;
    w.finish()
}

/// Reads a sparse CSR interval matrix file shard by shard, holding one
/// shard's stored entries in memory at a time. See the
/// [module docs](self) for the format.
#[derive(Debug)]
pub struct CsrShardReader {
    path: PathBuf,
    reader: BufReader<File>,
    data_start: u64,
    rows: usize,
    cols: usize,
    shard_rows: usize,
    next_row: usize,
}

impl CsrShardReader {
    /// Opens `path`, reading the `csr <rows> <cols>` header; shards will
    /// have at most `shard_rows` rows (the last one takes the remainder).
    pub fn open(path: impl AsRef<Path>, shard_rows: usize) -> io::Result<Self> {
        if shard_rows == 0 {
            return Err(invalid_data("shard_rows must be at least 1".to_string()));
        }
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let (rows, cols) = parse_header(&path, &header, Some("csr"))?;
        let data_start = reader.stream_position()?;
        Ok(CsrShardReader {
            path,
            reader,
            data_start,
            rows,
            cols,
            shard_rows,
            next_row: 0,
        })
    }

    /// [`CsrShardReader::open`] with the configured default shard size
    /// (`IVMF_SHARD_ROWS`, or [`ivmf_interval::DEFAULT_SHARD_ROWS`]).
    pub fn open_env(path: impl AsRef<Path>) -> io::Result<Self> {
        CsrShardReader::open(path, configured_shard_rows())
    }

    /// Total number of rows in the file.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured maximum rows per shard.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Rewinds to the first shard.
    pub fn rewind(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.next_row = 0;
        Ok(())
    }

    /// Reads the next shard, or `None` after the last row.
    pub fn read_shard(&mut self) -> io::Result<Option<CsrIntervalShard>> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let take = self.shard_rows.min(self.rows - self.next_row);
        let mut row_ptr = Vec::with_capacity((take + 1).min(PREALLOC_CAP));
        let mut col_idx = Vec::new();
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        row_ptr.push(0);
        let mut line = String::new();
        for r in 0..take {
            let row = self.next_row + r;
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(StreamError::UnexpectedEof {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
            let mut tokens = line.split_whitespace();
            let k: usize = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                StreamError::MalformedEntry {
                    path: self.path.display().to_string(),
                    row,
                    detail: "missing or unparseable stored-entry count".to_string(),
                }
                .into_io()
            })?;
            if k > self.cols {
                return Err(StreamError::EntryCountOutOfRange {
                    path: self.path.display().to_string(),
                    row,
                    count: k,
                    cols: self.cols,
                }
                .into_io());
            }
            for e in 0..k {
                let c = tokens.next().and_then(|t| t.parse::<usize>().ok());
                let l = tokens.next().and_then(|t| t.parse::<f64>().ok());
                let h = tokens.next().and_then(|t| t.parse::<f64>().ok());
                match (c, l, h) {
                    (Some(c), Some(l), Some(h)) => {
                        if c >= self.cols {
                            return Err(StreamError::ColumnOutOfRange {
                                path: self.path.display().to_string(),
                                row,
                                column: c,
                                cols: self.cols,
                            }
                            .into_io());
                        }
                        col_idx.push(c);
                        lo.push(l);
                        hi.push(h);
                    }
                    _ => {
                        return Err(StreamError::MalformedEntry {
                            path: self.path.display().to_string(),
                            row,
                            detail: format!("missing or unparseable entry {e}"),
                        }
                        .into_io())
                    }
                }
            }
            if tokens.next().is_some() {
                return Err(StreamError::TrailingData {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
            row_ptr.push(col_idx.len());
        }
        self.next_row += take;
        let shard = CsrIntervalShard::new(take, self.cols, row_ptr, col_idx, lo, hi)
            .map_err(|e| invalid_data(e.to_string()))?;
        Ok(Some(shard))
    }
}

impl CsrShardSource for CsrShardReader {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn reset(&mut self) -> ivmf_interval::Result<()> {
        self.rewind()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
    fn next_shard(&mut self) -> ivmf_interval::Result<Option<CsrIntervalShard>> {
        self.read_shard()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
}

/// Loads the whole CSR file as an in-memory sparse sharded matrix (shards
/// of `shard_rows` rows).
pub fn load_csr_sharded(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<CsrShardedIntervalMatrix> {
    let mut reader = CsrShardReader::open(path, shard_rows)?;
    let mut shards = Vec::new();
    while let Some(shard) = reader.read_shard()? {
        shards.push(shard);
    }
    CsrShardedIntervalMatrix::from_shards(shards).map_err(|e| invalid_data(e.to_string()))
}

/// One-pass out-of-core **sparse** interval Gram of the CSR file at
/// `path`: each shard's stored entries are loaded, folded into the sparse
/// streaming accumulator and dropped, so peak memory is one shard's
/// nonzeros plus the `m×m` accumulators — independent of the row count.
/// Bitwise identical to the dense Gram of the densified matrix.
pub fn stream_csr_interval_gram(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<IntervalMatrix> {
    let mut reader = CsrShardReader::open(path, shard_rows)?;
    let mut acc = SparseStreamingIntervalGram::new(reader.rows(), reader.cols());
    while let Some(shard) = reader.read_shard()? {
        acc.push_shard(&shard)
            .map_err(|e| invalid_data(e.to_string()))?;
    }
    acc.finish().map_err(|e| invalid_data(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_uniform, SyntheticConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ivmf_stream_{}_{tag}.txt", std::process::id()))
    }

    fn sample_matrix(seed: u64, rows: usize, cols: usize) -> IntervalMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_uniform(
            &SyntheticConfig::paper_default().with_shape(rows, cols),
            &mut rng,
        )
    }

    #[test]
    fn write_then_load_round_trips_bit_exactly() {
        let m = sample_matrix(1, 19, 7);
        let path = temp_path("round_trip");
        write_interval_matrix(&path, &m).unwrap();
        let loaded = load_sharded(&path, 5).unwrap();
        assert_eq!(loaded.num_shards(), 4);
        assert_eq!(loaded.to_dense(), m, "text round-trip must be bit-exact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_reader_streams_in_order_and_rewinds() {
        let m = sample_matrix(2, 11, 4);
        let path = temp_path("reader");
        write_interval_matrix(&path, &m).unwrap();
        let mut reader = ShardReader::open(&path, 3).unwrap();
        assert_eq!((reader.rows(), reader.cols()), (11, 4));
        assert_eq!(reader.shard_rows(), 3);
        let mut rows = 0;
        let mut shards = 0;
        while let Some(shard) = reader.read_shard().unwrap() {
            rows += shard.rows();
            shards += 1;
        }
        assert_eq!((rows, shards), (11, 4));
        // Rewind and stream again through the RowShardSource interface.
        RowShardSource::reset(&mut reader).unwrap();
        let first = RowShardSource::next_shard(&mut reader).unwrap().unwrap();
        assert_eq!(first.rows(), 3);
        assert_eq!(first.get_raw(0, 0), m.get_raw(0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_core_gram_matches_in_memory_streamed_gram_bitwise() {
        let m = sample_matrix(3, 37, 9);
        let path = temp_path("gram");
        write_interval_matrix(&path, &m).unwrap();
        let expected = m.interval_gram_streamed().unwrap();
        for shard_rows in [1usize, 5, 37] {
            let gram = stream_interval_gram(&path, shard_rows).unwrap();
            assert_eq!(
                gram, expected,
                "out-of-core gram (shard_rows={shard_rows}) diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    fn sample_csr(seed: u64, rows: usize, cols: usize, nnz_per_row: usize) -> CsrIntervalShard {
        let mut rng = SmallRng::seed_from_u64(seed);
        crate::synthetic::generate_power_law(
            &crate::synthetic::PowerLawConfig::ratings_like(rows, cols)
                .with_nnz_per_row(nnz_per_row),
            &mut rng,
        )
    }

    #[test]
    fn csr_write_then_load_round_trips_bit_exactly() {
        let m = sample_csr(11, 23, 40, 6);
        let path = temp_path("csr_round_trip");
        write_csr_matrix(&path, &m).unwrap();
        let loaded = load_csr_sharded(&path, 5).unwrap();
        assert_eq!(loaded.num_shards(), 5);
        assert_eq!(loaded.nnz(), m.nnz());
        assert_eq!(
            loaded.to_dense(),
            m.to_dense(),
            "CSR text round-trip must be bit-exact"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_writer_streams_blocks_without_holding_the_matrix() {
        let whole = sample_csr(12, 30, 25, 4);
        let blocks = ivmf_interval::CsrShardedIntervalMatrix::from_csr(&whole, 7).unwrap();
        let path = temp_path("csr_blocks");
        let mut w = CsrShardWriter::create(&path, whole.rows(), whole.cols()).unwrap();
        for shard in blocks.shards() {
            w.push_shard(shard).unwrap();
        }
        assert_eq!(w.rows_written(), 30);
        w.finish().unwrap();
        let loaded = load_csr_sharded(&path, 30).unwrap();
        assert_eq!(loaded.to_dense(), whole.to_dense());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_reader_streams_in_order_and_rewinds() {
        let m = sample_csr(13, 11, 14, 3);
        let path = temp_path("csr_reader");
        write_csr_matrix(&path, &m).unwrap();
        let mut reader = CsrShardReader::open(&path, 3).unwrap();
        assert_eq!((reader.rows(), reader.cols()), (11, 14));
        assert_eq!(reader.shard_rows(), 3);
        let mut rows = 0;
        let mut shards = 0;
        while let Some(shard) = reader.read_shard().unwrap() {
            rows += shard.rows();
            shards += 1;
        }
        assert_eq!((rows, shards), (11, 4));
        // Rewind and stream again through the CsrShardSource interface.
        CsrShardSource::reset(&mut reader).unwrap();
        let first = CsrShardSource::next_shard(&mut reader).unwrap().unwrap();
        assert_eq!(first.rows(), 3);
        assert_eq!(first.row_entries(0), m.row_entries(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_core_sparse_gram_matches_the_dense_route_bitwise() {
        let m = sample_csr(14, 37, 9, 4);
        let path = temp_path("csr_gram");
        write_csr_matrix(&path, &m).unwrap();
        let expected = m.to_dense().interval_gram_streamed().unwrap();
        for shard_rows in [1usize, 5, 37] {
            let gram = stream_csr_interval_gram(&path, shard_rows).unwrap();
            assert_eq!(
                gram, expected,
                "out-of-core sparse gram (shard_rows={shard_rows}) diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_formats_are_mutually_exclusive_and_validated() {
        let path = temp_path("csr_malformed");
        // A dense file is rejected by the CSR reader and vice versa.
        let dense = sample_matrix(15, 3, 3);
        write_interval_matrix(&path, &dense).unwrap();
        assert!(CsrShardReader::open(&path, 4).is_err());
        let m = sample_csr(15, 3, 3, 2);
        write_csr_matrix(&path, &m).unwrap();
        assert!(ShardReader::open(&path, 4).is_err());
        // Truncated CSR payload fails loudly.
        std::fs::write(&path, "csr 2 3\n1 0 1.0 2.0\n").unwrap();
        let mut reader = CsrShardReader::open(&path, 4).unwrap();
        assert!(reader.read_shard().is_err());
        // Declared entry count beyond the line's tokens fails loudly.
        std::fs::write(&path, "csr 1 3\n2 0 1.0 2.0\n").unwrap();
        let mut reader = CsrShardReader::open(&path, 4).unwrap();
        assert!(reader.read_shard().is_err());
        // Writer validates shape and row accounting.
        let w = CsrShardWriter::create(&path, 5, 3).unwrap();
        assert!(w.finish().is_err());
        let mut w = CsrShardWriter::create(&path, 2, 3).unwrap();
        assert!(w.push_shard(&sample_csr(16, 2, 4, 2)).is_err());
        assert!(w.push_shard(&sample_csr(16, 3, 3, 2)).is_err());
        assert!(CsrShardWriter::create(&path, 0, 3)
            .unwrap()
            .finish()
            .is_ok());
        std::fs::remove_file(&path).ok();
    }

    fn typed(err: &io::Error) -> &StreamError {
        StreamError::from_io(err).expect("reader errors must carry a typed StreamError")
    }

    #[test]
    fn dense_reader_errors_are_typed_and_named() {
        let path = temp_path("typed_dense");
        // Malformed header: unparseable row count.
        std::fs::write(&path, "banana 2\n").unwrap();
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::MalformedHeader { .. }
        ));
        // Trailing tokens after the header.
        std::fs::write(&path, "2 2 surprise\n").unwrap();
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::TrailingData {
                row: usize::MAX,
                ..
            }
        ));
        // Element count overflowing usize is rejected before any read.
        std::fs::write(&path, format!("{} 3\n", usize::MAX / 2)).unwrap();
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::DimensionOverflow { cols: 3, .. }
        ));
        // Unexpected EOF carries the failing row and the EOF io kind.
        std::fs::write(&path, "2 2\n1.0 2.0 3.0 4.0\n").unwrap();
        let err = ShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(matches!(
            typed(&err),
            StreamError::UnexpectedEof { row: 1, .. }
        ));
        // Unparseable value.
        std::fs::write(&path, "1 2\n1.0 oops 3.0 4.0\n").unwrap();
        let err = ShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(matches!(
            typed(&err),
            StreamError::MalformedEntry { row: 0, .. }
        ));
        // Trailing tokens after the declared bounds.
        std::fs::write(&path, "1 1\n1.0 2.0 3.0\n").unwrap();
        let err = ShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::TrailingData { row: 0, .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_reader_errors_are_typed_and_named() {
        let path = temp_path("typed_csr");
        // Entry count beyond the declared width.
        std::fs::write(
            &path,
            "csr 1 3\n4 0 1.0 2.0 1 1.0 2.0 2 1.0 2.0 2 1.0 2.0\n",
        )
        .unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::EntryCountOutOfRange {
                row: 0,
                count: 4,
                cols: 3,
                ..
            }
        ));
        // Column index beyond the declared width.
        std::fs::write(&path, "csr 1 3\n1 7 1.0 2.0\n").unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::ColumnOutOfRange {
                row: 0,
                column: 7,
                cols: 3,
                ..
            }
        ));
        // Trailing tokens after the declared entries.
        std::fs::write(&path, "csr 1 3\n1 0 1.0 2.0 extra\n").unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::TrailingData { row: 0, .. }
        ));
        // Dimension overflow applies to the CSR header too.
        std::fs::write(&path, format!("csr {} {}\n", usize::MAX / 2, 4)).unwrap();
        assert!(matches!(
            typed(&CsrShardReader::open(&path, 4).unwrap_err()),
            StreamError::DimensionOverflow { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_writer_is_crash_safe_until_finish() {
        let committed = sample_csr(21, 4, 6, 2);
        let path = temp_path("csr_crash_safe");
        write_csr_matrix(&path, &committed).unwrap();
        let dir = path.parent().unwrap().to_path_buf();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let temps = |tag: &str| -> Vec<String> {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.contains(&stem) && n.contains(".tmp."))
                .inspect(|n| println!("{tag}: stray temp {n}"))
                .collect()
        };
        // A writer abandoned mid-stream (simulated kill between write and
        // rename) leaves the committed file intact and no temp behind.
        {
            let mut w = CsrShardWriter::create(&path, 8, 6).unwrap();
            w.push_shard(&sample_csr(22, 3, 6, 2)).unwrap();
            // dropped unfinished here
        }
        assert!(temps("after drop").is_empty());
        let loaded = load_csr_sharded(&path, 8).unwrap();
        assert_eq!(loaded.to_dense(), committed.to_dense());
        // A finish that fails row validation also cleans up and keeps
        // the committed file.
        assert!(CsrShardWriter::create(&path, 8, 6)
            .unwrap()
            .finish()
            .is_err());
        assert!(temps("after failed finish").is_empty());
        assert_eq!(
            load_csr_sharded(&path, 8).unwrap().to_dense(),
            committed.to_dense()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_malformed_inputs() {
        let path = temp_path("malformed");
        std::fs::write(&path, "not a header\n").unwrap();
        assert!(ShardReader::open(&path, 4).is_err());
        std::fs::write(&path, "2 2\n1.0 2.0 3.0 4.0\n").unwrap();
        let mut reader = ShardReader::open(&path, 4).unwrap();
        // Second row is missing: the shard read must fail loudly.
        assert!(reader.read_shard().is_err());
        let m = sample_matrix(4, 2, 2);
        write_interval_matrix(&path, &m).unwrap();
        assert!(ShardReader::open(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
