//! Chunked disk loaders for row-sharded interval matrices.
//!
//! The decomposition pipeline's streaming stages consume interval matrices
//! one row-block shard at a time, so a matrix never has to fit in memory —
//! it only has to *stream*. This module provides the disk side of that
//! contract:
//!
//! * [`write_interval_matrix`] — writes an interval matrix to a simple
//!   line-per-row text format (values printed with Rust's shortest
//!   round-trip `f64` formatting, so loading reproduces every bit),
//! * [`ShardReader`] — reads such a file back in shards of a configurable
//!   number of rows (`IVMF_SHARD_ROWS` by default), holding only one shard
//!   in memory; it implements [`RowShardSource`], so it plugs directly
//!   into `ivmf_core::Pipeline::new_streaming` for end-to-end out-of-core
//!   decomposition of the Gram-route algorithms,
//! * [`load_sharded`] — materializes the whole file as an in-memory
//!   [`RowShardedIntervalMatrix`],
//! * [`stream_interval_gram`] — one-pass out-of-core interval Gram:
//!   `O(shard + m²)` peak memory regardless of the row count, bitwise
//!   identical to the in-memory streamed Gram (and to the dense fast path
//!   for matrices within one accumulation chunk).
//!
//! Sparse matrices get a CSR twin of each piece: [`CsrShardWriter`] /
//! [`write_csr_matrix`] write a per-row sparse text format that stores only
//! the nonzero entries, [`CsrShardReader`] streams it back as
//! [`CsrIntervalShard`]s (implementing [`CsrShardSource`], so it plugs into
//! `ivmf_core::Pipeline::new_streaming_csr`), [`load_csr_sharded`]
//! materializes the file as a [`CsrShardedIntervalMatrix`], and
//! [`stream_csr_interval_gram`] runs the one-pass out-of-core sparse Gram
//! in `O(shard nnz + m²)` memory — bitwise identical to the dense route.
//!
//! ## File formats
//!
//! Dense:
//!
//! ```text
//! <rows> <cols>
//! lo(0,0) hi(0,0) lo(0,1) hi(0,1) …   # one line per row, interleaved bounds
//! …
//! ```
//!
//! Sparse CSR (the leading `csr` token distinguishes the headers; `<k>` is
//! the number of stored entries of the row, followed by `k` column/bound
//! triples in ascending column order):
//!
//! ```text
//! csr <rows> <cols>
//! <k> col lo hi col lo hi …            # one line per row, stored entries only
//! …
//! ```
//!
//! Both formats print values with shortest round-trip `f64` formatting, so
//! loading reproduces every bit.
//!
//! ## Binary containers
//!
//! Decimal parsing dominates out-of-core ingest, so every writer also
//! speaks the binary container of [`crate::binfmt`] ("ivmf shards v1"):
//! `IVMF_SHARD_FORMAT=binary` (or an explicit
//! [`ShardWriter::create_with_format`] /
//! [`CsrShardWriter::create_with_format`]) stores the same values as raw
//! little-endian runs inside checksummed records. The readers sniff the
//! leading magic bytes and decode either format transparently — the
//! format never appears in a cache key because the decoded payloads are
//! bitwise identical. Binary readers re-shard writer blocks to the
//! consumer's `shard_rows` through a small staging buffer, and all
//! readers lease their scratch from [`ivmf_linalg::pool`], so
//! steady-state ingest allocates nothing.
//!
//! [`stream_interval_gram`] and [`stream_csr_interval_gram`] additionally
//! wrap the reader in [`crate::prefetch`]'s background decoder
//! (`IVMF_PREFETCH`), overlapping decode of shard *i+1* with the Gram
//! fold of shard *i*; delivery stays strictly in order, so results are
//! bitwise invariant to the prefetch depth too.
//!
//! ## Crash safety and error reporting
//!
//! Writers never leave a torn committed file: [`write_interval_matrix`]
//! and [`write_csr_matrix`] go through [`crate::atomic::atomic_write`],
//! and [`CsrShardWriter`] streams into a temporary sibling that only
//! [`finish`](CsrShardWriter::finish) (flush + fsync + rename) promotes
//! to the destination path — a writer dropped mid-stream removes its
//! temp and leaves any previously committed file untouched.
//!
//! Readers treat the file as untrusted input: every malformed header,
//! dimension overflow, out-of-range entry count or column, premature end
//! of file and trailing token is rejected with a typed [`StreamError`]
//! carried inside the returned `io::Error` (downcast via
//! [`StreamError::from_io`]), and allocations are bounded before the
//! header's claims are trusted.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ivmf_env::ShardFormat;
use ivmf_interval::{
    configured_shard_rows, recycle_csr_interval_shard, recycle_interval_matrix, CsrIntervalShard,
    CsrShardSource, CsrShardedIntervalMatrix, IntervalError, IntervalMatrix, RowShardSource,
    RowShardedIntervalMatrix, SparseStreamingIntervalGram, StreamingIntervalGram,
};
use ivmf_linalg::{pool, Matrix};

use crate::binfmt;
use crate::prefetch::{PrefetchCsrSource, PrefetchSource};

fn invalid_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Elements pre-allocated per vector before the file proves it is large
/// enough — a corrupted header declaring billions of rows must not be
/// able to reserve gigabytes up front.
const PREALLOC_CAP: usize = 1 << 20;

/// Typed parse/validation errors raised by the stream readers.
///
/// Each variant names the file and (where applicable) the 0-based data
/// row that failed, so corruption reports point at the exact line. The
/// readers return these wrapped in an `io::Error` (kind
/// `UnexpectedEof` for [`StreamError::UnexpectedEof`], `InvalidData`
/// otherwise); recover the typed value with [`StreamError::from_io`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The first line is not a valid `<rows> <cols>` (dense) or
    /// `csr <rows> <cols>` (sparse) header.
    MalformedHeader {
        /// File whose header failed to parse.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The declared `rows × cols` element count overflows `usize`.
    DimensionOverflow {
        /// File whose header overflowed.
        path: String,
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
    /// The file ended before the declared number of rows was read.
    UnexpectedEof {
        /// File that ended early.
        path: String,
        /// 0-based row at which data ran out.
        row: usize,
    },
    /// A data line has a missing or unparseable value.
    MalformedEntry {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line.
        row: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// A CSR row declares more stored entries than the matrix has
    /// columns.
    EntryCountOutOfRange {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line.
        row: usize,
        /// Declared stored-entry count.
        count: usize,
        /// Declared matrix width.
        cols: usize,
    },
    /// A CSR entry names a column at or beyond the declared width.
    ColumnOutOfRange {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line.
        row: usize,
        /// Offending column index.
        column: usize,
        /// Declared matrix width.
        cols: usize,
    },
    /// A line carries tokens past the declared entries.
    TrailingData {
        /// File containing the bad line.
        path: String,
        /// 0-based row of the bad line (`usize::MAX` for the header).
        row: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::MalformedHeader { path, detail } => {
                write!(f, "{path}: malformed header: {detail}")
            }
            StreamError::DimensionOverflow { path, rows, cols } => {
                write!(f, "{path}: {rows} x {cols} elements overflow usize")
            }
            StreamError::UnexpectedEof { path, row } => {
                write!(f, "{path}: unexpected end of file at row {row}")
            }
            StreamError::MalformedEntry { path, row, detail } => {
                write!(f, "{path}: row {row}: {detail}")
            }
            StreamError::EntryCountOutOfRange {
                path,
                row,
                count,
                cols,
            } => write!(
                f,
                "{path}: row {row}: {count} stored entries exceed the {cols} declared columns"
            ),
            StreamError::ColumnOutOfRange {
                path,
                row,
                column,
                cols,
            } => write!(
                f,
                "{path}: row {row}: column {column} out of range for width {cols}"
            ),
            StreamError::TrailingData { path, row } => {
                if *row == usize::MAX {
                    write!(f, "{path}: trailing tokens after the header")
                } else {
                    write!(
                        f,
                        "{path}: row {row}: trailing tokens after the declared entries"
                    )
                }
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl StreamError {
    /// Wraps the error in an `io::Error` with the matching kind.
    fn into_io(self) -> io::Error {
        let kind = match self {
            StreamError::UnexpectedEof { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, self)
    }

    /// Recovers the typed error carried by an `io::Error` returned from
    /// this module's readers, if any.
    pub fn from_io(err: &io::Error) -> Option<&StreamError> {
        err.get_ref().and_then(|e| e.downcast_ref::<StreamError>())
    }
}

/// Parses and validates a `<rows> <cols>` header (with optional leading
/// `tag`), rejecting missing/unparseable fields, trailing tokens and
/// element counts that overflow `usize` (each cell stores two `f64`
/// bounds, hence the factor of 2).
fn parse_header(path: &Path, header: &str, tag: Option<&str>) -> io::Result<(usize, usize)> {
    let display = path.display().to_string();
    let malformed = |detail: &str| {
        StreamError::MalformedHeader {
            path: display.clone(),
            detail: detail.to_string(),
        }
        .into_io()
    };
    let mut it = header.split_whitespace();
    if let Some(tag) = tag {
        if it.next() != Some(tag) {
            return Err(malformed(&format!("expected leading '{tag}' token")));
        }
    }
    let rows: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed("missing or unparseable row count"))?;
    let cols: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed("missing or unparseable column count"))?;
    if it.next().is_some() {
        return Err(StreamError::TrailingData {
            path: display,
            row: usize::MAX,
        }
        .into_io());
    }
    if rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(2))
        .is_none()
    {
        return Err(StreamError::DimensionOverflow {
            path: display,
            rows,
            cols,
        }
        .into_io());
    }
    Ok((rows, cols))
}

/// Values per binary block record: blocks stay tens of megabytes — far
/// under [`binfmt::MAX_RECORD_LEN`] — and give readers re-sharding
/// granularity without per-row record overhead.
const BLOCK_VALUES: usize = 1 << 21;

/// Incremental writer of the dense interval formats: create it with the
/// final row/column counts, push row blocks as they are generated, and
/// [`finish`](ShardWriter::finish) once every row has been written. Peak
/// memory is one block — the file is produced without ever holding the
/// full matrix.
///
/// [`ShardWriter::create`] picks the format from `IVMF_SHARD_FORMAT`
/// (text by default); [`ShardWriter::create_with_format`] pins it. Both
/// formats load back bit-exactly, so the choice is invisible downstream.
///
/// The writer is crash-safe exactly like [`CsrShardWriter`]: rows stream
/// into a temporary sibling of the destination, and only `finish`
/// (flush, fsync, rename) makes the file visible at `path`; a writer
/// dropped before `finish` removes its temp and leaves any previously
/// committed file untouched.
#[derive(Debug)]
pub struct ShardWriter {
    w: Option<BufWriter<File>>,
    path: PathBuf,
    tmp: PathBuf,
    rows: usize,
    cols: usize,
    rows_written: usize,
    format: ShardFormat,
}

impl ShardWriter {
    /// [`ShardWriter::create_with_format`] with the format configured by
    /// `IVMF_SHARD_FORMAT`.
    pub fn create(path: impl AsRef<Path>, rows: usize, cols: usize) -> io::Result<Self> {
        Self::create_with_format(path, rows, cols, ivmf_env::shard_format())
    }

    /// Opens a temporary sibling of `path` and writes the header (text
    /// line or magic + header record); `path` itself is only created by
    /// [`finish`](ShardWriter::finish).
    pub fn create_with_format(
        path: impl AsRef<Path>,
        rows: usize,
        cols: usize,
        format: ShardFormat,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let tmp = crate::atomic::temp_sibling(&path);
        let mut w = BufWriter::new(File::create(&tmp)?);
        let header = match format {
            ShardFormat::Text => writeln!(w, "{rows} {cols}"),
            ShardFormat::Binary => w.write_all(&binfmt::MAGIC).and_then(|()| {
                binfmt::write_record(
                    &mut w,
                    binfmt::REC_DENSE_HEADER,
                    format!("dense {rows} {cols}\n").as_bytes(),
                )
            }),
        };
        if let Err(e) = header {
            drop(w);
            fs::remove_file(&tmp).ok();
            return Err(e);
        }
        Ok(ShardWriter {
            w: Some(w),
            path,
            tmp,
            rows,
            cols,
            rows_written: 0,
            format,
        })
    }

    /// The format this writer emits.
    pub fn format(&self) -> ShardFormat {
        self.format
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    fn writer(&mut self) -> &mut BufWriter<File> {
        self.w.as_mut().expect("writer is only taken by finish")
    }

    /// Appends the rows of `shard` to the file (row order across calls).
    pub fn push_shard(&mut self, shard: &IntervalMatrix) -> io::Result<()> {
        if shard.cols() != self.cols {
            return Err(invalid_data(format!(
                "shard has {} columns, file declares {}",
                shard.cols(),
                self.cols
            )));
        }
        if self.rows_written + shard.rows() > self.rows {
            return Err(invalid_data(format!(
                "shard of {} rows overflows the declared {} rows ({} already written)",
                shard.rows(),
                self.rows,
                self.rows_written
            )));
        }
        match self.format {
            ShardFormat::Text => {
                let mut line = String::new();
                for i in 0..shard.rows() {
                    line.clear();
                    for j in 0..self.cols {
                        if j > 0 {
                            line.push(' ');
                        }
                        let (lo, hi) = shard.get_raw(i, j);
                        line.push_str(&format!("{lo:?} {hi:?}"));
                    }
                    writeln!(self.writer(), "{line}")?;
                }
            }
            ShardFormat::Binary => {
                // Cut large shards into bounded records so a single push
                // can never approach the record length ceiling.
                let block_rows = (BLOCK_VALUES / self.cols.max(1)).max(1);
                let (lo, hi) = (shard.lo().as_slice(), shard.hi().as_slice());
                let mut start = 0;
                while start < shard.rows() {
                    let take = block_rows.min(shard.rows() - start);
                    let (s, e) = (start * self.cols, (start + take) * self.cols);
                    let payload = binfmt::encode_dense_rows(take, &lo[s..e], &hi[s..e])?;
                    binfmt::write_record(self.writer(), binfmt::REC_DENSE_BLOCK, &payload)?;
                    start += take;
                }
            }
        }
        self.rows_written += shard.rows();
        Ok(())
    }

    /// Validates that exactly the declared number of rows was written,
    /// then commits the file: end record (binary), flush, fsync, rename
    /// over `path`. On any error the temp file is removed and `path` is
    /// left as it was.
    pub fn finish(mut self) -> io::Result<()> {
        if self.rows_written != self.rows {
            // Drop removes the temp file.
            return Err(invalid_data(format!(
                "file declares {} rows but {} were written",
                self.rows, self.rows_written
            )));
        }
        if self.format == ShardFormat::Binary {
            // An error propagates with `?`; Drop removes the temp file.
            binfmt::write_record(self.writer(), binfmt::REC_END, b"")?;
        }
        let mut w = self.w.take().expect("finish consumes the writer");
        let flushed = w.flush().and_then(|()| w.get_ref().sync_all());
        drop(w);
        let result = flushed.and_then(|()| crate::atomic::persist_temp(&self.tmp, &self.path));
        if result.is_err() {
            fs::remove_file(&self.tmp).ok();
        }
        result
    }
}

impl Drop for ShardWriter {
    fn drop(&mut self) {
        // An unfinished writer (crash, error path, forgotten finish)
        // must not leave its temp file behind.
        if let Some(w) = self.w.take() {
            drop(w);
            fs::remove_file(&self.tmp).ok();
        }
    }
}

/// Writes an interval matrix to `path` in one call, in the format
/// configured by `IVMF_SHARD_FORMAT`. Both formats load back bit-exactly.
/// The write inherits [`ShardWriter`]'s crash safety: the file only
/// appears at `path` complete, fsync'd and renamed.
pub fn write_interval_matrix(path: impl AsRef<Path>, m: &IntervalMatrix) -> io::Result<()> {
    let mut w = ShardWriter::create(path, m.rows(), m.cols())?;
    w.push_shard(m)?;
    w.finish()
}

/// Reads the container magic if present. Returns `true` (and leaves the
/// reader positioned after the magic) when the file is a binary
/// container; rewinds to the start and returns `false` otherwise.
fn sniff_magic(reader: &mut BufReader<File>) -> io::Result<bool> {
    let mut magic = [0u8; 8];
    let mut got = 0;
    while got < 8 {
        let n = reader.read(&mut magic[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got == 8 && magic == binfmt::MAGIC {
        return Ok(true);
    }
    reader.seek(SeekFrom::Start(0))?;
    Ok(false)
}

/// Reads the header record of a binary container, returning the parsed
/// `(rows, cols)` and the stream offset of the first block record.
fn read_binary_header(
    path: &Path,
    reader: &mut BufReader<File>,
    want_kind: u8,
    tag: &str,
) -> io::Result<(usize, usize, u64)> {
    let (kind, payload) = binfmt::read_record(reader)?.ok_or_else(|| {
        StreamError::UnexpectedEof {
            path: path.display().to_string(),
            row: 0,
        }
        .into_io()
    })?;
    if kind != want_kind {
        return Err(StreamError::MalformedHeader {
            path: path.display().to_string(),
            detail: format!("expected a '{tag}' header record, found record kind {kind}"),
        }
        .into_io());
    }
    let header = std::str::from_utf8(&payload).map_err(|_| {
        StreamError::MalformedHeader {
            path: path.display().to_string(),
            detail: "header record is not UTF-8".to_string(),
        }
        .into_io()
    })?;
    let (rows, cols) = parse_header(path, header, Some(tag))?;
    let data_start = (8 + binfmt::record_len(payload.len())) as u64;
    Ok((rows, cols, data_start))
}

/// Staging buffer of the binary dense reader: decoded writer blocks wait
/// here until `shard_rows` rows are available, so the reader's shard
/// boundaries are independent of the writer's block boundaries.
#[derive(Debug, Default)]
struct DenseStage {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Rows currently decoded into the stage (including already-emitted).
    rows_staged: usize,
    /// Rows already emitted from the front of the stage.
    row_off: usize,
    /// Whether the end record was seen.
    done: bool,
}

impl DenseStage {
    fn clear(&mut self) {
        self.lo.clear();
        self.hi.clear();
        self.rows_staged = 0;
        self.row_off = 0;
        self.done = false;
    }
}

#[derive(Debug)]
enum DenseBackend {
    Text,
    Binary(DenseStage),
}

/// Reads an interval matrix file shard by shard, holding one shard (plus,
/// for binary containers, a bounded staging buffer) in memory at a time.
/// The format is sniffed from the leading bytes; see the
/// [module docs](self) for both formats.
#[derive(Debug)]
pub struct ShardReader {
    path: PathBuf,
    reader: BufReader<File>,
    data_start: u64,
    rows: usize,
    cols: usize,
    shard_rows: usize,
    next_row: usize,
    backend: DenseBackend,
}

impl ShardReader {
    /// Opens `path`, reading the header; shards will have at most
    /// `shard_rows` rows (the last one takes the remainder).
    pub fn open(path: impl AsRef<Path>, shard_rows: usize) -> io::Result<Self> {
        if shard_rows == 0 {
            return Err(invalid_data("shard_rows must be at least 1".to_string()));
        }
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let (rows, cols, data_start, backend) = if sniff_magic(&mut reader)? {
            let (rows, cols, data_start) =
                read_binary_header(&path, &mut reader, binfmt::REC_DENSE_HEADER, "dense")?;
            (
                rows,
                cols,
                data_start,
                DenseBackend::Binary(DenseStage::default()),
            )
        } else {
            let mut header = String::new();
            reader.read_line(&mut header)?;
            let (rows, cols) = parse_header(&path, &header, None)?;
            (rows, cols, reader.stream_position()?, DenseBackend::Text)
        };
        Ok(ShardReader {
            path,
            reader,
            data_start,
            rows,
            cols,
            shard_rows,
            next_row: 0,
            backend,
        })
    }

    /// [`ShardReader::open`] with the configured default shard size
    /// (`IVMF_SHARD_ROWS`, or
    /// [`ivmf_interval::DEFAULT_SHARD_ROWS`]).
    pub fn open_env(path: impl AsRef<Path>) -> io::Result<Self> {
        ShardReader::open(path, configured_shard_rows())
    }

    /// Total number of rows in the file.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured maximum rows per shard.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Rewinds to the first shard.
    pub fn rewind(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.next_row = 0;
        if let DenseBackend::Binary(stage) = &mut self.backend {
            stage.clear();
        }
        Ok(())
    }

    /// Reads the next shard, or `None` after the last row.
    pub fn read_shard(&mut self) -> io::Result<Option<IntervalMatrix>> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let take = self.shard_rows.min(self.rows - self.next_row);
        if matches!(self.backend, DenseBackend::Binary(_)) {
            return self.read_shard_binary(take).map(Some);
        }
        // Bounded pre-allocation: the header's claims are untrusted
        // until the data backs them up.
        let prealloc = (take * self.cols).min(PREALLOC_CAP);
        let mut lo = pool::take_f64(prealloc);
        let mut hi = pool::take_f64(prealloc);
        let mut line = String::new();
        for r in 0..take {
            let row = self.next_row + r;
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(StreamError::UnexpectedEof {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
            let mut values = line.split_whitespace().map(|t| t.parse::<f64>());
            for c in 0..self.cols {
                match (values.next(), values.next()) {
                    (Some(Ok(l)), Some(Ok(h))) => {
                        lo.push(l);
                        hi.push(h);
                    }
                    _ => {
                        return Err(StreamError::MalformedEntry {
                            path: self.path.display().to_string(),
                            row,
                            detail: format!("missing or unparseable bounds at column {c}"),
                        }
                        .into_io())
                    }
                }
            }
            if values.next().is_some() {
                return Err(StreamError::TrailingData {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
        }
        self.next_row += take;
        let shard = IntervalMatrix::from_bounds(
            Matrix::from_vec(take, self.cols, lo).map_err(|e| invalid_data(e.to_string()))?,
            Matrix::from_vec(take, self.cols, hi).map_err(|e| invalid_data(e.to_string()))?,
        )
        .map_err(|e| invalid_data(e.to_string()))?;
        Ok(Some(shard))
    }

    /// Binary route of [`ShardReader::read_shard`]: decode block records
    /// into the stage until `take` rows are buffered, then emit them into
    /// pooled buffers. Writer block boundaries are invisible to the
    /// caller.
    fn read_shard_binary(&mut self, take: usize) -> io::Result<IntervalMatrix> {
        let DenseBackend::Binary(stage) = &mut self.backend else {
            unreachable!("only called on binary readers")
        };
        loop {
            let avail = stage.rows_staged - stage.row_off;
            if avail >= take {
                break;
            }
            if stage.done {
                // The end record arrived before the declared rows did.
                return Err(StreamError::UnexpectedEof {
                    path: self.path.display().to_string(),
                    row: self.next_row + avail,
                }
                .into_io());
            }
            match binfmt::read_record(&mut self.reader)? {
                None => {
                    // End of file without an end record: the writer never
                    // finished this container.
                    return Err(StreamError::UnexpectedEof {
                        path: self.path.display().to_string(),
                        row: self.next_row + avail,
                    }
                    .into_io());
                }
                Some((binfmt::REC_DENSE_BLOCK, payload)) => {
                    stage.rows_staged += binfmt::decode_dense_block_into(
                        &payload,
                        self.cols,
                        &mut stage.lo,
                        &mut stage.hi,
                    )?;
                }
                Some((binfmt::REC_END, _)) => stage.done = true,
                Some((kind, _)) => {
                    return Err(invalid_data(format!(
                        "{}: unexpected record kind {kind} in a dense shard container",
                        self.path.display()
                    )))
                }
            }
        }
        let n = take * self.cols;
        let start = stage.row_off * self.cols;
        let mut lo = pool::take_f64(n);
        lo.extend_from_slice(&stage.lo[start..start + n]);
        let mut hi = pool::take_f64(n);
        hi.extend_from_slice(&stage.hi[start..start + n]);
        stage.row_off += take;
        // Compact once the emitted prefix dominates the stage, keeping
        // the staged residue (and thus peak memory) bounded by one block.
        if stage.row_off * 2 >= stage.rows_staged {
            stage.lo.drain(..stage.row_off * self.cols);
            stage.hi.drain(..stage.row_off * self.cols);
            stage.rows_staged -= stage.row_off;
            stage.row_off = 0;
        }
        self.next_row += take;
        IntervalMatrix::from_bounds(
            Matrix::from_vec(take, self.cols, lo).map_err(|e| invalid_data(e.to_string()))?,
            Matrix::from_vec(take, self.cols, hi).map_err(|e| invalid_data(e.to_string()))?,
        )
        .map_err(|e| invalid_data(e.to_string()))
    }
}

impl RowShardSource for ShardReader {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn reset(&mut self) -> ivmf_interval::Result<()> {
        self.rewind()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
    fn next_shard(&mut self) -> ivmf_interval::Result<Option<IntervalMatrix>> {
        self.read_shard()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
}

/// Loads the whole file as an in-memory row-sharded matrix (shards of
/// `shard_rows` rows).
pub fn load_sharded(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<RowShardedIntervalMatrix> {
    let mut reader = ShardReader::open(path, shard_rows)?;
    let mut shards = Vec::new();
    while let Some(shard) = reader.read_shard()? {
        shards.push(shard);
    }
    RowShardedIntervalMatrix::from_shards(shards).map_err(|e| invalid_data(e.to_string()))
}

/// One-pass out-of-core interval Gram `M†ᵀ M†` of the file at `path`: each
/// shard is loaded, folded into the streaming accumulator and dropped, so
/// peak memory is one shard plus the `m×m` accumulators — independent of
/// the row count. Bitwise identical to the in-memory streamed Gram of the
/// same matrix.
pub fn stream_interval_gram(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<IntervalMatrix> {
    let reader = ShardReader::open(path, shard_rows)?;
    let mut acc = StreamingIntervalGram::new(reader.rows(), reader.cols());
    // Decode on a background thread (IVMF_PREFETCH) while this thread
    // folds; delivery is in order, so results are bitwise unchanged.
    let mut src = PrefetchSource::from_env(Box::new(reader));
    while let Some(shard) = src.next_shard().map_err(|e| invalid_data(e.to_string()))? {
        acc.push_shard(&shard)
            .map_err(|e| invalid_data(e.to_string()))?;
        recycle_interval_matrix(shard);
    }
    acc.finish().map_err(|e| invalid_data(e.to_string()))
}

/// Incremental writer of the sparse CSR text format: create it with the
/// final row/column counts, push row blocks as they are generated (e.g.
/// one [`crate::synthetic::generate_power_law`] block at a time), and
/// [`finish`](CsrShardWriter::finish) once every row has been written.
/// Peak memory is one block — the file is produced without ever holding
/// the full matrix.
///
/// The writer is crash-safe: rows stream into a temporary sibling of the
/// destination, and only `finish` (which flushes, fsyncs and renames)
/// makes the file visible at `path`. A writer dropped before `finish` —
/// including by a panic or an early return after an I/O error — removes
/// its temp file and leaves any previously committed file untouched.
#[derive(Debug)]
pub struct CsrShardWriter {
    w: Option<BufWriter<File>>,
    path: PathBuf,
    tmp: PathBuf,
    rows: usize,
    cols: usize,
    rows_written: usize,
    format: ShardFormat,
}

impl CsrShardWriter {
    /// [`CsrShardWriter::create_with_format`] with the format configured
    /// by `IVMF_SHARD_FORMAT`.
    pub fn create(path: impl AsRef<Path>, rows: usize, cols: usize) -> io::Result<Self> {
        Self::create_with_format(path, rows, cols, ivmf_env::shard_format())
    }

    /// Opens a temporary sibling of `path` and writes the header (the
    /// `csr <rows> <cols>` text line, or the container magic plus the
    /// matching header record); `path` itself is only created by
    /// [`finish`](CsrShardWriter::finish).
    pub fn create_with_format(
        path: impl AsRef<Path>,
        rows: usize,
        cols: usize,
        format: ShardFormat,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let tmp = crate::atomic::temp_sibling(&path);
        let mut w = BufWriter::new(File::create(&tmp)?);
        let header = match format {
            ShardFormat::Text => writeln!(w, "csr {rows} {cols}"),
            ShardFormat::Binary => w.write_all(&binfmt::MAGIC).and_then(|()| {
                binfmt::write_record(
                    &mut w,
                    binfmt::REC_CSR_HEADER,
                    format!("csr {rows} {cols}\n").as_bytes(),
                )
            }),
        };
        if let Err(e) = header {
            drop(w);
            fs::remove_file(&tmp).ok();
            return Err(e);
        }
        Ok(CsrShardWriter {
            w: Some(w),
            path,
            tmp,
            rows,
            cols,
            rows_written: 0,
            format,
        })
    }

    /// The format this writer emits.
    pub fn format(&self) -> ShardFormat {
        self.format
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    fn writer(&mut self) -> &mut BufWriter<File> {
        self.w.as_mut().expect("writer is only taken by finish")
    }

    /// Appends the rows of `shard` to the file (row order across calls).
    pub fn push_shard(&mut self, shard: &CsrIntervalShard) -> io::Result<()> {
        if shard.cols() != self.cols {
            return Err(invalid_data(format!(
                "shard has {} columns, file declares {}",
                shard.cols(),
                self.cols
            )));
        }
        if self.rows_written + shard.rows() > self.rows {
            return Err(invalid_data(format!(
                "shard of {} rows overflows the declared {} rows ({} already written)",
                shard.rows(),
                self.rows,
                self.rows_written
            )));
        }
        match self.format {
            ShardFormat::Text => {
                let mut line = String::new();
                for i in 0..shard.rows() {
                    let (cols, lo, hi) = shard.row_entries(i);
                    line.clear();
                    line.push_str(&format!("{}", cols.len()));
                    for ((&c, &l), &h) in cols.iter().zip(lo).zip(hi) {
                        line.push_str(&format!(" {c} {l:?} {h:?}"));
                    }
                    writeln!(self.writer(), "{line}")?;
                }
            }
            ShardFormat::Binary => {
                // Cut large shards into records of roughly BLOCK_VALUES
                // stored entries (always at least one row per record) so
                // a single push never approaches the record ceiling.
                let row_ptr = shard.lo_shard().row_ptr();
                let mut start = 0;
                while start < shard.rows() {
                    let base = row_ptr[start];
                    let mut end = start + 1;
                    while end < shard.rows() && row_ptr[end + 1] - base < BLOCK_VALUES {
                        end += 1;
                    }
                    let payload = if start == 0 && end == shard.rows() {
                        binfmt::encode_csr_block(shard)?
                    } else {
                        let block = shard
                            .row_slice(start, end)
                            .map_err(|e| invalid_data(e.to_string()))?;
                        binfmt::encode_csr_block(&block)?
                    };
                    binfmt::write_record(self.writer(), binfmt::REC_CSR_BLOCK, &payload)?;
                    start = end;
                }
            }
        }
        self.rows_written += shard.rows();
        Ok(())
    }

    /// Validates that exactly the declared number of rows was written,
    /// then commits the file: end record (binary), flush, fsync, rename
    /// over `path`. On any error the temp file is removed and `path` is
    /// left as it was.
    pub fn finish(mut self) -> io::Result<()> {
        if self.rows_written != self.rows {
            // Drop removes the temp file.
            return Err(invalid_data(format!(
                "file declares {} rows but {} were written",
                self.rows, self.rows_written
            )));
        }
        if self.format == ShardFormat::Binary {
            binfmt::write_record(self.writer(), binfmt::REC_END, b"")?;
            // An error above returns before take: Drop removes the temp.
        }
        let mut w = self.w.take().expect("finish consumes the writer");
        let flushed = w.flush().and_then(|()| w.get_ref().sync_all());
        drop(w);
        let result = flushed.and_then(|()| crate::atomic::persist_temp(&self.tmp, &self.path));
        if result.is_err() {
            fs::remove_file(&self.tmp).ok();
        }
        result
    }
}

impl Drop for CsrShardWriter {
    fn drop(&mut self) {
        // An unfinished writer (crash, error path, forgotten finish)
        // must not leave its temp file behind.
        if let Some(w) = self.w.take() {
            drop(w);
            fs::remove_file(&self.tmp).ok();
        }
    }
}

/// Writes a CSR interval shard to `path` in the sparse text format in one
/// call. Values use shortest round-trip formatting, so a subsequent load
/// is bit-exact. The write inherits [`CsrShardWriter`]'s crash safety:
/// the file only appears at `path` complete, fsync'd and renamed.
pub fn write_csr_matrix(path: impl AsRef<Path>, m: &CsrIntervalShard) -> io::Result<()> {
    let mut w = CsrShardWriter::create(path, m.rows(), m.cols())?;
    w.push_shard(m)?;
    w.finish()
}

/// Staging buffer of the binary CSR reader: the CSR twin of
/// [`DenseStage`]. `row_ptr` holds absolute offsets into the staged entry
/// arrays (leading 0), exactly as
/// [`binfmt::decode_csr_block_into`] stacks them.
#[derive(Debug, Default)]
struct CsrStage {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    rows_staged: usize,
    row_off: usize,
    done: bool,
}

impl CsrStage {
    fn clear(&mut self) {
        self.row_ptr.clear();
        self.col_idx.clear();
        self.lo.clear();
        self.hi.clear();
        self.rows_staged = 0;
        self.row_off = 0;
        self.done = false;
    }
}

#[derive(Debug)]
enum CsrBackend {
    Text,
    Binary(CsrStage),
}

/// Reads a sparse CSR interval matrix file shard by shard, holding one
/// shard's stored entries (plus, for binary containers, a bounded staging
/// buffer) in memory at a time. The format is sniffed from the leading
/// bytes; see the [module docs](self) for both formats.
#[derive(Debug)]
pub struct CsrShardReader {
    path: PathBuf,
    reader: BufReader<File>,
    data_start: u64,
    rows: usize,
    cols: usize,
    shard_rows: usize,
    next_row: usize,
    backend: CsrBackend,
}

impl CsrShardReader {
    /// Opens `path`, reading the `csr <rows> <cols>` header; shards will
    /// have at most `shard_rows` rows (the last one takes the remainder).
    pub fn open(path: impl AsRef<Path>, shard_rows: usize) -> io::Result<Self> {
        if shard_rows == 0 {
            return Err(invalid_data("shard_rows must be at least 1".to_string()));
        }
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let (rows, cols, data_start, backend) = if sniff_magic(&mut reader)? {
            let (rows, cols, data_start) =
                read_binary_header(&path, &mut reader, binfmt::REC_CSR_HEADER, "csr")?;
            (
                rows,
                cols,
                data_start,
                CsrBackend::Binary(CsrStage::default()),
            )
        } else {
            let mut header = String::new();
            reader.read_line(&mut header)?;
            let (rows, cols) = parse_header(&path, &header, Some("csr"))?;
            (rows, cols, reader.stream_position()?, CsrBackend::Text)
        };
        Ok(CsrShardReader {
            path,
            reader,
            data_start,
            rows,
            cols,
            shard_rows,
            next_row: 0,
            backend,
        })
    }

    /// [`CsrShardReader::open`] with the configured default shard size
    /// (`IVMF_SHARD_ROWS`, or [`ivmf_interval::DEFAULT_SHARD_ROWS`]).
    pub fn open_env(path: impl AsRef<Path>) -> io::Result<Self> {
        CsrShardReader::open(path, configured_shard_rows())
    }

    /// Total number of rows in the file.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured maximum rows per shard.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Rewinds to the first shard.
    pub fn rewind(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.next_row = 0;
        if let CsrBackend::Binary(stage) = &mut self.backend {
            stage.clear();
        }
        Ok(())
    }

    /// Reads the next shard, or `None` after the last row.
    pub fn read_shard(&mut self) -> io::Result<Option<CsrIntervalShard>> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let take = self.shard_rows.min(self.rows - self.next_row);
        if matches!(self.backend, CsrBackend::Binary(_)) {
            return self.read_shard_binary(take).map(Some);
        }
        let mut row_ptr = pool::take_usize((take + 1).min(PREALLOC_CAP));
        let mut col_idx = pool::take_usize(0);
        let mut lo = pool::take_f64(0);
        let mut hi = pool::take_f64(0);
        row_ptr.push(0);
        let mut line = String::new();
        for r in 0..take {
            let row = self.next_row + r;
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(StreamError::UnexpectedEof {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
            let mut tokens = line.split_whitespace();
            let k: usize = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                StreamError::MalformedEntry {
                    path: self.path.display().to_string(),
                    row,
                    detail: "missing or unparseable stored-entry count".to_string(),
                }
                .into_io()
            })?;
            if k > self.cols {
                return Err(StreamError::EntryCountOutOfRange {
                    path: self.path.display().to_string(),
                    row,
                    count: k,
                    cols: self.cols,
                }
                .into_io());
            }
            for e in 0..k {
                let c = tokens.next().and_then(|t| t.parse::<usize>().ok());
                let l = tokens.next().and_then(|t| t.parse::<f64>().ok());
                let h = tokens.next().and_then(|t| t.parse::<f64>().ok());
                match (c, l, h) {
                    (Some(c), Some(l), Some(h)) => {
                        if c >= self.cols {
                            return Err(StreamError::ColumnOutOfRange {
                                path: self.path.display().to_string(),
                                row,
                                column: c,
                                cols: self.cols,
                            }
                            .into_io());
                        }
                        col_idx.push(c);
                        lo.push(l);
                        hi.push(h);
                    }
                    _ => {
                        return Err(StreamError::MalformedEntry {
                            path: self.path.display().to_string(),
                            row,
                            detail: format!("missing or unparseable entry {e}"),
                        }
                        .into_io())
                    }
                }
            }
            if tokens.next().is_some() {
                return Err(StreamError::TrailingData {
                    path: self.path.display().to_string(),
                    row,
                }
                .into_io());
            }
            row_ptr.push(col_idx.len());
        }
        self.next_row += take;
        let shard = CsrIntervalShard::new(take, self.cols, row_ptr, col_idx, lo, hi)
            .map_err(|e| invalid_data(e.to_string()))?;
        Ok(Some(shard))
    }

    /// Binary route of [`CsrShardReader::read_shard`]: decode block
    /// records into the stage until `take` rows are buffered, then emit
    /// them (offsets rebased) into pooled buffers. Writer block
    /// boundaries are invisible to the caller.
    fn read_shard_binary(&mut self, take: usize) -> io::Result<CsrIntervalShard> {
        let CsrBackend::Binary(stage) = &mut self.backend else {
            unreachable!("only called on binary readers")
        };
        loop {
            let avail = stage.rows_staged - stage.row_off;
            if avail >= take {
                break;
            }
            if stage.done {
                // The end record arrived before the declared rows did.
                return Err(StreamError::UnexpectedEof {
                    path: self.path.display().to_string(),
                    row: self.next_row + avail,
                }
                .into_io());
            }
            match binfmt::read_record(&mut self.reader)? {
                None => {
                    // End of file without an end record: the writer never
                    // finished this container.
                    return Err(StreamError::UnexpectedEof {
                        path: self.path.display().to_string(),
                        row: self.next_row + avail,
                    }
                    .into_io());
                }
                Some((binfmt::REC_CSR_BLOCK, payload)) => {
                    stage.rows_staged += binfmt::decode_csr_block_into(
                        &payload,
                        self.cols,
                        &mut stage.row_ptr,
                        &mut stage.col_idx,
                        &mut stage.lo,
                        &mut stage.hi,
                    )?;
                }
                Some((binfmt::REC_END, _)) => stage.done = true,
                Some((kind, _)) => {
                    return Err(invalid_data(format!(
                        "{}: unexpected record kind {kind} in a CSR shard container",
                        self.path.display()
                    )))
                }
            }
        }
        let (r0, r1) = (stage.row_off, stage.row_off + take);
        let (s, e) = (stage.row_ptr[r0], stage.row_ptr[r1]);
        let mut row_ptr = pool::take_usize(take + 1);
        row_ptr.extend(stage.row_ptr[r0..=r1].iter().map(|&p| p - s));
        let mut col_idx = pool::take_usize(e - s);
        col_idx.extend_from_slice(&stage.col_idx[s..e]);
        let mut lo = pool::take_f64(e - s);
        lo.extend_from_slice(&stage.lo[s..e]);
        let mut hi = pool::take_f64(e - s);
        hi.extend_from_slice(&stage.hi[s..e]);
        stage.row_off = r1;
        // Compact once the emitted prefix dominates the stage, keeping
        // the staged residue (and thus peak memory) bounded by one block.
        if stage.row_off * 2 >= stage.rows_staged {
            let cut = stage.row_ptr[stage.row_off];
            stage.col_idx.drain(..cut);
            stage.lo.drain(..cut);
            stage.hi.drain(..cut);
            stage.row_ptr.drain(..stage.row_off);
            for p in stage.row_ptr.iter_mut() {
                *p -= cut;
            }
            stage.rows_staged -= stage.row_off;
            stage.row_off = 0;
        }
        self.next_row += take;
        CsrIntervalShard::new(take, self.cols, row_ptr, col_idx, lo, hi)
            .map_err(|e| invalid_data(e.to_string()))
    }
}

impl CsrShardSource for CsrShardReader {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn reset(&mut self) -> ivmf_interval::Result<()> {
        self.rewind()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
    fn next_shard(&mut self) -> ivmf_interval::Result<Option<CsrIntervalShard>> {
        self.read_shard()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
}

/// Loads the whole CSR file as an in-memory sparse sharded matrix (shards
/// of `shard_rows` rows).
pub fn load_csr_sharded(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<CsrShardedIntervalMatrix> {
    let mut reader = CsrShardReader::open(path, shard_rows)?;
    let mut shards = Vec::new();
    while let Some(shard) = reader.read_shard()? {
        shards.push(shard);
    }
    CsrShardedIntervalMatrix::from_shards(shards).map_err(|e| invalid_data(e.to_string()))
}

/// One-pass out-of-core **sparse** interval Gram of the CSR file at
/// `path`: each shard's stored entries are loaded, folded into the sparse
/// streaming accumulator and dropped, so peak memory is one shard's
/// nonzeros plus the `m×m` accumulators — independent of the row count.
/// Bitwise identical to the dense Gram of the densified matrix.
pub fn stream_csr_interval_gram(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<IntervalMatrix> {
    let reader = CsrShardReader::open(path, shard_rows)?;
    let mut acc = SparseStreamingIntervalGram::new(reader.rows(), reader.cols());
    // Decode on a background thread (IVMF_PREFETCH) while this thread
    // folds; delivery is in order, so results are bitwise unchanged.
    let mut src = PrefetchCsrSource::from_env(Box::new(reader));
    while let Some(shard) = src.next_shard().map_err(|e| invalid_data(e.to_string()))? {
        acc.push_shard(&shard)
            .map_err(|e| invalid_data(e.to_string()))?;
        recycle_csr_interval_shard(shard);
    }
    acc.finish().map_err(|e| invalid_data(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_uniform, SyntheticConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ivmf_stream_{}_{tag}.txt", std::process::id()))
    }

    fn sample_matrix(seed: u64, rows: usize, cols: usize) -> IntervalMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_uniform(
            &SyntheticConfig::paper_default().with_shape(rows, cols),
            &mut rng,
        )
    }

    #[test]
    fn write_then_load_round_trips_bit_exactly() {
        let m = sample_matrix(1, 19, 7);
        let path = temp_path("round_trip");
        write_interval_matrix(&path, &m).unwrap();
        let loaded = load_sharded(&path, 5).unwrap();
        assert_eq!(loaded.num_shards(), 4);
        assert_eq!(loaded.to_dense(), m, "text round-trip must be bit-exact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_reader_streams_in_order_and_rewinds() {
        let m = sample_matrix(2, 11, 4);
        let path = temp_path("reader");
        write_interval_matrix(&path, &m).unwrap();
        let mut reader = ShardReader::open(&path, 3).unwrap();
        assert_eq!((reader.rows(), reader.cols()), (11, 4));
        assert_eq!(reader.shard_rows(), 3);
        let mut rows = 0;
        let mut shards = 0;
        while let Some(shard) = reader.read_shard().unwrap() {
            rows += shard.rows();
            shards += 1;
        }
        assert_eq!((rows, shards), (11, 4));
        // Rewind and stream again through the RowShardSource interface.
        RowShardSource::reset(&mut reader).unwrap();
        let first = RowShardSource::next_shard(&mut reader).unwrap().unwrap();
        assert_eq!(first.rows(), 3);
        assert_eq!(first.get_raw(0, 0), m.get_raw(0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_core_gram_matches_in_memory_streamed_gram_bitwise() {
        let m = sample_matrix(3, 37, 9);
        let path = temp_path("gram");
        write_interval_matrix(&path, &m).unwrap();
        let expected = m.interval_gram_streamed().unwrap();
        for shard_rows in [1usize, 5, 37] {
            let gram = stream_interval_gram(&path, shard_rows).unwrap();
            assert_eq!(
                gram, expected,
                "out-of-core gram (shard_rows={shard_rows}) diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    fn sample_csr(seed: u64, rows: usize, cols: usize, nnz_per_row: usize) -> CsrIntervalShard {
        let mut rng = SmallRng::seed_from_u64(seed);
        crate::synthetic::generate_power_law(
            &crate::synthetic::PowerLawConfig::ratings_like(rows, cols)
                .with_nnz_per_row(nnz_per_row),
            &mut rng,
        )
    }

    #[test]
    fn csr_write_then_load_round_trips_bit_exactly() {
        let m = sample_csr(11, 23, 40, 6);
        let path = temp_path("csr_round_trip");
        write_csr_matrix(&path, &m).unwrap();
        let loaded = load_csr_sharded(&path, 5).unwrap();
        assert_eq!(loaded.num_shards(), 5);
        assert_eq!(loaded.nnz(), m.nnz());
        assert_eq!(
            loaded.to_dense(),
            m.to_dense(),
            "CSR text round-trip must be bit-exact"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_writer_streams_blocks_without_holding_the_matrix() {
        let whole = sample_csr(12, 30, 25, 4);
        let blocks = ivmf_interval::CsrShardedIntervalMatrix::from_csr(&whole, 7).unwrap();
        let path = temp_path("csr_blocks");
        let mut w = CsrShardWriter::create(&path, whole.rows(), whole.cols()).unwrap();
        for shard in blocks.shards() {
            w.push_shard(shard).unwrap();
        }
        assert_eq!(w.rows_written(), 30);
        w.finish().unwrap();
        let loaded = load_csr_sharded(&path, 30).unwrap();
        assert_eq!(loaded.to_dense(), whole.to_dense());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_reader_streams_in_order_and_rewinds() {
        let m = sample_csr(13, 11, 14, 3);
        let path = temp_path("csr_reader");
        write_csr_matrix(&path, &m).unwrap();
        let mut reader = CsrShardReader::open(&path, 3).unwrap();
        assert_eq!((reader.rows(), reader.cols()), (11, 14));
        assert_eq!(reader.shard_rows(), 3);
        let mut rows = 0;
        let mut shards = 0;
        while let Some(shard) = reader.read_shard().unwrap() {
            rows += shard.rows();
            shards += 1;
        }
        assert_eq!((rows, shards), (11, 4));
        // Rewind and stream again through the CsrShardSource interface.
        CsrShardSource::reset(&mut reader).unwrap();
        let first = CsrShardSource::next_shard(&mut reader).unwrap().unwrap();
        assert_eq!(first.rows(), 3);
        assert_eq!(first.row_entries(0), m.row_entries(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_core_sparse_gram_matches_the_dense_route_bitwise() {
        let m = sample_csr(14, 37, 9, 4);
        let path = temp_path("csr_gram");
        write_csr_matrix(&path, &m).unwrap();
        let expected = m.to_dense().interval_gram_streamed().unwrap();
        for shard_rows in [1usize, 5, 37] {
            let gram = stream_csr_interval_gram(&path, shard_rows).unwrap();
            assert_eq!(
                gram, expected,
                "out-of-core sparse gram (shard_rows={shard_rows}) diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_formats_are_mutually_exclusive_and_validated() {
        let path = temp_path("csr_malformed");
        // A dense file is rejected by the CSR reader and vice versa.
        let dense = sample_matrix(15, 3, 3);
        write_interval_matrix(&path, &dense).unwrap();
        assert!(CsrShardReader::open(&path, 4).is_err());
        let m = sample_csr(15, 3, 3, 2);
        write_csr_matrix(&path, &m).unwrap();
        assert!(ShardReader::open(&path, 4).is_err());
        // Truncated CSR payload fails loudly.
        std::fs::write(&path, "csr 2 3\n1 0 1.0 2.0\n").unwrap();
        let mut reader = CsrShardReader::open(&path, 4).unwrap();
        assert!(reader.read_shard().is_err());
        // Declared entry count beyond the line's tokens fails loudly.
        std::fs::write(&path, "csr 1 3\n2 0 1.0 2.0\n").unwrap();
        let mut reader = CsrShardReader::open(&path, 4).unwrap();
        assert!(reader.read_shard().is_err());
        // Writer validates shape and row accounting.
        let w = CsrShardWriter::create(&path, 5, 3).unwrap();
        assert!(w.finish().is_err());
        let mut w = CsrShardWriter::create(&path, 2, 3).unwrap();
        assert!(w.push_shard(&sample_csr(16, 2, 4, 2)).is_err());
        assert!(w.push_shard(&sample_csr(16, 3, 3, 2)).is_err());
        assert!(CsrShardWriter::create(&path, 0, 3)
            .unwrap()
            .finish()
            .is_ok());
        std::fs::remove_file(&path).ok();
    }

    fn typed(err: &io::Error) -> &StreamError {
        StreamError::from_io(err).expect("reader errors must carry a typed StreamError")
    }

    #[test]
    fn dense_reader_errors_are_typed_and_named() {
        let path = temp_path("typed_dense");
        // Malformed header: unparseable row count.
        std::fs::write(&path, "banana 2\n").unwrap();
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::MalformedHeader { .. }
        ));
        // Trailing tokens after the header.
        std::fs::write(&path, "2 2 surprise\n").unwrap();
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::TrailingData {
                row: usize::MAX,
                ..
            }
        ));
        // Element count overflowing usize is rejected before any read.
        std::fs::write(&path, format!("{} 3\n", usize::MAX / 2)).unwrap();
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::DimensionOverflow { cols: 3, .. }
        ));
        // Unexpected EOF carries the failing row and the EOF io kind.
        std::fs::write(&path, "2 2\n1.0 2.0 3.0 4.0\n").unwrap();
        let err = ShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(matches!(
            typed(&err),
            StreamError::UnexpectedEof { row: 1, .. }
        ));
        // Unparseable value.
        std::fs::write(&path, "1 2\n1.0 oops 3.0 4.0\n").unwrap();
        let err = ShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(matches!(
            typed(&err),
            StreamError::MalformedEntry { row: 0, .. }
        ));
        // Trailing tokens after the declared bounds.
        std::fs::write(&path, "1 1\n1.0 2.0 3.0\n").unwrap();
        let err = ShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::TrailingData { row: 0, .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_reader_errors_are_typed_and_named() {
        let path = temp_path("typed_csr");
        // Entry count beyond the declared width.
        std::fs::write(
            &path,
            "csr 1 3\n4 0 1.0 2.0 1 1.0 2.0 2 1.0 2.0 2 1.0 2.0\n",
        )
        .unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::EntryCountOutOfRange {
                row: 0,
                count: 4,
                cols: 3,
                ..
            }
        ));
        // Column index beyond the declared width.
        std::fs::write(&path, "csr 1 3\n1 7 1.0 2.0\n").unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::ColumnOutOfRange {
                row: 0,
                column: 7,
                cols: 3,
                ..
            }
        ));
        // Trailing tokens after the declared entries.
        std::fs::write(&path, "csr 1 3\n1 0 1.0 2.0 extra\n").unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert!(matches!(
            typed(&err),
            StreamError::TrailingData { row: 0, .. }
        ));
        // Dimension overflow applies to the CSR header too.
        std::fs::write(&path, format!("csr {} {}\n", usize::MAX / 2, 4)).unwrap();
        assert!(matches!(
            typed(&CsrShardReader::open(&path, 4).unwrap_err()),
            StreamError::DimensionOverflow { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_writer_is_crash_safe_until_finish() {
        let committed = sample_csr(21, 4, 6, 2);
        let path = temp_path("csr_crash_safe");
        write_csr_matrix(&path, &committed).unwrap();
        let dir = path.parent().unwrap().to_path_buf();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let temps = |tag: &str| -> Vec<String> {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.contains(&stem) && n.contains(".tmp."))
                .inspect(|n| println!("{tag}: stray temp {n}"))
                .collect()
        };
        // A writer abandoned mid-stream (simulated kill between write and
        // rename) leaves the committed file intact and no temp behind.
        {
            let mut w = CsrShardWriter::create(&path, 8, 6).unwrap();
            w.push_shard(&sample_csr(22, 3, 6, 2)).unwrap();
            // dropped unfinished here
        }
        assert!(temps("after drop").is_empty());
        let loaded = load_csr_sharded(&path, 8).unwrap();
        assert_eq!(loaded.to_dense(), committed.to_dense());
        // A finish that fails row validation also cleans up and keeps
        // the committed file.
        assert!(CsrShardWriter::create(&path, 8, 6)
            .unwrap()
            .finish()
            .is_err());
        assert!(temps("after failed finish").is_empty());
        assert_eq!(
            load_csr_sharded(&path, 8).unwrap().to_dense(),
            committed.to_dense()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_dense_containers_round_trip_bitwise_across_shard_layouts() {
        let m = sample_matrix(31, 29, 6);
        let text = temp_path("bin_dense_text");
        let bin = temp_path("bin_dense");
        write_interval_matrix(&text, &m).unwrap();
        let mut w = ShardWriter::create_with_format(&bin, 29, 6, ShardFormat::Binary).unwrap();
        assert_eq!(w.format(), ShardFormat::Binary);
        // Push in writer blocks that do NOT divide the reader shards.
        for start in (0..29).step_by(7) {
            let end = (start + 7).min(29);
            let block = IntervalMatrix::from_bounds(
                Matrix::from_vec(
                    end - start,
                    6,
                    m.lo().as_slice()[start * 6..end * 6].to_vec(),
                )
                .unwrap(),
                Matrix::from_vec(
                    end - start,
                    6,
                    m.hi().as_slice()[start * 6..end * 6].to_vec(),
                )
                .unwrap(),
            )
            .unwrap();
            w.push_shard(&block).unwrap();
        }
        w.finish().unwrap();
        // The reader sniffs the format; shard layout is invisible.
        for shard_rows in [1usize, 4, 29, 100] {
            assert_eq!(
                load_sharded(&bin, shard_rows).unwrap().to_dense(),
                m,
                "binary round-trip diverged at shard_rows={shard_rows}"
            );
        }
        assert_eq!(
            stream_interval_gram(&bin, 5).unwrap(),
            stream_interval_gram(&text, 5).unwrap(),
            "binary and text ingest must produce bitwise-identical Grams"
        );
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn binary_csr_containers_round_trip_bitwise_across_shard_layouts() {
        let m = sample_csr(32, 41, 30, 5);
        let text = temp_path("bin_csr_text");
        let bin = temp_path("bin_csr");
        write_csr_matrix(&text, &m).unwrap();
        let blocks = ivmf_interval::CsrShardedIntervalMatrix::from_csr(&m, 9).unwrap();
        let mut w = CsrShardWriter::create_with_format(&bin, 41, 30, ShardFormat::Binary).unwrap();
        for shard in blocks.shards() {
            w.push_shard(shard).unwrap();
        }
        w.finish().unwrap();
        for shard_rows in [1usize, 4, 41, 100] {
            assert_eq!(
                load_csr_sharded(&bin, shard_rows).unwrap().to_dense(),
                m.to_dense(),
                "binary CSR round-trip diverged at shard_rows={shard_rows}"
            );
        }
        assert_eq!(
            stream_csr_interval_gram(&bin, 6).unwrap(),
            stream_csr_interval_gram(&text, 6).unwrap(),
            "binary and text CSR ingest must produce bitwise-identical Grams"
        );
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn binary_containers_report_typed_errors_never_panic() {
        let m = sample_csr(33, 13, 10, 3);
        let path = temp_path("bin_corrupt");
        let mut w = CsrShardWriter::create_with_format(&path, 13, 10, ShardFormat::Binary).unwrap();
        w.push_shard(&m).unwrap();
        w.finish().unwrap();
        let committed = std::fs::read(&path).unwrap();

        // Truncation inside the block record: UnexpectedEof.
        let headerless = 8 + binfmt::record_len("csr 13 10\n".len());
        std::fs::write(&path, &committed[..headerless + 30]).unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Truncation that removes whole records (no end record): typed EOF.
        std::fs::write(&path, &committed[..headerless]).unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(matches!(
            typed(&err),
            StreamError::UnexpectedEof { row: 0, .. }
        ));

        // A flipped payload bit: InvalidData via the record checksum.
        let mut flipped = committed.clone();
        let mid = headerless + 20;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = CsrShardReader::open(&path, 4)
            .unwrap()
            .read_shard()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // The dense reader refuses a CSR container and vice versa.
        assert!(matches!(
            typed(&ShardReader::open(&path, 4).unwrap_err()),
            StreamError::MalformedHeader { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_readers_rewind_and_prefetch_depths_agree_bitwise() {
        let m = sample_csr(34, 27, 18, 4);
        let path = temp_path("bin_rewind");
        let mut w = CsrShardWriter::create_with_format(&path, 27, 18, ShardFormat::Binary).unwrap();
        w.push_shard(&m).unwrap();
        w.finish().unwrap();
        let mut reader = CsrShardReader::open(&path, 5).unwrap();
        let first = reader.read_shard().unwrap().unwrap();
        while reader.read_shard().unwrap().is_some() {}
        reader.rewind().unwrap();
        assert_eq!(reader.read_shard().unwrap().unwrap(), first);

        // IVMF_PREFETCH must not perturb bits (depth 0 vs 1 vs 2).
        let baseline = stream_csr_interval_gram(&path, 5).unwrap();
        for depth in ["0", "1", "2"] {
            std::env::set_var(ivmf_env::PREFETCH, depth);
            let gram = stream_csr_interval_gram(&path, 5).unwrap();
            std::env::remove_var(ivmf_env::PREFETCH);
            assert_eq!(gram, baseline, "prefetch depth {depth} perturbed the Gram");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_malformed_inputs() {
        let path = temp_path("malformed");
        std::fs::write(&path, "not a header\n").unwrap();
        assert!(ShardReader::open(&path, 4).is_err());
        std::fs::write(&path, "2 2\n1.0 2.0 3.0 4.0\n").unwrap();
        let mut reader = ShardReader::open(&path, 4).unwrap();
        // Second row is missing: the shard read must fail loudly.
        assert!(reader.read_shard().is_err());
        let m = sample_matrix(4, 2, 2);
        write_interval_matrix(&path, &m).unwrap();
        assert!(ShardReader::open(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
