//! Chunked disk loaders for row-sharded interval matrices.
//!
//! The decomposition pipeline's streaming stages consume interval matrices
//! one row-block shard at a time, so a matrix never has to fit in memory —
//! it only has to *stream*. This module provides the disk side of that
//! contract:
//!
//! * [`write_interval_matrix`] — writes an interval matrix to a simple
//!   line-per-row text format (values printed with Rust's shortest
//!   round-trip `f64` formatting, so loading reproduces every bit),
//! * [`ShardReader`] — reads such a file back in shards of a configurable
//!   number of rows (`IVMF_SHARD_ROWS` by default), holding only one shard
//!   in memory; it implements [`RowShardSource`], so it plugs directly
//!   into `ivmf_core::Pipeline::new_streaming` for end-to-end out-of-core
//!   decomposition of the Gram-route algorithms,
//! * [`load_sharded`] — materializes the whole file as an in-memory
//!   [`RowShardedIntervalMatrix`],
//! * [`stream_interval_gram`] — one-pass out-of-core interval Gram:
//!   `O(shard + m²)` peak memory regardless of the row count, bitwise
//!   identical to the in-memory streamed Gram (and to the dense fast path
//!   for matrices within one accumulation chunk).
//!
//! ## File format
//!
//! ```text
//! <rows> <cols>
//! lo(0,0) hi(0,0) lo(0,1) hi(0,1) …   # one line per row, interleaved bounds
//! …
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ivmf_interval::{
    configured_shard_rows, IntervalError, IntervalMatrix, RowShardSource, RowShardedIntervalMatrix,
    StreamingIntervalGram,
};
use ivmf_linalg::Matrix;

fn invalid_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes an interval matrix to `path` in the module's line-per-row text
/// format. Values use shortest round-trip formatting, so a subsequent load
/// is bit-exact.
pub fn write_interval_matrix(path: impl AsRef<Path>, m: &IntervalMatrix) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let (rows, cols) = m.shape();
    writeln!(w, "{rows} {cols}")?;
    for i in 0..rows {
        let mut line = String::new();
        for j in 0..cols {
            if j > 0 {
                line.push(' ');
            }
            let (lo, hi) = m.get_raw(i, j);
            line.push_str(&format!("{lo:?} {hi:?}"));
        }
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Reads an interval matrix file shard by shard, holding one shard in
/// memory at a time. See the [module docs](self) for the format.
#[derive(Debug)]
pub struct ShardReader {
    path: PathBuf,
    reader: BufReader<File>,
    data_start: u64,
    rows: usize,
    cols: usize,
    shard_rows: usize,
    next_row: usize,
}

impl ShardReader {
    /// Opens `path`, reading the header; shards will have at most
    /// `shard_rows` rows (the last one takes the remainder).
    pub fn open(path: impl AsRef<Path>, shard_rows: usize) -> io::Result<Self> {
        if shard_rows == 0 {
            return Err(invalid_data("shard_rows must be at least 1".to_string()));
        }
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let mut it = header.split_whitespace();
        let rows: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| invalid_data(format!("{}: malformed header", path.display())))?;
        let cols: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| invalid_data(format!("{}: malformed header", path.display())))?;
        let data_start = reader.stream_position()?;
        Ok(ShardReader {
            path,
            reader,
            data_start,
            rows,
            cols,
            shard_rows,
            next_row: 0,
        })
    }

    /// [`ShardReader::open`] with the configured default shard size
    /// (`IVMF_SHARD_ROWS`, or
    /// [`ivmf_interval::DEFAULT_SHARD_ROWS`]).
    pub fn open_env(path: impl AsRef<Path>) -> io::Result<Self> {
        ShardReader::open(path, configured_shard_rows())
    }

    /// Total number of rows in the file.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured maximum rows per shard.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Rewinds to the first shard.
    pub fn rewind(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.next_row = 0;
        Ok(())
    }

    /// Reads the next shard, or `None` after the last row.
    pub fn read_shard(&mut self) -> io::Result<Option<IntervalMatrix>> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let take = self.shard_rows.min(self.rows - self.next_row);
        let mut lo = Vec::with_capacity(take * self.cols);
        let mut hi = Vec::with_capacity(take * self.cols);
        let mut line = String::new();
        for r in 0..take {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(invalid_data(format!(
                    "{}: unexpected end of file at row {}",
                    self.path.display(),
                    self.next_row + r
                )));
            }
            let mut values = line.split_whitespace().map(|t| t.parse::<f64>());
            for c in 0..self.cols {
                match (values.next(), values.next()) {
                    (Some(Ok(l)), Some(Ok(h))) => {
                        lo.push(l);
                        hi.push(h);
                    }
                    _ => {
                        return Err(invalid_data(format!(
                            "{}: malformed entry at row {}, column {c}",
                            self.path.display(),
                            self.next_row + r
                        )))
                    }
                }
            }
        }
        self.next_row += take;
        let shard = IntervalMatrix::from_bounds(
            Matrix::from_vec(take, self.cols, lo).map_err(|e| invalid_data(e.to_string()))?,
            Matrix::from_vec(take, self.cols, hi).map_err(|e| invalid_data(e.to_string()))?,
        )
        .map_err(|e| invalid_data(e.to_string()))?;
        Ok(Some(shard))
    }
}

impl RowShardSource for ShardReader {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn reset(&mut self) -> ivmf_interval::Result<()> {
        self.rewind()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
    fn next_shard(&mut self) -> ivmf_interval::Result<Option<IntervalMatrix>> {
        self.read_shard()
            .map_err(|e| IntervalError::Source(e.to_string()))
    }
}

/// Loads the whole file as an in-memory row-sharded matrix (shards of
/// `shard_rows` rows).
pub fn load_sharded(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<RowShardedIntervalMatrix> {
    let mut reader = ShardReader::open(path, shard_rows)?;
    let mut shards = Vec::new();
    while let Some(shard) = reader.read_shard()? {
        shards.push(shard);
    }
    RowShardedIntervalMatrix::from_shards(shards).map_err(|e| invalid_data(e.to_string()))
}

/// One-pass out-of-core interval Gram `M†ᵀ M†` of the file at `path`: each
/// shard is loaded, folded into the streaming accumulator and dropped, so
/// peak memory is one shard plus the `m×m` accumulators — independent of
/// the row count. Bitwise identical to the in-memory streamed Gram of the
/// same matrix.
pub fn stream_interval_gram(
    path: impl AsRef<Path>,
    shard_rows: usize,
) -> io::Result<IntervalMatrix> {
    let mut reader = ShardReader::open(path, shard_rows)?;
    let mut acc = StreamingIntervalGram::new(reader.rows(), reader.cols());
    while let Some(shard) = reader.read_shard()? {
        acc.push_shard(&shard)
            .map_err(|e| invalid_data(e.to_string()))?;
    }
    acc.finish().map_err(|e| invalid_data(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_uniform, SyntheticConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ivmf_stream_{}_{tag}.txt", std::process::id()))
    }

    fn sample_matrix(seed: u64, rows: usize, cols: usize) -> IntervalMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_uniform(
            &SyntheticConfig::paper_default().with_shape(rows, cols),
            &mut rng,
        )
    }

    #[test]
    fn write_then_load_round_trips_bit_exactly() {
        let m = sample_matrix(1, 19, 7);
        let path = temp_path("round_trip");
        write_interval_matrix(&path, &m).unwrap();
        let loaded = load_sharded(&path, 5).unwrap();
        assert_eq!(loaded.num_shards(), 4);
        assert_eq!(loaded.to_dense(), m, "text round-trip must be bit-exact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_reader_streams_in_order_and_rewinds() {
        let m = sample_matrix(2, 11, 4);
        let path = temp_path("reader");
        write_interval_matrix(&path, &m).unwrap();
        let mut reader = ShardReader::open(&path, 3).unwrap();
        assert_eq!((reader.rows(), reader.cols()), (11, 4));
        assert_eq!(reader.shard_rows(), 3);
        let mut rows = 0;
        let mut shards = 0;
        while let Some(shard) = reader.read_shard().unwrap() {
            rows += shard.rows();
            shards += 1;
        }
        assert_eq!((rows, shards), (11, 4));
        // Rewind and stream again through the RowShardSource interface.
        RowShardSource::reset(&mut reader).unwrap();
        let first = RowShardSource::next_shard(&mut reader).unwrap().unwrap();
        assert_eq!(first.rows(), 3);
        assert_eq!(first.get_raw(0, 0), m.get_raw(0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_core_gram_matches_in_memory_streamed_gram_bitwise() {
        let m = sample_matrix(3, 37, 9);
        let path = temp_path("gram");
        write_interval_matrix(&path, &m).unwrap();
        let expected = m.interval_gram_streamed().unwrap();
        for shard_rows in [1usize, 5, 37] {
            let gram = stream_interval_gram(&path, shard_rows).unwrap();
            assert_eq!(
                gram, expected,
                "out-of-core gram (shard_rows={shard_rows}) diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_malformed_inputs() {
        let path = temp_path("malformed");
        std::fs::write(&path, "not a header\n").unwrap();
        assert!(ShardReader::open(&path, 4).is_err());
        std::fs::write(&path, "2 2\n1.0 2.0 3.0 4.0\n").unwrap();
        let mut reader = ShardReader::open(&path, 4).unwrap();
        // Second row is missing: the shard read must fail loudly.
        assert!(reader.read_shard().is_err());
        let m = sample_matrix(4, 2, 2);
        write_interval_matrix(&path, &m).unwrap();
        assert!(ShardReader::open(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
