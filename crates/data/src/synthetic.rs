//! Uniform synthetic interval matrices (Table 1 of the paper).
//!
//! A scalar base matrix is drawn uniformly at random; a configurable
//! fraction of entries is zeroed out ("matrix density: percentage of
//! 0-values"), and a configurable fraction of the remaining non-zero cells
//! is replaced by an interval whose width is uniformly chosen between 0 and
//! `intensity × value` ("interval density" / "interval intensity").

use rand::Rng;
use serde::{Deserialize, Serialize};

use ivmf_interval::IntervalMatrix;
use ivmf_linalg::Matrix;

/// Parameters of the uniform synthetic generator (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Fraction of entries forced to zero (the paper's "matrix density:
    /// percentage of 0-values": 0.0, 0.5, 0.9).
    pub zero_fraction: f64,
    /// Fraction of the non-zero entries that become genuine intervals
    /// (the paper's "interval density", default 100%).
    pub interval_density: f64,
    /// Maximum interval width as a fraction of the cell value (the paper's
    /// "interval intensity", default 100%). The actual width of each
    /// interval is drawn uniformly from `[0, intensity × value]`.
    pub interval_intensity: f64,
    /// Lower bound of the uniform scalar values.
    pub value_min: f64,
    /// Upper bound of the uniform scalar values.
    pub value_max: f64,
}

impl SyntheticConfig {
    /// The paper's default configuration (bold values of Table 1):
    /// a 40 × 250 dense matrix, interval density 100%, intensity 100%.
    pub fn paper_default() -> Self {
        SyntheticConfig {
            rows: 40,
            cols: 250,
            zero_fraction: 0.0,
            interval_density: 1.0,
            interval_intensity: 1.0,
            value_min: 1.0,
            value_max: 10.0,
        }
    }

    /// Sets the matrix shape.
    pub fn with_shape(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Sets the fraction of zero entries.
    pub fn with_zero_fraction(mut self, f: f64) -> Self {
        self.zero_fraction = f;
        self
    }

    /// Sets the interval density (fraction of non-zero cells that become
    /// intervals).
    pub fn with_interval_density(mut self, d: f64) -> Self {
        self.interval_density = d;
        self
    }

    /// Sets the interval intensity (maximum relative interval width).
    pub fn with_interval_intensity(mut self, i: f64) -> Self {
        self.interval_intensity = i;
        self
    }

    /// The paper's default target rank for this configuration (20).
    pub fn default_rank(&self) -> usize {
        20usize.min(self.rows.min(self.cols))
    }
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig::paper_default()
    }
}

/// Generates a uniform interval matrix according to `config`.
///
/// The construction follows Section 6.1.1: interval cells are selected
/// according to the interval-density parameter and each selected scalar
/// value `v` is replaced by `[v, v + w]` where `w` is uniform in
/// `[0, intensity × v]`.
pub fn generate_uniform<R: Rng + ?Sized>(config: &SyntheticConfig, rng: &mut R) -> IntervalMatrix {
    let mut lo = Matrix::zeros(config.rows, config.cols);
    let mut hi = Matrix::zeros(config.rows, config.cols);
    for i in 0..config.rows {
        for j in 0..config.cols {
            if rng.gen::<f64>() < config.zero_fraction {
                continue;
            }
            let value = rng.gen_range(config.value_min..config.value_max);
            let (l, h) = if rng.gen::<f64>() < config.interval_density {
                let width = rng.gen::<f64>() * config.interval_intensity * value.abs();
                (value, value + width)
            } else {
                (value, value)
            };
            lo[(i, j)] = l;
            hi[(i, j)] = h;
        }
    }
    IntervalMatrix::from_bounds(lo, hi).expect("bounds share a shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_config_matches_paper() {
        let c = SyntheticConfig::paper_default();
        assert_eq!((c.rows, c.cols), (40, 250));
        assert_eq!(c.interval_density, 1.0);
        assert_eq!(c.interval_intensity, 1.0);
        assert_eq!(c.zero_fraction, 0.0);
        assert_eq!(c.default_rank(), 20);
        assert_eq!(SyntheticConfig::default(), c);
    }

    #[test]
    fn generated_matrix_has_requested_shape_and_is_proper() {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = SyntheticConfig::paper_default().with_shape(25, 30);
        let m = generate_uniform(&config, &mut rng);
        assert_eq!(m.shape(), (25, 30));
        assert!(m.is_proper());
        assert!(!m.has_non_finite());
    }

    #[test]
    fn zero_fraction_controls_sparsity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let config = SyntheticConfig::paper_default()
            .with_shape(60, 60)
            .with_zero_fraction(0.5);
        let m = generate_uniform(&config, &mut rng);
        let zf = m.zero_fraction();
        assert!((zf - 0.5).abs() < 0.06, "zero fraction {zf}");
        let dense = generate_uniform(
            &SyntheticConfig::paper_default().with_shape(30, 30),
            &mut rng,
        );
        assert_eq!(dense.zero_fraction(), 0.0);
    }

    #[test]
    fn interval_density_controls_interval_fraction() {
        let mut rng = SmallRng::seed_from_u64(3);
        let config = SyntheticConfig::paper_default()
            .with_shape(60, 60)
            .with_interval_density(0.25);
        let m = generate_uniform(&config, &mut rng);
        let d = m.interval_density();
        assert!((d - 0.25).abs() < 0.06, "interval density {d}");
        // Zero density produces a scalar matrix.
        let scalar = generate_uniform(
            &SyntheticConfig::paper_default()
                .with_shape(20, 20)
                .with_interval_density(0.0),
            &mut rng,
        );
        assert!(scalar.is_scalar());
    }

    #[test]
    fn interval_intensity_bounds_relative_width() {
        let mut rng = SmallRng::seed_from_u64(4);
        let config = SyntheticConfig::paper_default()
            .with_shape(40, 40)
            .with_interval_intensity(0.25);
        let m = generate_uniform(&config, &mut rng);
        for i in 0..40 {
            for j in 0..40 {
                let (lo, hi) = m.get_raw(i, j);
                if lo != 0.0 {
                    assert!(hi - lo <= 0.25 * lo + 1e-12, "width too large at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn values_respect_the_configured_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = generate_uniform(
            &SyntheticConfig::paper_default().with_shape(20, 20),
            &mut rng,
        );
        for &x in m.lo().as_slice() {
            assert!(x == 0.0 || (1.0..10.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = SyntheticConfig::paper_default().with_shape(10, 10);
        let a = generate_uniform(&config, &mut SmallRng::seed_from_u64(42));
        let b = generate_uniform(&config, &mut SmallRng::seed_from_u64(42));
        assert!(a.approx_eq(&b, 0.0));
    }
}
